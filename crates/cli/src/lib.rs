//! Command implementations for the `igern` CLI.
//!
//! The binary is a thin wrapper: each subcommand is a function from
//! parsed arguments to a `Write` sink, so everything here is unit-tested
//! without process spawning.
//!
//! ```text
//! igern gen-network --seed 7 --k 24 --out net.txt
//! igern gen-trace   --objects 1000 --ticks 50 --seed 7 --out trace.txt
//! igern run         --trace trace.txt --algo igern --queries 4 --ticks 10
//! igern render      --trace trace.txt --query 0 --ticks 3
//! ```

use std::io::Write;
use std::time::Duration;

use igern_core::obs::{jsontext, promtext, MetricsRegistry};
use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_core::{render, NetworkSpace, SpatialStore};
use igern_engine::{Placement, TickRunner};
use igern_geom::{Aabb, Point};
use igern_grid::{Grid, ObjectId, OpCounters};
use igern_mobgen::{
    build_synthetic_network, Mover, RecordedTrace, RoadNetwork, Scenario, SyntheticNetworkConfig,
    Workload, WorkloadConfig,
};
use igern_server::{IoBackend, Server, ServerConfig, SlowConsumerPolicy, TickMode};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// A parsed `--flag value` argument list.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `--flag value` pairs; rejects dangling flags and stray
    /// positional arguments.
    pub fn parse<I: IntoIterator<Item = String>>(iter: I) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got {flag:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("missing value for --{name}")))?;
            pairs.push((name.to_string(), value));
        }
        Ok(Args { pairs })
    }

    /// Fetch a string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Fetch a required flag.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError(format!("missing required --{name}")))
    }

    /// Fetch a numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad value for --{name}: {v:?}"))),
        }
    }
}

/// `gen-network`: build and save a synthetic road network.
pub fn gen_network<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let cfg = SyntheticNetworkConfig {
        seed: args.num("seed", 7u64)?,
        k: args.num("k", 24usize)?,
        ..Default::default()
    };
    let net = build_synthetic_network(&cfg);
    match args.get("out") {
        Some(path) => {
            let mut f = std::fs::File::create(path)?;
            net.save(&mut f)?;
            writeln!(
                out,
                "wrote network: {} nodes, {} edges -> {path}",
                net.num_nodes(),
                net.num_edges()
            )?;
        }
        None => net.save(out)?,
    }
    Ok(())
}

/// `gen-trace`: simulate a workload and save the update stream.
pub fn gen_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let objects = args.num("objects", 1000usize)?;
    let ticks = args.num("ticks", 50usize)?;
    let seed = args.num("seed", 7u64)?;
    let bi = args.get("bi").map(|v| v == "true").unwrap_or(false);
    let wcfg = match args.get("scenario") {
        Some(name) => {
            if args.get("bi").is_some() {
                return Err(CliError(
                    "--bi conflicts with --scenario (the preset fixes the kind split)".to_string(),
                ));
            }
            Scenario::by_name(name, objects, seed)
                .ok_or_else(|| {
                    CliError(format!(
                        "unknown --scenario {name:?} ({})",
                        Scenario::NAMES.join("|")
                    ))
                })?
                .workload
        }
        None if bi => WorkloadConfig::network_bi(objects, seed),
        None => WorkloadConfig::network_mono(objects, seed),
    };
    let mut workload = Workload::from_config(&wcfg);
    let trace = {
        // Record through the Workload's mover.
        struct W2<'a>(&'a mut Workload);
        impl Mover for W2<'_> {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn space(&self) -> igern_geom::Aabb {
                self.0.mover().space()
            }
            fn position(&self, id: u32) -> Point {
                self.0.mover().position(id)
            }
            fn advance(&mut self) -> &[igern_mobgen::Update] {
                self.0.advance()
            }
        }
        RecordedTrace::record(&mut W2(&mut workload), ticks)
    };
    match args.get("out") {
        Some(path) => {
            let mut f = std::fs::File::create(path)?;
            trace.save(&mut f)?;
            writeln!(
                out,
                "wrote trace: {} objects x {} ticks -> {path}",
                trace.num_objects(),
                trace.num_ticks()
            )?;
        }
        None => trace.save(out)?,
    }
    Ok(())
}

fn algorithm_by_name(name: &str, k: usize) -> Result<Algorithm, CliError> {
    Ok(match name {
        "igern" => Algorithm::IgernMono,
        "crnn" => Algorithm::Crnn,
        "tpl" => Algorithm::TplRepeat,
        "igern-bi" => Algorithm::IgernBi,
        "voronoi" => Algorithm::VoronoiRepeat,
        "igern-k" => Algorithm::IgernMonoK(k),
        "igern-bi-k" => Algorithm::IgernBiK(k),
        "knn" => Algorithm::Knn(k),
        other => {
            return Err(CliError(format!(
                "unknown --algo {other:?} (igern|crnn|tpl|igern-bi|voronoi|igern-k|igern-bi-k|knn)"
            )))
        }
    })
}

fn load_trace(args: &Args) -> Result<RecordedTrace, CliError> {
    let path = args.require("trace")?;
    let f = std::fs::File::open(path)?;
    Ok(RecordedTrace::load(std::io::BufReader::new(f))?)
}

/// Build a loaded store over a trace's initial state.
fn store_for(trace: &RecordedTrace, bi: bool, grid: usize) -> SpatialStore {
    let n = trace.num_objects();
    let kinds: Vec<ObjectKind> = (0..n)
        .map(|i| {
            if bi && i >= n / 2 {
                ObjectKind::B
            } else {
                ObjectKind::A
            }
        })
        .collect();
    let mut store = SpatialStore::new(trace.space(), grid, kinds);
    store.load(trace.initial());
    store
}

/// Parse `--grid`, rejecting a zero-cell grid.
fn grid_arg(args: &Args, default: usize) -> Result<usize, CliError> {
    let grid: usize = args.num("grid", default)?;
    if grid == 0 {
        return Err(CliError("--grid must be at least 1".to_string()));
    }
    Ok(grid)
}

/// Parse `--k`, rejecting `k == 0` (an RkNN answer of size zero is
/// meaningless and the engine refuses it).
fn k_arg(args: &Args) -> Result<usize, CliError> {
    let k: usize = args.num("k", 2usize)?;
    if k == 0 {
        return Err(CliError("--k must be at least 1".to_string()));
    }
    Ok(k)
}

/// Parse `--distance euclidean|network`.
fn distance_arg(args: &Args) -> Result<DistanceMode, CliError> {
    match args.get("distance").unwrap_or("euclidean") {
        "euclidean" => Ok(DistanceMode::Euclidean),
        "network" => Ok(DistanceMode::Network),
        other => Err(CliError(format!(
            "bad value for --distance: {other:?} (euclidean|network)"
        ))),
    }
}

/// The road graph a network-distance command runs on: loaded from
/// `--network FILE` when given, else a deterministic synthetic net over
/// `space` (`--net-seed`, default 7). Returns `None` — and rejects
/// dangling network flags — under Euclidean distance.
fn network_space_arg(
    args: &Args,
    mode: DistanceMode,
    space: Aabb,
) -> Result<Option<std::sync::Arc<NetworkSpace>>, CliError> {
    if mode == DistanceMode::Euclidean {
        for dependent in ["network", "net-seed"] {
            if args.get(dependent).is_some() {
                return Err(CliError(format!(
                    "--{dependent} requires --distance network"
                )));
            }
        }
        return Ok(None);
    }
    let net = match args.get("network") {
        Some(path) => {
            let f = std::fs::File::open(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            RoadNetwork::load(std::io::BufReader::new(f))
                .map_err(|e| CliError(format!("{path}: {e}")))?
        }
        None => build_synthetic_network(&SyntheticNetworkConfig {
            k: 8,
            space,
            seed: args.num("net-seed", 7u64)?,
            ..Default::default()
        }),
    };
    Ok(Some(std::sync::Arc::new(NetworkSpace::from_network(&net))))
}

fn placement_arg(args: &Args) -> Result<Placement, CliError> {
    match args.get("placement") {
        None => Ok(Placement::default()),
        Some(name) => Placement::parse(name).ok_or_else(|| {
            CliError(format!(
                "bad value for --placement: {name:?} (round-robin|anchor-cell)"
            ))
        }),
    }
}

/// `run`: evaluate continuous queries over a saved trace and print
/// per-tick answers and summary metrics.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let trace = load_trace(args)?;
    let algo = algorithm_by_name(args.get("algo").unwrap_or("igern"), k_arg(args)?)?;
    let nq: usize = args.num("queries", 1usize)?;
    let ticks: usize = args.num("ticks", trace.num_ticks())?;
    let ticks = ticks.min(trace.num_ticks());
    let grid = grid_arg(args, Grid::suggest_size(trace.num_objects()))?;
    let workers: usize = args.num("workers", 1usize)?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".to_string()));
    }
    let placement = placement_arg(args)?;
    let history_cap = match args.get("history") {
        None => None,
        Some(v) => {
            let cap: usize = v
                .parse()
                .map_err(|_| CliError(format!("bad value for --history: {v:?}")))?;
            if cap == 0 {
                return Err(CliError("--history must be at least 1".to_string()));
            }
            Some(cap)
        }
    };
    let mode = distance_arg(args)?;
    let mut store = store_for(&trace, algo.is_bichromatic(), grid);
    if let Some(ns) = network_space_arg(args, mode, trace.space())? {
        store.set_network(ns);
    }
    let mut proc = TickRunner::new(store, workers, placement);
    proc.set_history_capacity(history_cap);
    match args.get("routing").unwrap_or("on") {
        "on" => proc.set_skip_routing(true),
        "off" => proc.set_skip_routing(false),
        other => return Err(CliError(format!("bad value for --routing: {other:?}"))),
    }
    match args.get("batch").unwrap_or("on") {
        "on" => proc.set_batch(true),
        "off" => proc.set_batch(false),
        other => return Err(CliError(format!("bad value for --batch: {other:?}"))),
    }
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let metrics_every: usize = args.num("metrics-every", 0)?;
    if metrics_every > 0 && metrics_out.is_none() {
        return Err(CliError(
            "--metrics-every requires --metrics-out".to_string(),
        ));
    }
    let registry = MetricsRegistry::new();
    if metrics_out.is_some() {
        proc.attach_metrics(&registry, "igern_pipeline");
    }
    let n = trace.num_objects();
    let candidates = if algo.is_bichromatic() { n / 2 } else { n };
    let handles: Vec<usize> = (0..nq.min(candidates))
        .map(|i| {
            proc.add_query_in(ObjectId((i * candidates / nq.max(1)) as u32), algo, mode)
                .map_err(|e| CliError(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    proc.evaluate_all();
    let mut player = trace.player();
    for t in 0..=ticks {
        if t > 0 {
            let ups: Vec<(ObjectId, Point)> = player
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            proc.step(&ups);
            if let Some(path) = &metrics_out {
                if metrics_every > 0 && t % metrics_every == 0 {
                    dump_registry(&registry, path)?;
                }
            }
        }
        write!(out, "tick {t}:")?;
        for &h in &handles {
            let ans: Vec<u32> = proc.answer(h).iter().map(|o| o.0).collect();
            write!(out, "  q{}={ans:?}", proc.query_object(h).0)?;
        }
        writeln!(out)?;
    }
    // Summary. The history's aggregate covers every sample ever pushed,
    // even when --history caps the retained ring buffer.
    for &h in &handles {
        let stats = proc.history(h).stats();
        writeln!(
            out,
            "query {}: mean {:.3} ms/tick, mean answer {:.2}, mean monitored {:.2}, \
             skipped {}/{} ticks",
            proc.query_object(h),
            stats.mean_time().as_secs_f64() * 1e3,
            stats.mean_answer(),
            stats.mean_monitored(),
            stats.skipped(),
            stats.len(),
        )?;
    }
    if let Some(path) = &metrics_out {
        dump_registry(&registry, path)?;
        writeln!(out, "wrote metrics -> {path}")?;
    }
    Ok(())
}

/// `serve`: run the network serving layer until a client sends
/// SHUTDOWN. The store starts from `--trace` when given, empty
/// otherwise (clients then populate it with UPSERT_OBJECT).
pub fn serve<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7464");
    let workers: usize = args.num("workers", 1usize)?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".to_string()));
    }
    let tick_ms: u64 = args.num("tick-ms", 100u64)?;
    let grid = grid_arg(args, 16)?;
    let side: f64 = args.num("space", 1.0f64)?;
    if !side.is_finite() || side <= 0.0 {
        return Err(CliError(
            "--space must be a positive side length".to_string(),
        ));
    }
    let slow_consumer = match args.get("slow-consumer") {
        None => SlowConsumerPolicy::default(),
        Some(name) => SlowConsumerPolicy::parse(name).ok_or_else(|| {
            CliError(format!(
                "bad value for --slow-consumer: {name:?} (disconnect|coalesce)"
            ))
        })?,
    };
    let (mut store, space) = match args.get("trace") {
        Some(_) => {
            let trace = load_trace(args)?;
            let bi = args.get("bi").map(|v| v == "true").unwrap_or(false);
            let space = trace.space();
            (store_for(&trace, bi, grid), space)
        }
        None => {
            let space = Aabb::from_coords(0.0, 0.0, side, side);
            (SpatialStore::new(space, grid, Vec::new()), space)
        }
    };
    // With --distance network the store carries the road graph, so
    // clients may open protocol-v2 network-mode subscriptions (and WAL
    // recovery can re-register them). Euclidean subscriptions still
    // work either way — the mode is per-subscription.
    let distance = distance_arg(args)?;
    if let Some(ns) = network_space_arg(args, distance, space)? {
        store.set_network(ns);
    }
    let batch = match args.get("batch").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(CliError(format!("bad value for --batch: {other:?}"))),
    };
    let io = match args.get("io") {
        None => IoBackend::default_from_env(),
        Some(name) => IoBackend::parse(name)
            .ok_or_else(|| CliError(format!("bad value for --io: {name:?} (threads|reactor)")))?,
    };
    let cfg = ServerConfig {
        space,
        grid,
        workers,
        placement: placement_arg(args)?,
        batch,
        tick_mode: if tick_ms == 0 {
            TickMode::Manual
        } else {
            TickMode::Every(Duration::from_millis(tick_ms))
        },
        slow_consumer,
        io,
        io_threads: args.num("io-threads", 0usize)?,
        outbound_queue_frames: args.num("queue", 1024usize)?,
        wal: wal_options_arg(args)?,
        ..ServerConfig::default()
    };
    if let Some(w) = &cfg.wal {
        std::fs::create_dir_all(&w.dir)?;
    }
    let mut server =
        Server::start(addr, store, cfg).map_err(|e| CliError(format!("bind {addr}: {e}")))?;
    if let Some(rec) = server.recovery() {
        writeln!(
            out,
            "recovered: tick {}, {} objects, {} subs, digest {:016x} \
             ({} records / {} ticks replayed{})",
            rec.tick,
            rec.objects,
            rec.subs,
            rec.digest,
            rec.report.replayed_records,
            rec.report.replayed_ticks,
            if rec.report.clean() {
                String::new()
            } else {
                format!(
                    "; tolerated {} bad records, {} torn bytes, {} bad snapshots, \
                     {} digest mismatches, {} lenient skips",
                    rec.report.skipped_records,
                    rec.report.torn_tail_bytes,
                    rec.report.skipped_snapshots,
                    rec.report.digest_mismatches,
                    rec.report.lenient_skips,
                )
            },
        )?;
    }
    writeln!(
        out,
        "serving on {} ({} workers, tick {}, {} policy, {} io)",
        server.local_addr(),
        workers,
        if tick_ms == 0 {
            "manual".to_string()
        } else {
            format!("{tick_ms}ms")
        },
        match slow_consumer {
            SlowConsumerPolicy::Disconnect => "disconnect",
            SlowConsumerPolicy::Coalesce => "coalesce",
        },
        io.name(),
    )?;
    out.flush()?;
    server.wait();
    if let Some(path) = args.get("metrics-out") {
        dump_registry(server.registry(), path)?;
        writeln!(out, "wrote metrics -> {path}")?;
    }
    writeln!(out, "server stopped")?;
    Ok(())
}

/// Parse the `serve` durability flags into [`igern_wal::WalOptions`];
/// the `--snapshot-every` / `--fsync` / `--segment-bytes` knobs are
/// only meaningful together with `--wal-dir`.
fn wal_options_arg(args: &Args) -> Result<Option<igern_wal::WalOptions>, CliError> {
    let Some(dir) = args.get("wal-dir") else {
        for dependent in ["snapshot-every", "fsync", "segment-bytes"] {
            if args.get(dependent).is_some() {
                return Err(CliError(format!("--{dependent} requires --wal-dir")));
            }
        }
        return Ok(None);
    };
    let mut opts = igern_wal::WalOptions::new(dir);
    opts.snapshot_every = args.num("snapshot-every", opts.snapshot_every)?;
    opts.segment_bytes = args.num("segment-bytes", opts.segment_bytes)?;
    if let Some(name) = args.get("fsync") {
        opts.fsync = igern_wal::FsyncPolicy::parse(name).ok_or_else(|| {
            CliError(format!(
                "bad value for --fsync: {name:?} (always|tick|never)"
            ))
        })?;
    }
    Ok(Some(opts))
}

/// `wal inspect`: walk a durability directory and report every
/// snapshot and segment, then dry-run recovery and print the state a
/// server booted on this directory would resume with.
pub fn wal_inspect<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let dir = std::path::PathBuf::from(args.require("dir")?);
    if !dir.is_dir() {
        return Err(CliError(format!(
            "--dir {}: not a directory",
            dir.display()
        )));
    }
    let snaps = igern_wal::snapshot_paths(&dir)?;
    writeln!(out, "{} snapshot(s):", snaps.len())?;
    for (covered, _, path) in &snaps {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match igern_wal::load_snapshot(path) {
            Some(s) => writeln!(
                out,
                "  {name}: tick {}, covers seq < {covered}, {} objects, {} subs",
                s.tick,
                s.objects.len(),
                s.subs.len(),
            )?,
            None => writeln!(out, "  {name}: CORRUPT (recovery will skip it)")?,
        }
    }
    let segs = igern_wal::segment_paths(&dir)?;
    writeln!(out, "{} segment(s):", segs.len())?;
    for (first, path) in &segs {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match igern_wal::scan_segment(path) {
            Ok(scan) => {
                let ticks = scan
                    .records
                    .iter()
                    .filter(|r| matches!(r.frame, igern_server::Frame::TickEnd { .. }))
                    .count();
                writeln!(
                    out,
                    "  {name}: seq [{first}, {}), {} records ({} tick boundaries), \
                     {} skipped, {} torn tail bytes",
                    scan.end_seq,
                    scan.records.len(),
                    ticks,
                    scan.skipped_records,
                    scan.torn_tail_bytes,
                )?;
            }
            Err(e) => writeln!(out, "  {name}: unreadable ({e})")?,
        }
    }
    let rec = igern_wal::recover(
        &dir,
        1,
        Placement::RoundRobin,
        Aabb::from_coords(0.0, 0.0, 1.0, 1.0),
        16,
        None,
    )?;
    writeln!(
        out,
        "recovery: tick {}, {} objects, {} subs, digest {:016x}, clean {}",
        rec.tick,
        rec.runner.store().len(),
        rec.subs.len(),
        rec.digest,
        rec.report.clean(),
    )?;
    Ok(())
}

/// `wal drive`: the crash-recovery smoke driver. Connects to a served
/// instance, streams a seeded workload through manual ticks, and
/// mirrors every mutation into an in-process [`TickRunner`]; each tick
/// the pushed answers must match the mirror exactly. Prints the
/// mirror's whole-state digest per tick — after the server is
/// `kill -9`ed and restarted, its recovery banner must report the same
/// digest this driver last printed.
pub fn wal_drive<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    use igern_server::Client;

    let addr = args.require("addr")?;
    let objects: u32 = args.num("objects", 32u32)?;
    let subs: u32 = args.num("subs", 4u32)?;
    let ticks: u64 = args.num("ticks", 30u64)?;
    let seed: u64 = args.num("seed", 1u64)?;
    let side: f64 = args.num("space", 1.0f64)?;
    let grid = grid_arg(args, 16)?;
    if objects == 0 || subs == 0 || ticks == 0 {
        return Err(CliError(
            "--objects, --subs, and --ticks must be at least 1".to_string(),
        ));
    }
    let subs = subs.min(objects);

    // The offline mirror: same space/grid as the server, serial
    // backend (worker count never changes answers).
    let space = Aabb::from_coords(0.0, 0.0, side, side);
    let store = SpatialStore::new(space, grid, Vec::new());
    let mut mirror = TickRunner::new(store, 1, Placement::RoundRobin);

    // The serve banner races the first connect; retry briefly.
    let mut client = None;
    for _ in 0..250 {
        match Client::connect(addr) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut client =
        client.ok_or_else(|| CliError(format!("no server came up on {addr} within 5s")))?;

    let mut rng = igern_mobgen::rng::Rng64::seed_from_u64(seed);
    let place = |rng: &mut igern_mobgen::rng::Rng64| Point::new(rng.f64() * side, rng.f64() * side);
    for id in 0..objects {
        let p = place(&mut rng);
        client
            .upsert(id, ObjectKind::A, p.x, p.y)
            .map_err(|e| CliError(e.to_string()))?;
        mirror.insert_object(ObjectId(id), ObjectKind::A, p);
    }
    let mut tracked: Vec<(u32, igern_wal::SubSpec, usize)> = Vec::new();
    for i in 0..subs {
        let anchor = i * objects / subs;
        let algo = if i % 2 == 0 {
            Algorithm::IgernMono
        } else {
            Algorithm::Knn(2)
        };
        let sid = client
            .subscribe(anchor, algo)
            .map_err(|e| CliError(e.to_string()))?;
        let handle = mirror
            .add_query(ObjectId(anchor), algo)
            .map_err(|e| CliError(e.to_string()))?;
        tracked.push((
            sid,
            igern_wal::SubSpec {
                sid,
                anchor,
                algo,
                mode: igern_core::DistanceMode::Euclidean,
            },
            handle,
        ));
    }
    mirror.evaluate_all();

    let mut last = 0u64;
    for _ in 0..ticks {
        let mut moved: Vec<(ObjectId, Point)> = Vec::new();
        for id in 0..objects {
            if rng.next_u64().is_multiple_of(3) {
                let p = place(&mut rng);
                client
                    .upsert(id, ObjectKind::A, p.x, p.y)
                    .map_err(|e| CliError(e.to_string()))?;
                moved.push((ObjectId(id), p));
            }
        }
        client.step().map_err(|e| CliError(e.to_string()))?;
        let (tick, _) = client
            .wait_tick_end(last + 1, Duration::from_secs(10))
            .map_err(|e| CliError(e.to_string()))?;
        last = tick;
        mirror.step(&moved);
        for &(sid, _, handle) in &tracked {
            let served = client.answer(sid);
            let local: Vec<u32> = mirror.answer(handle).iter().map(|o| o.0).collect();
            if served != local {
                return Err(CliError(format!(
                    "tick {tick}: sub {sid} diverged from the offline mirror: \
                     served {served:?}, mirror {local:?}"
                )));
            }
        }
        let specs: Vec<igern_wal::SubSpec> = tracked.iter().map(|&(_, s, _)| s).collect();
        let digest = igern_wal::state_digest(tick, &specs, |s| {
            let &(_, _, handle) = tracked
                .iter()
                .find(|(sid, _, _)| *sid == s.sid)
                .expect("spec came from tracked");
            mirror.answer(handle)
        });
        writeln!(out, "tick {tick} digest {digest:016x}")?;
        out.flush()?;
    }
    writeln!(
        out,
        "drove {ticks} ticks to tick {last}; all answers matched the mirror"
    )?;
    out.flush()?;
    // Disconnecting drops our subscriptions server-side (and logs the
    // drops), which would change the durable state. For the crash
    // smoke, hold the connection open so the kill lands while the
    // subscriptions are still live.
    let hold_ms: u64 = args.num("hold-ms", 0u64)?;
    if hold_ms > 0 {
        std::thread::sleep(Duration::from_millis(hold_ms));
    }
    Ok(())
}

/// Parse a `true|false` flag with a default.
fn bool_arg(args: &Args, name: &str, default: bool) -> Result<bool, CliError> {
    match args.get(name) {
        None => Ok(default),
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        Some(v) => Err(CliError(format!(
            "bad value for --{name}: {v:?} (true|false)"
        ))),
    }
}

/// `sim`: run the deterministic fault-injection harness (DESIGN.md
/// §13) — one seed drives every backend through a faulted schedule
/// with every tick oracle-checked. A healthy build prints a digest
/// (identical across runs of the same seed); a failing one gets its
/// schedule delta-debugged down and written as a self-contained
/// `.simreplay` file that `igern sim --replay FILE` re-executes.
pub fn sim_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let (plan, label) = match args.get("replay") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let plan =
                igern_sim::load_replay(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
            (plan, format!("replay {path}"))
        }
        None => {
            let cfg = igern_sim::SimConfig {
                seed: args.num("seed", 1u64)?,
                ticks: args.num("ticks", 100u64)?,
                objects: args.num("objects", 48usize)?,
                grid: grid_arg(args, 16)?,
                queries: args.num("queries", 8usize)?,
                workers: args.num("workers", 4usize)?,
                faults: bool_arg(args, "faults", true)?,
                server: bool_arg(args, "server", true)?,
                durable: bool_arg(args, "durable", false)?,
                batch: bool_arg(args, "batch", false)?,
                network: distance_arg(args)? == DistanceMode::Network,
                ..igern_sim::SimConfig::default()
            };
            if cfg.durable && !(cfg.server && cfg.faults) {
                return Err(CliError(
                    "--durable true needs --server true and --faults true \
                     (the crash fault targets the served backend)"
                        .to_string(),
                ));
            }
            if cfg.ticks == 0 || cfg.objects == 0 || cfg.workers == 0 {
                return Err(CliError(
                    "--ticks, --objects, and --workers must be at least 1".to_string(),
                ));
            }
            let label = format!("seed {}", cfg.seed);
            (cfg.plan(), label)
        }
    };
    writeln!(
        out,
        "sim {label}: {} objects, {} ticks, {} events, {} workers, server {}{}{}",
        plan.initial.len(),
        plan.ticks,
        plan.events.len(),
        plan.workers,
        if plan.server { "on" } else { "off" },
        if plan.durable { " (durable)" } else { "" },
        if plan.network {
            " (network distance)"
        } else {
            ""
        },
    )?;
    match igern_sim::execute(&plan, None) {
        Ok(report) => {
            let c = &report.counters;
            writeln!(
                out,
                "PASS: {} ticks, digest {:016x}",
                report.ticks, report.digest
            )?;
            writeln!(
                out,
                "  events applied {} (skipped {}): {} moves, {} inserts, {} removes, \
                 {} queries added, {} removed",
                c.events_applied,
                c.events_skipped,
                c.moves,
                c.inserts,
                c.removes,
                c.queries_added,
                c.queries_removed,
            )?;
            writeln!(
                out,
                "  faults: {} desyncs, {} worker stalls, {} frame faults, {} client stalls, \
                 {} kill-restarts",
                c.desyncs, c.worker_stalls, c.frame_faults, c.client_stalls, c.kill_restarts,
            )?;
            // Victim-connection liveness is deliberately not printed:
            // it races real connection teardown and is excluded from
            // the determinism contract, while this output is diffed
            // across runs (CI) to prove bit-identical behavior.
            writeln!(
                out,
                "  {} answer checks, final population {}",
                c.answer_checks, c.final_population,
            )?;
            Ok(())
        }
        Err(failure) => {
            writeln!(out, "FAIL: {failure}")?;
            let budget: u32 = args.num("shrink", 500u32)?;
            let minimal = if budget > 0 {
                let (min, min_failure, stats) =
                    igern_sim::minimize(&plan, &failure, budget, |p| igern_sim::execute(p, None));
                writeln!(
                    out,
                    "shrunk {} -> {} events, {} ticks in {} executions; minimal: {min_failure}",
                    stats.from_events, stats.to_events, stats.to_ticks, stats.executions,
                )?;
                min
            } else {
                plan
            };
            let path = args.get("replay-out").unwrap_or("failure.simreplay");
            std::fs::write(path, igern_sim::write_replay(&minimal))?;
            writeln!(out, "wrote replay -> {path}")?;
            Err(CliError(format!("simulation failed: {failure}")))
        }
    }
}

/// Dump the registry to `path`; `.json` selects the JSON exporter,
/// anything else the Prometheus text format.
fn dump_registry(registry: &MetricsRegistry, path: &str) -> Result<(), CliError> {
    let text = if path.ends_with(".json") {
        registry.render_json()
    } else {
        registry.render_prometheus()
    };
    std::fs::write(path, text)?;
    Ok(())
}

/// One row of the `stats` table.
struct StatRow {
    name: String,
    kind: &'static str,
    value: String,
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

fn fmt_label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Summarize a Prometheus text dump. Validates it with the in-repo lint
/// first, so a malformed export is an error, not garbled output.
fn summarize_prom(text: &str) -> Result<Vec<StatRow>, CliError> {
    let report =
        promtext::lint(text).map_err(|e| CliError(format!("invalid metrics file: {e}")))?;
    let mut rows = Vec::new();
    for s in &report.parsed {
        match report.types.get(&s.name).map(String::as_str) {
            Some("counter") => rows.push(StatRow {
                name: format!("{}{}", s.name, fmt_label_suffix(&s.labels)),
                kind: "counter",
                value: fmt_num(s.value),
            }),
            Some("gauge") => rows.push(StatRow {
                name: format!("{}{}", s.name, fmt_label_suffix(&s.labels)),
                kind: "gauge",
                value: fmt_num(s.value),
            }),
            _ => {
                // Histogram series: fold each `_count` sample together
                // with its `_sum` sibling into one row.
                let Some(base) = s.name.strip_suffix("_count") else {
                    continue;
                };
                if report.types.get(base).map(String::as_str) != Some("histogram") {
                    continue;
                }
                let sum = report
                    .parsed
                    .iter()
                    .find(|o| o.name == format!("{base}_sum") && o.labels == s.labels)
                    .map_or(0.0, |o| o.value);
                let mean = if s.value > 0.0 { sum / s.value } else { 0.0 };
                rows.push(StatRow {
                    name: format!("{base}{}", fmt_label_suffix(&s.labels)),
                    kind: "histogram",
                    value: format!(
                        "count={} sum={} mean={}",
                        fmt_num(s.value),
                        fmt_num(sum),
                        fmt_num(mean)
                    ),
                });
            }
        }
    }
    Ok(rows)
}

/// Summarize a JSON dump produced by the JSON exporter.
fn summarize_json(text: &str) -> Result<Vec<StatRow>, CliError> {
    let doc = jsontext::parse(text).map_err(|e| CliError(format!("invalid metrics file: {e}")))?;
    let metrics = doc
        .get("metrics")
        .and_then(|m| m.as_array())
        .ok_or_else(|| CliError("metrics file has no \"metrics\" array".to_string()))?;
    let mut rows = Vec::new();
    for m in metrics {
        let name = m
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| CliError("metric without a name".to_string()))?;
        let labels = match m.get("labels") {
            Some(jsontext::Value::Object(map)) => map
                .iter()
                .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                .collect(),
            _ => Vec::new(),
        };
        let name = format!("{name}{}", fmt_label_suffix(&labels));
        match m.get("type").and_then(|t| t.as_str()) {
            Some(kind @ ("counter" | "gauge")) => rows.push(StatRow {
                name,
                kind: if kind == "counter" {
                    "counter"
                } else {
                    "gauge"
                },
                value: m
                    .get("value")
                    .and_then(|v| v.as_f64())
                    .map_or("null".to_string(), fmt_num),
            }),
            Some("histogram") => {
                let count = m.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let sum = m.get("sum").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let mean = if count > 0.0 { sum / count } else { 0.0 };
                rows.push(StatRow {
                    name,
                    kind: "histogram",
                    value: format!(
                        "count={} sum={} mean={}",
                        fmt_num(count),
                        fmt_num(sum),
                        fmt_num(mean)
                    ),
                });
            }
            other => {
                return Err(CliError(format!(
                    "metric {name} has unknown type {other:?}"
                )))
            }
        }
    }
    Ok(rows)
}

/// `stats`: validate a metrics dump written by `run --metrics-out` and
/// render it as a summary table. The validation pass doubles as the CI
/// smoke check for the exporters.
pub fn stats_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let path = args.require("metrics")?;
    let text = std::fs::read_to_string(path)?;
    let rows = if path.ends_with(".json") {
        summarize_json(&text)?
    } else {
        summarize_prom(&text)?
    };
    if rows.is_empty() {
        writeln!(out, "no metrics in {path}")?;
        return Ok(());
    }
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    writeln!(out, "{:<name_w$}  {:<9}  VALUE", "METRIC", "TYPE")?;
    for r in &rows {
        writeln!(out, "{:<name_w$}  {:<9}  {}", r.name, r.kind, r.value)?;
    }
    writeln!(out, "{} series ok", rows.len())?;
    Ok(())
}

/// `render`: replay a trace and draw the IGERN alive region per tick.
pub fn render_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let trace = load_trace(args)?;
    let qi: usize = args.num("query", 0usize)?;
    if qi >= trace.num_objects() {
        return Err(CliError(format!("--query {qi} out of range")));
    }
    let ticks: usize = args.num("ticks", 3usize)?;
    let ticks = ticks.min(trace.num_ticks());
    let grid_n = grid_arg(args, 16)?;
    let mut g = Grid::new(trace.space(), grid_n);
    for (i, &p) in trace.initial().iter().enumerate() {
        g.insert(ObjectId(i as u32), p);
    }
    let q_id = ObjectId(qi as u32);
    let q_pos = |g: &Grid| {
        g.position(q_id)
            .ok_or_else(|| CliError(format!("query object {q_id} is not indexed by the grid")))
    };
    let mut ops = OpCounters::new();
    let mut m = igern_core::MonoIgern::initial(&g, q_pos(&g)?, Some(q_id), &mut ops);
    let mut player = trace.player();
    for t in 0..=ticks {
        if t > 0 {
            for u in player.advance().to_vec() {
                g.update(ObjectId(u.id), u.pos);
            }
            m.incremental(&g, q_pos(&g)?, &mut ops);
        }
        writeln!(out, "tick {t}: rnn = {:?}", m.rnn())?;
        write!(
            out,
            "{}",
            render::render_region(&g, m.alive_cells(), q_pos(&g)?, &m.candidates())
        )?;
    }
    Ok(())
}

/// Dispatch a subcommand.
pub fn dispatch<W: Write>(cmd: &str, args: &Args, out: &mut W) -> Result<(), CliError> {
    match cmd {
        "gen-network" => gen_network(args, out),
        "gen-trace" => gen_trace(args, out),
        "run" => run(args, out),
        "serve" => serve(args, out),
        "render" => render_cmd(args, out),
        "stats" => stats_cmd(args, out),
        "sim" => sim_cmd(args, out),
        "wal inspect" => wal_inspect(args, out),
        "wal drive" => wal_drive(args, out),
        "wal" | "wal " => Err(CliError(
            "wal needs a subcommand: wal inspect | wal drive".to_string(),
        )),
        other => Err(CliError(format!(
            "unknown command {other:?} (gen-network|gen-trace|run|serve|render|stats|sim|wal)"
        ))),
    }
}

/// Usage text for the binary.
pub const USAGE: &str = "\
igern — continuous reverse-nearest-neighbor monitoring (ICDE'07 reproduction)

USAGE: igern <command> [--flag value]...

COMMANDS:
  gen-network  --seed N --k N [--out FILE]
  gen-trace    --objects N --ticks N --seed N [--bi true] [--out FILE]
               [--scenario taxi-dispatch|geofenced-influence|hotspot-churn]
  run          --trace FILE [--algo igern|crnn|tpl|igern-bi|voronoi|igern-k|igern-bi-k|knn]
               [--queries N] [--ticks N] [--grid N] [--k N] [--routing on|off]
               [--batch on|off] [--workers N]
               [--placement round-robin|anchor-cell] [--history N]
               [--distance euclidean|network] [--network FILE] [--net-seed N]
               [--metrics-out FILE] [--metrics-every N]
  serve        [--addr HOST:PORT] [--workers N] [--tick-ms N] [--grid N]
               [--space SIDE] [--trace FILE] [--slow-consumer disconnect|coalesce]
               [--queue N] [--placement round-robin|anchor-cell] [--batch on|off]
               [--io threads|reactor] [--io-threads N] [--metrics-out FILE]
               [--wal-dir DIR] [--snapshot-every N] [--fsync always|tick|never]
               [--segment-bytes N]
               [--distance euclidean|network] [--network FILE] [--net-seed N]
  render       --trace FILE [--query N] [--ticks N] [--grid N]
  stats        --metrics FILE
  sim          [--seed N] [--ticks N] [--objects N] [--grid N] [--queries N]
               [--workers N] [--faults true|false] [--server true|false]
               [--durable true|false] [--batch true|false]
               [--distance euclidean|network] [--shrink BUDGET]
               [--replay-out FILE] | --replay FILE
  wal inspect  --dir DIR
  wal drive    --addr HOST:PORT [--objects N] [--subs N] [--ticks N] [--seed N]
               [--space SIDE] [--grid N] [--hold-ms N]

`run --workers N` (default 1 = serial) evaluates queries on N sharded
worker threads; answers are identical to the serial run. `--batch on`
(the default for run and serve) groups same-cell, same-algorithm
queries into one shared grid scan per tick — answers, counters, and
skip decisions stay bit-identical; `--batch off` evaluates per query.
`--history N` caps per-query sample retention (summaries still cover
every tick).
`run --metrics-out FILE` records pipeline metrics and dumps them to FILE
(Prometheus text, or JSON when FILE ends in .json) at the end of the run
and — with `--metrics-every N` — every N ticks along the way. `stats`
validates such a dump and renders it as a table.

`serve` exposes the pipeline over TCP: clients stream object upserts,
subscribe continuous queries, and receive per-tick answer deltas (see
DESIGN.md §12 for the wire protocol). `--tick-ms 0` ticks only on
client STEP frames; the default is a 100ms timer. The server runs until
a client sends SHUTDOWN, then dumps metrics to `--metrics-out`.
`--io reactor` (the default) multiplexes all connections onto a fixed
pool of event-loop threads (`--io-threads N`, 0 = auto); `--io threads`
keeps the legacy two-threads-per-connection backend.

`sim` runs the deterministic fault-injection harness (DESIGN.md §13):
one seed generates a schedule of moves, churn, query turnover, and
faults, executes it on the serial, sharded, and served backends in
lockstep, and checks every query every tick against the brute-force
oracles. Same seed, same digest — byte-identical output across runs.
On failure the schedule is shrunk (`--shrink` caps re-executions) and
written to `--replay-out` (default failure.simreplay); `igern sim
--replay FILE` re-executes a replay file exactly. `sim --durable true`
runs the served backend over a write-ahead log and schedules
crash-kill/restart faults against it — recovered answers must stay
bit-identical to the oracle.

`--distance network` switches query evaluation to shortest-path
distance over a road graph: `run` and `serve` attach the network from
`--network FILE` (a `gen-network` save) or synthesize one over the data
space (`--net-seed`, default 7); `sim` derives it from the sim seed so
replay files stay self-contained. `gen-trace --scenario NAME` generates
a city-scale preset workload (taxi-dispatch, geofenced-influence,
hotspot-churn) instead of the plain network_mono/bi default.

`serve --wal-dir DIR` turns on durability (DESIGN.md §15): every
admitted mutation is write-ahead-logged, a compacted snapshot is taken
every `--snapshot-every` ticks (default 256), and a restart over the
same directory recovers the exact pre-crash state — the banner prints
the recovered tick and state digest. `wal inspect` reports the
snapshots and segments in a durability directory and dry-runs
recovery. `wal drive` streams a seeded workload at a served instance
while mirroring it into an in-process runner, failing on any answer
divergence and printing the per-tick state digest the server must
recover to after `kill -9` (`--hold-ms` keeps its subscriptions alive
while the kill lands).
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--objects", "100", "--out", "x.txt"]);
        assert_eq!(a.get("objects"), Some("100"));
        assert_eq!(a.num("objects", 0usize).unwrap(), 100);
        assert_eq!(a.num("ticks", 7usize).unwrap(), 7);
        assert!(a.require("missing").is_err());
        assert!(Args::parse(["--dangling".to_string()]).is_err());
        assert!(Args::parse(["positional".to_string()]).is_err());
        assert!(a.num::<usize>("out", 0).is_err());
    }

    #[test]
    fn gen_network_to_writer() {
        let a = args(&["--seed", "3", "--k", "4"]);
        let mut buf = Vec::new();
        gen_network(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("space "));
        assert!(text.contains("nodes 16"));
    }

    #[test]
    fn gen_trace_and_run_roundtrip() {
        let dir = std::env::temp_dir().join("igern_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "60",
            "--ticks",
            "8",
            "--seed",
            "5",
            "--out",
            trace_path,
        ]);
        let mut buf = Vec::new();
        gen_trace(&a, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("wrote trace"));

        for algo in ["igern", "crnn", "tpl", "igern-k", "knn"] {
            let a = args(&[
                "--trace",
                trace_path,
                "--algo",
                algo,
                "--queries",
                "2",
                "--ticks",
                "4",
            ]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("tick 4:"), "{algo}: {text}");
            assert!(text.contains("ms/tick"), "{algo}");
        }
        // Bichromatic run.
        let a = args(&[
            "--trace",
            trace_path,
            "--algo",
            "igern-bi",
            "--queries",
            "1",
        ]);
        let mut buf = Vec::new();
        run(&a, &mut buf).unwrap();
    }

    #[test]
    fn igern_and_crnn_agree_via_cli() {
        let dir = std::env::temp_dir().join("igern_cli_agree");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "80",
            "--ticks",
            "6",
            "--seed",
            "9",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        let mut outs = Vec::new();
        for algo in ["igern", "crnn"] {
            let a = args(&["--trace", trace_path, "--algo", algo, "--queries", "3"]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            // Keep only the per-tick answer lines (timings differ).
            let answers: String = String::from_utf8(buf)
                .unwrap()
                .lines()
                .filter(|l| l.starts_with("tick"))
                .collect::<Vec<_>>()
                .join("\n");
            outs.push(answers);
        }
        assert_eq!(outs[0], outs[1], "CLI answers must agree across algorithms");
    }

    #[test]
    fn routing_flag_changes_cost_not_answers() {
        let dir = std::env::temp_dir().join("igern_cli_routing");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "60",
            "--ticks",
            "6",
            "--seed",
            "11",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        let mut outs = Vec::new();
        for routing in ["on", "off"] {
            let a = args(&[
                "--trace",
                trace_path,
                "--algo",
                "igern",
                "--queries",
                "2",
                "--routing",
                routing,
            ]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("skipped"), "summary reports skip counts");
            if routing == "off" {
                assert!(text.contains("skipped 0/"), "forced run never skips");
            }
            let answers: String = text
                .lines()
                .filter(|l| l.starts_with("tick"))
                .collect::<Vec<_>>()
                .join("\n");
            outs.push(answers);
        }
        assert_eq!(outs[0], outs[1], "routing must not change answers");
        let a = args(&["--trace", trace_path, "--routing", "sideways"]);
        assert!(run(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn sharded_run_matches_serial_answers() {
        let dir = std::env::temp_dir().join("igern_cli_workers");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "80",
            "--ticks",
            "6",
            "--seed",
            "13",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        let mut outs = Vec::new();
        for workers in ["1", "4"] {
            let a = args(&[
                "--trace",
                trace_path,
                "--algo",
                "igern",
                "--queries",
                "3",
                "--workers",
                workers,
            ]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            // Timing lines differ; answers must not.
            let answers: String = String::from_utf8(buf)
                .unwrap()
                .lines()
                .filter(|l| l.starts_with("tick"))
                .collect::<Vec<_>>()
                .join("\n");
            outs.push(answers);
        }
        assert_eq!(outs[0], outs[1], "sharded run must match serial answers");

        // Placement flag is accepted; bad values are rejected.
        let a = args(&[
            "--trace",
            trace_path,
            "--workers",
            "2",
            "--placement",
            "anchor-cell",
        ]);
        run(&a, &mut Vec::new()).unwrap();
        let a = args(&["--trace", trace_path, "--placement", "zigzag"]);
        assert!(run(&a, &mut Vec::new()).is_err());
        let a = args(&["--trace", trace_path, "--workers", "0"]);
        assert!(run(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn history_cap_preserves_summary() {
        let dir = std::env::temp_dir().join("igern_cli_history");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "60",
            "--ticks",
            "8",
            "--seed",
            "3",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        let mut outs = Vec::new();
        for extra in [&[][..], &["--history", "2"][..]] {
            let mut list = vec!["--trace", trace_path, "--algo", "igern", "--queries", "2"];
            list.extend_from_slice(extra);
            let a = args(&list);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            // The summary folds every tick even when retention is capped;
            // strip timing numbers, keep the structural counts.
            let summary: String = String::from_utf8(buf)
                .unwrap()
                .lines()
                .filter(|l| l.starts_with("query"))
                .map(|l| l.split_once(" ms/tick").map_or(l, |(_, r)| r).to_string())
                .collect::<Vec<_>>()
                .join("\n");
            outs.push(summary);
        }
        assert_eq!(outs[0], outs[1], "capped history must not change summary");
        let a = args(&["--trace", trace_path, "--history", "0"]);
        assert!(run(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn metrics_dump_roundtrips_through_stats() {
        let dir = std::env::temp_dir().join("igern_cli_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "60",
            "--ticks",
            "8",
            "--seed",
            "21",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        for (file, workers) in [("m.prom", "1"), ("m.json", "4")] {
            let metrics_path = dir.join(file);
            let metrics_path = metrics_path.to_str().unwrap();
            let a = args(&[
                "--trace",
                trace_path,
                "--algo",
                "igern",
                "--queries",
                "2",
                "--workers",
                workers,
                "--metrics-out",
                metrics_path,
                "--metrics-every",
                "4",
            ]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            assert!(String::from_utf8(buf).unwrap().contains("wrote metrics"));
            // The dump validates and renders through `stats`.
            let a = args(&["--metrics", metrics_path]);
            let mut buf = Vec::new();
            stats_cmd(&a, &mut buf).unwrap();
            let table = String::from_utf8(buf).unwrap();
            assert!(table.contains("igern_pipeline_ticks_total"), "{table}");
            assert!(table.contains("counter"), "{table}");
            assert!(table.contains("series ok"), "{table}");
            // 9 rounds: the initial evaluation plus 8 stepped ticks.
            assert!(
                table
                    .lines()
                    .any(|l| l.starts_with("igern_pipeline_ticks_total") && l.ends_with('9')),
                "{table}"
            );
            if workers == "4" {
                assert!(table.contains("worker_tick_seconds"), "{table}");
                assert!(table.contains("worker=\"3\""), "{table}");
            }
        }
        // A corrupted dump is an error, not garbled output.
        let bad = dir.join("bad.prom");
        std::fs::write(&bad, "igern_ticks_total 4\n").unwrap();
        let a = args(&["--metrics", bad.to_str().unwrap()]);
        let err = stats_cmd(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("invalid metrics file"), "{err}");
        // --metrics-every without a sink is rejected.
        let a = args(&["--trace", trace_path, "--metrics-every", "2"]);
        assert!(run(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn render_rejects_bad_query_id() {
        let dir = std::env::temp_dir().join("igern_cli_badid");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "20",
            "--ticks",
            "2",
            "--seed",
            "1",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        // Out-of-range query ids surface as errors, not panics.
        let a = args(&["--trace", trace_path, "--query", "999"]);
        let err = render_cmd(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn render_draws_regions() {
        let dir = std::env::temp_dir().join("igern_cli_render");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "40",
            "--ticks",
            "4",
            "--seed",
            "2",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        let a = args(&[
            "--trace", trace_path, "--query", "0", "--ticks", "2", "--grid", "8",
        ]);
        let mut buf = Vec::new();
        render_cmd(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("tick 0"));
        assert_eq!(text.matches('Q').count(), 3, "one query marker per frame");
    }

    #[test]
    fn dispatch_rejects_unknown() {
        let a = Args::default();
        assert!(dispatch("nope", &a, &mut Vec::new()).is_err());
    }

    #[test]
    fn grid_and_k_zero_are_rejected() {
        let dir = std::env::temp_dir().join("igern_cli_validate");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "20",
            "--ticks",
            "2",
            "--seed",
            "1",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        for extra in [&["--grid", "0"][..], &["--k", "0"][..]] {
            let mut list = vec!["--trace", trace_path];
            list.extend_from_slice(extra);
            let err = run(&args(&list), &mut Vec::new()).unwrap_err();
            assert!(err.to_string().contains("at least 1"), "{err}");
        }
        let a = args(&["--trace", trace_path, "--grid", "0"]);
        assert!(render_cmd(&a, &mut Vec::new()).is_err());
        let a = args(&["--grid", "0"]);
        assert!(serve(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn serve_rejects_bad_flags() {
        for bad in [
            &["--workers", "0"][..],
            &["--space", "-3"][..],
            &["--space", "nan"][..],
            &["--slow-consumer", "shrug"][..],
            &["--placement", "zigzag"][..],
        ] {
            let err = serve(&args(bad), &mut Vec::new()).unwrap_err();
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn sim_runs_are_deterministic_and_flags_validate() {
        let list = [
            "--seed",
            "3",
            "--ticks",
            "20",
            "--objects",
            "16",
            "--queries",
            "4",
            "--workers",
            "2",
        ];
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut buf = Vec::new();
            sim_cmd(&args(&list), &mut buf).unwrap();
            outs.push(String::from_utf8(buf).unwrap());
        }
        assert!(outs[0].contains("PASS:"), "{}", outs[0]);
        assert!(outs[0].contains("digest "), "{}", outs[0]);
        assert_eq!(outs[0], outs[1], "same seed must print identical output");

        for bad in [
            &["--ticks", "0"][..],
            &["--objects", "0"][..],
            &["--workers", "0"][..],
            &["--grid", "0"][..],
            &["--faults", "shrug"][..],
            &["--server", "2"][..],
        ] {
            assert!(sim_cmd(&args(bad), &mut Vec::new()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sim_replay_file_reproduces_the_run() {
        let dir = std::env::temp_dir().join("igern_cli_sim_replay");
        std::fs::create_dir_all(&dir).unwrap();
        let replay_path = dir.join("healthy.simreplay");
        let replay_path = replay_path.to_str().unwrap();

        // Write a replay of a healthy offline plan by hand, then the
        // `--replay` path must execute it to the same digest as the
        // direct run.
        let cfg = igern_sim::SimConfig {
            seed: 4,
            ticks: 15,
            objects: 16,
            queries: 4,
            server: false,
            ..igern_sim::SimConfig::default()
        };
        let plan = cfg.plan();
        std::fs::write(replay_path, igern_sim::write_replay(&plan)).unwrap();
        let direct = igern_sim::execute(&plan, None).unwrap();

        let a = args(&["--replay", replay_path]);
        let mut buf = Vec::new();
        sim_cmd(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains(&format!("digest {:016x}", direct.digest)),
            "{text}"
        );

        // A corrupt replay file is an error, not a panic.
        std::fs::write(replay_path, "{\"format\":\"nope\"}").unwrap();
        let err = sim_cmd(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains(replay_path), "{err}");
    }

    #[test]
    fn wal_flags_validate() {
        // Dependent flags without --wal-dir are rejected.
        for bad in [
            &["--snapshot-every", "8"][..],
            &["--fsync", "tick"][..],
            &["--segment-bytes", "4096"][..],
        ] {
            let err = serve(&args(bad), &mut Vec::new()).unwrap_err();
            assert!(err.to_string().contains("requires --wal-dir"), "{err}");
        }
        let a = args(&["--wal-dir", "/tmp/x", "--fsync", "sometimes"]);
        let err = wal_options_arg(&a).unwrap_err();
        assert!(err.to_string().contains("--fsync"), "{err}");
        let a = args(&[
            "--wal-dir",
            "/tmp/x",
            "--fsync",
            "never",
            "--snapshot-every",
            "9",
        ]);
        let opts = wal_options_arg(&a).unwrap().unwrap();
        assert_eq!(opts.fsync, igern_wal::FsyncPolicy::Never);
        assert_eq!(opts.snapshot_every, 9);

        // `wal` alone names its subcommands; unknown dirs error cleanly.
        let err = dispatch("wal", &Args::default(), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("wal inspect"), "{err}");
        let a = args(&["--dir", "/nonexistent-igern-wal"]);
        assert!(wal_inspect(&a, &mut Vec::new()).is_err());
        let a = args(&["--addr", "127.0.0.1:1", "--objects", "0"]);
        assert!(wal_drive(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn wal_drive_mirrors_a_durable_server_and_inspect_reads_the_dir() {
        let dir = std::env::temp_dir().join(format!("igern_cli_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_dir = dir.join("wal");
        let wal_dir_s = wal_dir.to_str().unwrap().to_string();
        let port = {
            let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let handle = {
            let addr = addr.clone();
            let wal_dir_s = wal_dir_s.clone();
            std::thread::spawn(move || {
                let a = args(&[
                    "--addr",
                    &addr,
                    "--tick-ms",
                    "0",
                    "--wal-dir",
                    &wal_dir_s,
                    "--snapshot-every",
                    "5",
                ]);
                let mut buf = Vec::new();
                serve(&a, &mut buf).unwrap();
                String::from_utf8(buf).unwrap()
            })
        };
        // Drive a seeded workload; the command itself asserts served
        // answers match its offline mirror every tick.
        let a = args(&[
            "--addr",
            &addr,
            "--objects",
            "24",
            "--subs",
            "3",
            "--ticks",
            "12",
            "--seed",
            "3",
        ]);
        let mut buf = Vec::new();
        wal_drive(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("tick 12 digest "), "{text}");
        assert!(text.contains("drove 12 ticks"), "{text}");

        // Inspect sees the periodic snapshot and live segments while
        // the server still runs.
        let a = args(&["--dir", &wal_dir_s]);
        let mut buf = Vec::new();
        wal_inspect(&a, &mut buf).unwrap();
        let inspect = String::from_utf8(buf).unwrap();
        assert!(inspect.contains("snapshot(s):"), "{inspect}");
        assert!(inspect.contains("segment(s):"), "{inspect}");
        assert!(inspect.contains("recovery: tick"), "{inspect}");
        assert!(inspect.contains("clean true"), "{inspect}");

        let mut c = igern_server::Client::connect(&*addr).unwrap();
        c.shutdown_server().unwrap();
        let out = handle.join().expect("serve thread");
        assert!(out.contains("serving on"), "{out}");

        // Graceful shutdown reclaimed every segment; a dry-run
        // recovery over the clean snapshot replays nothing.
        assert!(igern_wal::segment_paths(&wal_dir).unwrap().is_empty());
        let a = args(&["--dir", &wal_dir_s]);
        let mut buf = Vec::new();
        wal_inspect(&a, &mut buf).unwrap();
        let inspect = String::from_utf8(buf).unwrap();
        assert!(inspect.contains("0 segment(s):"), "{inspect}");
        assert!(inspect.contains("clean true"), "{inspect}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_round_trips_a_client_session() {
        use igern_core::processor::Algorithm;
        use igern_server::Client;

        // Pick a free port, then serve on it from a thread. (The serve
        // API blocks until a client SHUTDOWN, as the binary does.)
        let port = {
            let probe = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            probe.local_addr().unwrap().port()
        };
        let dir = std::env::temp_dir().join("igern_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("serve.prom");
        let metrics_path = metrics_path.to_str().unwrap().to_string();
        let addr = format!("127.0.0.1:{port}");
        let handle = {
            let addr = addr.clone();
            let metrics_path = metrics_path.clone();
            std::thread::spawn(move || {
                let a = args(&[
                    "--addr",
                    &addr,
                    "--tick-ms",
                    "0",
                    "--space",
                    "10",
                    "--metrics-out",
                    &metrics_path,
                ]);
                let mut buf = Vec::new();
                serve(&a, &mut buf).unwrap();
                String::from_utf8(buf).unwrap()
            })
        };
        // The listener may not be up yet; retry the connect briefly.
        let mut client = None;
        for _ in 0..100 {
            match Client::connect(&*addr) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let mut client = client.expect("server never came up");
        client.upsert(0, ObjectKind::A, 1.0, 1.0).unwrap();
        client.upsert(1, ObjectKind::A, 2.0, 2.0).unwrap();
        client.upsert(2, ObjectKind::A, 8.0, 8.0).unwrap();
        let sid = client.subscribe(0, Algorithm::IgernMono).unwrap();
        client.step().unwrap();
        client
            .wait_tick_end(1, std::time::Duration::from_secs(30))
            .unwrap();
        assert_eq!(client.answer(sid), vec![1]);
        client.shutdown_server().unwrap();
        let out = handle.join().expect("serve thread");
        assert!(out.contains("serving on"), "{out}");
        assert!(out.contains("server stopped"), "{out}");
        // The metrics dump validates through `stats`.
        let a = args(&["--metrics", &metrics_path]);
        let mut buf = Vec::new();
        stats_cmd(&a, &mut buf).unwrap();
        let table = String::from_utf8(buf).unwrap();
        assert!(table.contains("igern_server_connections_total"), "{table}");
        assert!(table.contains("series ok"), "{table}");
    }

    #[test]
    fn network_distance_run_via_cli() {
        let dir = std::env::temp_dir().join("igern_cli_netdist");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "40",
            "--ticks",
            "5",
            "--seed",
            "17",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();

        // Synthesized network (--net-seed path).
        let a = args(&[
            "--trace",
            trace_path,
            "--algo",
            "igern",
            "--queries",
            "2",
            "--distance",
            "network",
        ]);
        let mut buf = Vec::new();
        run(&a, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("tick 5:"));

        // Loaded network (--network FILE path), saved by gen-network.
        // gen-network's default space is the unit square the mobgen
        // traces use, so the snap targets cover the trace space.
        let net_path = dir.join("n.net");
        let net_path = net_path.to_str().unwrap();
        let a = args(&["--seed", "3", "--k", "6", "--out", net_path]);
        gen_network(&a, &mut Vec::new()).unwrap();
        let a = args(&[
            "--trace",
            trace_path,
            "--distance",
            "network",
            "--network",
            net_path,
            "--queries",
            "2",
            "--ticks",
            "3",
        ]);
        let mut buf = Vec::new();
        run(&a, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("tick 3:"));

        // Network flags without --distance network are dangling.
        let a = args(&["--trace", trace_path, "--network", net_path]);
        let err = run(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--distance network"), "{err}");
        let a = args(&["--trace", trace_path, "--net-seed", "4"]);
        assert!(run(&a, &mut Vec::new()).is_err());
        // And bad mode names are rejected.
        let a = args(&["--trace", trace_path, "--distance", "manhattan"]);
        assert!(run(&a, &mut Vec::new()).is_err());
        // A corrupt network file surfaces the structured load error.
        let bad_path = dir.join("bad.net");
        std::fs::write(&bad_path, "space 0 0 1 1\nnodes 9\n").unwrap();
        let a = args(&[
            "--trace",
            trace_path,
            "--distance",
            "network",
            "--network",
            bad_path.to_str().unwrap(),
        ]);
        let err = run(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("bad.net"), "{err}");
    }

    #[test]
    fn network_and_euclidean_runs_may_rank_differently() {
        // Smoke the semantic difference end to end: both modes run the
        // same trace and print well-formed answers; the summaries both
        // report timings (agreement of *answers* is covered by the
        // core/sim oracle suites, not string-diffed here because the
        // two metrics legitimately disagree).
        let dir = std::env::temp_dir().join("igern_cli_netvse");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.trace");
        let trace_path = trace_path.to_str().unwrap();
        let a = args(&[
            "--objects",
            "50",
            "--ticks",
            "4",
            "--seed",
            "23",
            "--out",
            trace_path,
        ]);
        gen_trace(&a, &mut Vec::new()).unwrap();
        for distance in ["euclidean", "network"] {
            let a = args(&[
                "--trace",
                trace_path,
                "--algo",
                "knn",
                "--k",
                "3",
                "--queries",
                "2",
                "--distance",
                distance,
            ]);
            let mut buf = Vec::new();
            run(&a, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("tick 4:"), "{distance}: {text}");
            assert!(text.contains("ms/tick"), "{distance}");
        }
    }

    #[test]
    fn scenario_presets_generate_traces() {
        let dir = std::env::temp_dir().join("igern_cli_scenario");
        std::fs::create_dir_all(&dir).unwrap();
        for name in Scenario::NAMES {
            let trace_path = dir.join(format!("{name}.trace"));
            let trace_path = trace_path.to_str().unwrap();
            let a = args(&[
                "--objects",
                "60",
                "--ticks",
                "4",
                "--seed",
                "5",
                "--scenario",
                name,
                "--out",
                trace_path,
            ]);
            let mut buf = Vec::new();
            gen_trace(&a, &mut buf).unwrap();
            assert!(String::from_utf8(buf).unwrap().contains("wrote trace"));
            // The preset trace drives a run like any other.
            let a = args(&["--trace", trace_path, "--queries", "1", "--ticks", "2"]);
            run(&a, &mut Vec::new()).unwrap();
        }
        let a = args(&["--scenario", "nope"]);
        let err = gen_trace(&a, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("taxi-dispatch"), "{err}");
        let a = args(&["--scenario", "taxi-dispatch", "--bi", "true"]);
        assert!(gen_trace(&a, &mut Vec::new()).is_err());
    }

    #[test]
    fn sim_network_distance_via_cli() {
        let a = args(&[
            "--seed",
            "2",
            "--ticks",
            "12",
            "--objects",
            "16",
            "--queries",
            "4",
            "--workers",
            "2",
            "--distance",
            "network",
        ]);
        let mut buf = Vec::new();
        sim_cmd(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("(network distance)"), "{text}");
        assert!(text.contains("PASS"), "{text}");
    }
}
