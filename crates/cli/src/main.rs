//! The `igern` binary — see [`igern_cli::USAGE`].

use igern_cli::{dispatch, Args, USAGE};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(mut cmd) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return;
    }
    // `wal` groups subcommands: fold the next token into the command
    // name (`wal inspect`, `wal drive`) before flag parsing.
    if cmd == "wal" {
        if let Some(sub) = argv.next() {
            cmd = format!("{cmd} {sub}");
        }
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = dispatch(&cmd, &args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
