//! [`TickRunner`] — one tick backend behind a worker-count switch.
//!
//! The CLI's `run` command and the network server both need "a thing
//! that ticks": the serial [`Processor`] when one worker suffices, the
//! sharded [`ShardedEngine`] otherwise. Both produce bit-identical
//! answers; this enum forwards the shared API so drivers are written
//! once. Unlike the raw serial processor, every registration error is
//! reported as an [`EngineError`] value (the serial variant pre-checks
//! the conditions the processor would assert on), so long-running
//! drivers never unwind on bad input.
//!
//! [`Processor`]: igern_core::processor::Processor

use igern_core::history::History;
use igern_core::hooks::SharedSimHooks;
use igern_core::obs::{MetricsRegistry, PipelineMetrics};
use igern_core::processor::{Algorithm, Processor};
use igern_core::{DistanceMode, ObjectKind, SpatialStore};
use igern_geom::Point;
use igern_grid::ObjectId;

use crate::{EngineError, EngineMetrics, Placement, ShardedEngine};

/// Either tick backend: the serial processor (`workers == 1`) or the
/// sharded engine. Answers are identical across the two.
pub enum TickRunner {
    /// The serial [`Processor`].
    Serial(Box<Processor>),
    /// The sharded multi-worker engine.
    Sharded(Box<ShardedEngine>),
}

impl TickRunner {
    /// Build a runner over a loaded store: serial for `workers == 1`,
    /// sharded otherwise.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn new(store: SpatialStore, workers: usize, placement: Placement) -> Self {
        assert!(workers >= 1, "need at least one worker");
        if workers == 1 {
            TickRunner::Serial(Box::new(Processor::new(store)))
        } else {
            TickRunner::Sharded(Box::new(ShardedEngine::new(store, workers, placement)))
        }
    }

    /// Number of evaluation workers (1 for the serial backend).
    pub fn num_workers(&self) -> usize {
        match self {
            TickRunner::Serial(_) => 1,
            TickRunner::Sharded(e) => e.num_workers(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &SpatialStore {
        match self {
            TickRunner::Serial(p) => p.store(),
            TickRunner::Sharded(e) => e.store(),
        }
    }

    /// Enable or disable dirty-region skip routing.
    pub fn set_skip_routing(&mut self, on: bool) {
        match self {
            TickRunner::Serial(p) => p.set_skip_routing(on),
            TickRunner::Sharded(e) => e.set_skip_routing(on),
        }
    }

    /// Enable or disable shared-scan batch evaluation (see
    /// [`igern_core::batch::BatchEvaluator`]). Answers are bit-identical
    /// either way, on either backend.
    pub fn set_batch(&mut self, on: bool) {
        match self {
            TickRunner::Serial(p) => p.set_batch(on),
            TickRunner::Sharded(e) => e.set_batch(on),
        }
    }

    /// Cap the history of subsequently added queries (`None` =
    /// unbounded).
    pub fn set_history_capacity(&mut self, cap: Option<usize>) {
        match self {
            TickRunner::Serial(p) => p.set_history_capacity(cap),
            TickRunner::Sharded(e) => e.set_history_capacity(cap),
        }
    }

    /// Register both backends' instruments under `prefix`; the sharded
    /// engine additionally emits its coordinator/worker series there.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry, prefix: &str) {
        match self {
            TickRunner::Serial(p) => {
                p.set_metrics(Some(PipelineMetrics::register(registry, prefix)));
            }
            TickRunner::Sharded(e) => {
                let m = EngineMetrics::register(registry, prefix, e.num_workers());
                e.set_metrics(Some(m));
            }
        }
    }

    /// Install (or clear, with `None`) simulation fault-injection hooks
    /// on the underlying backend (see [`igern_core::hooks::SimHooks`]).
    /// Both backends fire `on_tick` / apply `desync_targets` at the same
    /// logical point of `step`, so a hooked serial and a hooked sharded
    /// runner stay bit-identical.
    pub fn set_sim_hooks(&mut self, hooks: Option<SharedSimHooks>) {
        match self {
            TickRunner::Serial(p) => p.set_sim_hooks(hooks),
            TickRunner::Sharded(e) => e.set_sim_hooks(hooks),
        }
    }

    /// Test hook: corrupt the store's bucket state for `id` (see
    /// `SpatialStore::debug_force_desync`). Returns whether the object
    /// was present.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        match self {
            TickRunner::Serial(p) => p.debug_force_desync(id),
            TickRunner::Sharded(e) => e.debug_force_desync(id),
        }
    }

    /// Register a continuous query anchored at `obj`; returns its index
    /// (tombstoned slots are reused first, identically on both
    /// backends).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`], [`EngineError::NotKindA`], or
    /// [`EngineError::ZeroK`] — on both backends (the serial variant
    /// pre-validates instead of asserting).
    pub fn add_query(&mut self, obj: ObjectId, algo: Algorithm) -> Result<usize, EngineError> {
        self.add_query_in(obj, algo, DistanceMode::Euclidean)
    }

    /// [`TickRunner::add_query`] with an explicit distance mode.
    ///
    /// # Errors
    /// As [`TickRunner::add_query`], plus [`EngineError::NoNetwork`]
    /// when [`DistanceMode::Network`] is requested on a store without an
    /// attached road network — on both backends.
    pub fn add_query_in(
        &mut self,
        obj: ObjectId,
        algo: Algorithm,
        mode: DistanceMode,
    ) -> Result<usize, EngineError> {
        match self {
            TickRunner::Serial(p) => {
                if p.store().position(obj).is_none() {
                    return Err(EngineError::UnknownObject(obj));
                }
                if algo.is_bichromatic() && p.store().kind(obj) != ObjectKind::A {
                    return Err(EngineError::NotKindA(obj));
                }
                if let Algorithm::IgernMonoK(0) | Algorithm::IgernBiK(0) | Algorithm::Knn(0) = algo
                {
                    return Err(EngineError::ZeroK);
                }
                if mode == DistanceMode::Network && p.store().network().is_none() {
                    return Err(EngineError::NoNetwork);
                }
                Ok(p.add_query_in(obj, algo, mode))
            }
            TickRunner::Sharded(e) => e.add_query_in(obj, algo, mode),
        }
    }

    /// Drop a registered query; its index becomes reusable.
    ///
    /// # Panics
    /// Panics when the query was already removed.
    pub fn remove_query(&mut self, i: usize) {
        match self {
            TickRunner::Serial(p) => p.remove_query(i),
            TickRunner::Sharded(e) => e.remove_query(i),
        }
    }

    /// Insert a new moving object into the store at runtime.
    pub fn insert_object(&mut self, id: ObjectId, kind: ObjectKind, pos: Point) {
        match self {
            TickRunner::Serial(p) => p.insert_object(id, kind, pos),
            TickRunner::Sharded(e) => e.insert_object(id, kind, pos),
        }
    }

    /// Remove a moving object from the store at runtime.
    ///
    /// # Panics
    /// Panics if a live query is anchored at the object — callers that
    /// take ids from untrusted input must check first.
    pub fn remove_object(&mut self, id: ObjectId) -> Option<Point> {
        match self {
            TickRunner::Serial(p) => p.remove_object(id),
            TickRunner::Sharded(e) => e.remove_object(id),
        }
    }

    /// Apply a single position update without ticking (streaming
    /// ingestion); the dirty journal carries it into the next `step`.
    pub fn apply_update(&mut self, id: ObjectId, pos: Point) {
        match self {
            TickRunner::Serial(p) => p.apply_update(id, pos),
            TickRunner::Sharded(e) => e.apply_update(id, pos),
        }
    }

    /// Evaluate every query without applying updates or routing.
    pub fn evaluate_all(&mut self) {
        match self {
            TickRunner::Serial(p) => p.evaluate_all(),
            TickRunner::Sharded(e) => e.evaluate_all(),
        }
    }

    /// Apply one tick of updates and re-evaluate.
    pub fn step(&mut self, updates: &[(ObjectId, Point)]) {
        match self {
            TickRunner::Serial(p) => p.step(updates),
            TickRunner::Sharded(e) => e.step(updates),
        }
    }

    /// Latest answer of query `i`, sorted by object id.
    ///
    /// # Panics
    /// Panics when the query was removed.
    pub fn answer(&self, i: usize) -> &[ObjectId] {
        match self {
            TickRunner::Serial(p) => p.answer(i),
            TickRunner::Sharded(e) => e.answer(i),
        }
    }

    /// The query object of query `i`.
    pub fn query_object(&self, i: usize) -> ObjectId {
        match self {
            TickRunner::Serial(p) => p.query_object(i),
            TickRunner::Sharded(e) => e.query_object(i),
        }
    }

    /// Per-tick history of query `i`.
    pub fn history(&self, i: usize) -> &History {
        match self {
            TickRunner::Serial(p) => p.history(i),
            TickRunner::Sharded(e) => e.history(i),
        }
    }

    /// Current tick count.
    pub fn tick(&self) -> u64 {
        match self {
            TickRunner::Serial(p) => p.tick(),
            TickRunner::Sharded(e) => e.tick(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn store() -> SpatialStore {
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new((i * 7 % 12) as f64 / 1.2, (i * 5 % 12) as f64 / 1.2))
            .collect();
        let mut kinds = vec![ObjectKind::A; 8];
        kinds.extend(vec![ObjectKind::B; 4]);
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        s.load(&pts);
        s
    }

    #[test]
    fn serial_and_sharded_runners_agree() {
        let mut serial = TickRunner::new(store(), 1, Placement::RoundRobin);
        let mut sharded = TickRunner::new(store(), 3, Placement::RoundRobin);
        assert_eq!(serial.num_workers(), 1);
        assert_eq!(sharded.num_workers(), 3);
        for r in [&mut serial, &mut sharded] {
            r.set_history_capacity(Some(4));
            let q = r.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
            r.add_query(ObjectId(1), Algorithm::Knn(2)).unwrap();
            r.evaluate_all();
            r.apply_update(ObjectId(5), Point::new(0.4, 0.4));
            r.step(&[]);
            assert_eq!(r.query_object(q), ObjectId(0));
            assert_eq!(r.tick(), 1);
            assert_eq!(r.history(q).len(), 2);
        }
        for q in 0..2 {
            assert_eq!(serial.answer(q), sharded.answer(q), "query {q}");
        }
    }

    #[test]
    fn serial_runner_reports_errors_instead_of_panicking() {
        let mut r = TickRunner::new(store(), 1, Placement::RoundRobin);
        assert_eq!(
            r.add_query(ObjectId(99), Algorithm::IgernMono),
            Err(EngineError::UnknownObject(ObjectId(99)))
        );
        assert_eq!(
            r.add_query(ObjectId(9), Algorithm::IgernBi),
            Err(EngineError::NotKindA(ObjectId(9)))
        );
        assert_eq!(
            r.add_query(ObjectId(0), Algorithm::Knn(0)),
            Err(EngineError::ZeroK)
        );
        // Dynamic population flows through the shared surface.
        r.insert_object(ObjectId(50), ObjectKind::A, Point::new(5.0, 5.0));
        let q = r.add_query(ObjectId(50), Algorithm::IgernMono).unwrap();
        r.step(&[]);
        let _ = r.answer(q);
        assert!(r.store().position(ObjectId(50)).is_some());
        r.remove_query(q);
        assert_eq!(r.remove_object(ObjectId(50)), Some(Point::new(5.0, 5.0)));
    }
}
