//! Shard placement: which worker owns which standing query.
//!
//! Two policies, both deterministic (placement never affects answers —
//! only which thread computes them — but determinism keeps runs
//! reproducible and makes the equivalence tests meaningful):
//!
//! * [`Placement::RoundRobin`] — queries are dealt to workers in rotation
//!   and shards are rebalanced to within one query of each other after
//!   every add/remove. Best when query costs are homogeneous.
//! * [`Placement::AnchorCell`] — a query lands on the worker owning its
//!   anchor's grid cell (cells are split into contiguous row-major bands,
//!   one per worker), so queries that read neighbouring store cells run
//!   on the same core. Skewed anchor distributions are tolerated up to a
//!   2× load imbalance before queries migrate off the hottest shard.

/// Shard placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Rotate over workers; keep shard sizes within 1 of each other.
    #[default]
    RoundRobin,
    /// Map the anchor's grid cell to a worker band; rebalance at 2×
    /// imbalance.
    AnchorCell,
}

impl Placement {
    /// Parse a CLI-style name (`round-robin` | `anchor-cell`).
    pub fn parse(name: &str) -> Option<Placement> {
        match name {
            "round-robin" => Some(Placement::RoundRobin),
            "anchor-cell" => Some(Placement::AnchorCell),
            _ => None,
        }
    }

    /// The worker that should adopt a new query, given the anchor's cell,
    /// the grid's cell count, per-worker live-query loads, and the
    /// round-robin cursor (advanced on use).
    pub(crate) fn pick(
        self,
        cell: usize,
        num_cells: usize,
        loads: &[usize],
        rr_cursor: &mut usize,
    ) -> usize {
        match self {
            Placement::RoundRobin => {
                let w = *rr_cursor % loads.len();
                *rr_cursor += 1;
                w
            }
            Placement::AnchorCell => cell * loads.len() / num_cells.max(1),
        }
    }

    /// Whether the load spread warrants migrating a query from the
    /// fullest shard to the emptiest.
    pub(crate) fn needs_rebalance(self, min: usize, max: usize) -> bool {
        match self {
            Placement::RoundRobin => max > min + 1,
            Placement::AnchorCell => max > 2 * min + 1,
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Placement::RoundRobin => "round-robin",
            Placement::AnchorCell => "anchor-cell",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        for p in [Placement::RoundRobin, Placement::AnchorCell] {
            assert_eq!(Placement::parse(&p.to_string()), Some(p));
        }
        assert_eq!(Placement::parse("nope"), None);
    }

    #[test]
    fn round_robin_rotates() {
        let loads = [0usize; 3];
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| Placement::RoundRobin.pick(0, 64, &loads, &mut cursor))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn anchor_cell_maps_bands() {
        let loads = [0usize; 4];
        let mut cursor = 0;
        // 64 cells over 4 workers: 16-cell bands.
        assert_eq!(Placement::AnchorCell.pick(0, 64, &loads, &mut cursor), 0);
        assert_eq!(Placement::AnchorCell.pick(15, 64, &loads, &mut cursor), 0);
        assert_eq!(Placement::AnchorCell.pick(16, 64, &loads, &mut cursor), 1);
        assert_eq!(Placement::AnchorCell.pick(63, 64, &loads, &mut cursor), 3);
    }

    #[test]
    fn rebalance_thresholds_differ() {
        assert!(Placement::RoundRobin.needs_rebalance(0, 2));
        assert!(!Placement::RoundRobin.needs_rebalance(1, 2));
        assert!(!Placement::AnchorCell.needs_rebalance(1, 3));
        assert!(Placement::AnchorCell.needs_rebalance(1, 4));
    }
}
