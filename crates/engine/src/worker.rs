//! The worker side of the coordinator/worker protocol: a long-lived
//! thread owning a disjoint shard of query slots, evaluating them against
//! a frozen [`SpatialStore`] snapshot each tick.
//!
//! # Protocol
//!
//! Workers receive [`ToWorker`] messages over a per-worker mpsc channel
//! and answer ticks on one shared results channel. Between ticks the
//! coordinator may add, remove, or *take* (migrate) slots; those messages
//! are processed in FIFO order, so shard membership is always settled
//! before the next [`ToWorker::Tick`] arrives.
//!
//! # The store hand-off
//!
//! Each tick ships an `Arc<SpatialStore>` clone. The worker drops its
//! clone **before** sending the shard report; the mpsc channel's
//! happens-before edge then guarantees that once the coordinator has
//! collected every report, it holds the only reference again and
//! `Arc::get_mut` succeeds for the next tick's mutations. The borrow is
//! scoped to the tick without any locking on the hot path.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use igern_core::batch::{BatchEvaluator, SlotLane};
use igern_core::eval::{evaluate_query, QuerySlot};
use igern_core::hooks::SharedSimHooks;
use igern_core::metrics::{SeriesStats, TickSample};
use igern_core::{EvalScratch, SpatialStore};
use igern_grid::ObjectId;

/// One tick's work order: the frozen store snapshot plus tick metadata.
pub(crate) struct TickJob {
    pub store: Arc<SpatialStore>,
    pub tick: u64,
    pub route: bool,
    /// Evaluate the shard through the shared-scan batch evaluator
    /// (bit-identical answers; see [`igern_core::batch`]).
    pub batch: bool,
    /// Simulation fault-injection hooks; `None` outside the harness.
    pub hooks: Option<SharedSimHooks>,
}

/// A worker shard as a batch-evaluation lane; every entry is live.
struct ShardLane<'a>(&'a mut [(usize, QuerySlot)]);

impl SlotLane for ShardLane<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn slot(&mut self, i: usize) -> Option<&mut QuerySlot> {
        Some(&mut self.0[i].1)
    }
}

/// Coordinator → worker messages.
pub(crate) enum ToWorker {
    /// Adopt a query slot under the given engine-wide query id.
    Add(usize, QuerySlot),
    /// Drop a query slot (the query was removed).
    Remove(usize),
    /// Hand a slot back for migration to another worker.
    Take(usize, Sender<QuerySlot>),
    /// Evaluate the whole shard against the shipped store snapshot.
    Tick(TickJob),
    /// Report the per-worker aggregate of every sample produced so far.
    TakeStats(Sender<SeriesStats>),
    /// Exit the worker loop.
    Shutdown,
}

/// One query's result within a shard report.
pub(crate) struct QueryReport {
    pub qid: usize,
    pub sample: TickSample,
    /// The new answer when the query was evaluated; `None` on a skip
    /// (the coordinator's previous answer remains valid).
    pub answer: Option<Vec<ObjectId>>,
}

/// Worker → coordinator tick result: every shard query's report, in
/// ascending `qid` order, plus the worker's own timing of the tick (for
/// per-worker latency metrics).
pub(crate) struct ShardReport {
    /// Reporting worker's id.
    pub worker: usize,
    /// Wall-clock the worker spent evaluating its shard this tick.
    pub elapsed: Duration,
    /// Multi-member shared-scan groups formed this tick (0 unbatched).
    pub batch_groups: u64,
    /// Queries evaluated inside those groups (0 unbatched).
    pub batch_members: u64,
    pub reports: Vec<QueryReport>,
}

/// The worker loop: owns the shard until shutdown (or until the
/// coordinator hangs up, which also ends the loop so drops stay clean).
pub(crate) fn worker_loop(worker: usize, rx: Receiver<ToWorker>, results: Sender<ShardReport>) {
    // The shard, kept sorted by qid so reports are emitted in
    // deterministic ascending order.
    let mut shard: Vec<(usize, QuerySlot)> = Vec::new();
    let mut stats = SeriesStats::new();
    // The worker's persistent evaluation workspace: it outlives every
    // `Arc<SpatialStore>` snapshot hand-off, so steady-state shard
    // evaluation allocates nothing once the buffers are warm.
    let mut scratch = EvalScratch::new();
    // Persistent shared-scan batch evaluator; its feeds/plan buffers warm
    // up once and are reused every batched tick.
    let mut batcher = BatchEvaluator::new();
    for msg in rx {
        match msg {
            ToWorker::Add(qid, slot) => {
                let at = shard.partition_point(|(id, _)| *id < qid);
                shard.insert(at, (qid, slot));
            }
            ToWorker::Remove(qid) => {
                if let Ok(at) = shard.binary_search_by_key(&qid, |(id, _)| *id) {
                    shard.remove(at);
                }
            }
            ToWorker::Take(qid, reply) => {
                let at = shard
                    .binary_search_by_key(&qid, |(id, _)| *id)
                    .expect("cannot take a query this worker does not own");
                let (_, slot) = shard.remove(at);
                let _ = reply.send(slot);
            }
            ToWorker::Tick(job) => {
                let TickJob {
                    store,
                    tick,
                    route,
                    batch,
                    hooks,
                } = job;
                if let Some(h) = &hooks {
                    h.on_worker_shard(worker, tick);
                }
                let start = Instant::now();
                let mut reports = Vec::with_capacity(shard.len());
                let (mut batch_groups, mut batch_members) = (0, 0);
                if batch {
                    let mut lane = ShardLane(&mut shard);
                    batcher.run(&store, &mut lane, tick, route, &mut scratch);
                    batch_groups = batcher.groups();
                    batch_members = batcher.members();
                    for ((qid, slot), sample) in shard.iter_mut().zip(batcher.samples()) {
                        let sample = sample.expect("batched run fills every live lane slot");
                        stats.push(&sample);
                        let answer = (!sample.skipped).then(|| slot.answer.clone());
                        reports.push(QueryReport {
                            qid: *qid,
                            sample,
                            answer,
                        });
                    }
                } else {
                    for (qid, slot) in &mut shard {
                        let sample = evaluate_query(&store, slot, tick, route, &mut scratch);
                        stats.push(&sample);
                        let answer = (!sample.skipped).then(|| slot.answer.clone());
                        reports.push(QueryReport {
                            qid: *qid,
                            sample,
                            answer,
                        });
                    }
                }
                let elapsed = start.elapsed();
                // Release the store snapshot before reporting: the
                // coordinator regains exclusive ownership exactly when
                // the last report lands.
                drop(store);
                let report = ShardReport {
                    worker,
                    elapsed,
                    batch_groups,
                    batch_members,
                    reports,
                };
                if results.send(report).is_err() {
                    break;
                }
            }
            ToWorker::TakeStats(reply) => {
                let _ = reply.send(stats.clone());
            }
            ToWorker::Shutdown => break,
        }
    }
}
