//! `igern-engine` — a sharded, multi-worker tick engine for standing RNN
//! queries.
//!
//! The serial [`Processor`] walks every registered query on one thread,
//! so wall-clock per tick grows linearly with query count and uses one
//! core. This crate treats the query population as a *batch*: a pool of
//! long-lived worker threads (std only — `std::thread` + `mpsc`) each
//! owns a disjoint shard of queries and evaluates it concurrently against
//! a shared, frozen [`SpatialStore`] snapshot.
//!
//! # Tick protocol
//!
//! 1. **Apply** — the coordinator thread applies the tick's update stream
//!    to the single store (it holds the only `Arc` reference between
//!    ticks, so `Arc::get_mut` grants plain `&mut` access — no locks).
//! 2. **Publish** — the store's dirty-cell journal now describes the
//!    tick; an `Arc` clone is shipped to every worker.
//! 3. **Evaluate** — each worker runs the same
//!    [`igern_core::eval::evaluate_query`] step the serial processor
//!    uses, over its shard in ascending query-id order, reusing the
//!    dirty-region skip check per query.
//! 4. **Merge** — per-shard [`TickSample`] batches come back over one
//!    results channel; the coordinator merges them in ascending query-id
//!    order, so answers, per-query metrics, and skip decisions are
//!    identical to the serial [`Processor`] regardless of worker count.
//!    Workers drop their store reference before reporting, so after the
//!    merge the coordinator again owns the store exclusively and closes
//!    the tick with `drain_dirty`.
//!
//! Shard membership is managed by a [`Placement`] policy (round-robin or
//! anchor-cell spatial bands) with deterministic rebalancing on query
//! add/remove; see [`placement`].
//!
//! This coordinator/worker protocol is deliberately message-shaped: it is
//! the seam where sharding across processes will eventually land.
//!
//! [`Processor`]: igern_core::processor::Processor
//! [`TickSample`]: igern_core::metrics::TickSample

use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use igern_core::eval::QuerySlot;
use igern_core::history::History;
use igern_core::hooks::SharedSimHooks;
use igern_core::metrics::SeriesStats;
use igern_core::obs::{
    Counter, Gauge, Histogram, MetricsRegistry, PipelineMetrics, LATENCY_BUCKETS_S,
};
use igern_core::processor::Algorithm;
use igern_core::{ContinuousMonitor, DistanceMode, ObjectKind, SpatialStore};
use igern_geom::Point;
use igern_grid::ObjectId;

pub mod placement;
pub mod runner;
mod worker;

pub use placement::Placement;
pub use runner::TickRunner;

use worker::{ShardReport, TickJob, ToWorker};

// The whole design rests on shipping the store and query slots across
// threads; fail at compile time if a field ever breaks that.
const _: () = {
    const fn requires_send_sync<T: Send + Sync>() {}
    const fn requires_send<T: Send>() {}
    requires_send_sync::<SpatialStore>();
    requires_send::<QuerySlot>();
};

/// A recoverable engine registration error. Unlike the serial
/// processor's asserts, the sharded engine reports bad registrations as
/// values so long-running drivers (the CLI, network frontends) can
/// surface them without unwinding across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The query anchor object is not in the store.
    UnknownObject(ObjectId),
    /// A bichromatic algorithm was requested for a non-A anchor.
    NotKindA(ObjectId),
    /// A k-variant algorithm was requested with `k == 0`.
    ZeroK,
    /// A network-distance query was requested on a store with no
    /// attached road network.
    NoNetwork,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownObject(id) => {
                write!(f, "query object {id} not in store")
            }
            EngineError::NotKindA(id) => {
                write!(f, "bichromatic query object {id} must be of kind A")
            }
            EngineError::ZeroK => write!(f, "k must be positive"),
            EngineError::NoNetwork => {
                write!(
                    f,
                    "network-distance query requires an attached road network"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The engine-level observability bundle: the shared [`PipelineMetrics`]
/// surface plus the coordinator/worker instruments that only exist in
/// the sharded engine (per-worker tick latency, shard sizes, snapshot
/// publish / hand-off / merge timings, results-channel backlog, and
/// rebalance activity).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// The engine-agnostic per-sample surface (same names the serial
    /// processor emits under its prefix).
    pub pipeline: PipelineMetrics,
    /// Per-worker shard evaluation latency
    /// (`<prefix>_worker_tick_seconds{worker="i"}`).
    pub worker_tick_seconds: Vec<Histogram>,
    /// Per-worker live-query count (`<prefix>_shard_size{worker="i"}`).
    pub shard_size: Vec<Gauge>,
    /// Time to clone + send the store snapshot to every worker
    /// (`<prefix>_publish_seconds`).
    pub publish_seconds: Histogram,
    /// Time from publishing the snapshot until the coordinator regains
    /// exclusive store ownership — the full `Arc` hand-off round trip
    /// (`<prefix>_handoff_seconds`).
    pub handoff_seconds: Histogram,
    /// Time to sort and apply the merged shard reports
    /// (`<prefix>_merge_seconds`).
    pub merge_seconds: Histogram,
    /// Shard reports already queued when the coordinator started
    /// collecting — the results-channel backlog
    /// (`<prefix>_results_backlog`).
    pub results_backlog: Gauge,
    /// Rebalance passes that migrated at least one query
    /// (`<prefix>_rebalance_total`).
    pub rebalance_total: Counter,
    /// Individual query migrations (`<prefix>_migrations_total`).
    pub migrations_total: Counter,
}

impl EngineMetrics {
    /// Register (or re-attach to) the bundle under `prefix` for an
    /// engine with `workers` worker threads.
    pub fn register(registry: &MetricsRegistry, prefix: &str, workers: usize) -> Self {
        let n = |suffix: &str| format!("{prefix}_{suffix}");
        EngineMetrics {
            pipeline: PipelineMetrics::register(registry, prefix),
            worker_tick_seconds: (0..workers)
                .map(|w| {
                    registry.histogram_labeled(
                        &n("worker_tick_seconds"),
                        &[("worker", &w.to_string())],
                        &LATENCY_BUCKETS_S,
                    )
                })
                .collect(),
            shard_size: (0..workers)
                .map(|w| registry.gauge_labeled(&n("shard_size"), &[("worker", &w.to_string())]))
                .collect(),
            publish_seconds: registry.histogram(&n("publish_seconds"), &LATENCY_BUCKETS_S),
            handoff_seconds: registry.histogram(&n("handoff_seconds"), &LATENCY_BUCKETS_S),
            merge_seconds: registry.histogram(&n("merge_seconds"), &LATENCY_BUCKETS_S),
            results_backlog: registry.gauge(&n("results_backlog")),
            rebalance_total: registry.counter(&n("rebalance_total")),
            migrations_total: registry.counter(&n("migrations_total")),
        }
    }
}

/// Coordinator-side record of one registered query.
struct QueryMeta {
    obj: ObjectId,
    /// Worker currently owning the slot (meaningless when removed).
    worker: usize,
    /// Tombstone: the slot index is free for reuse.
    removed: bool,
}

/// The sharded tick engine. API-compatible with the serial
/// [`Processor`](igern_core::processor::Processor) so callers can switch
/// on a worker count.
pub struct ShardedEngine {
    store: Arc<SpatialStore>,
    senders: Vec<Sender<ToWorker>>,
    results: Receiver<ShardReport>,
    handles: Vec<JoinHandle<()>>,
    placement: Placement,
    rr_cursor: usize,
    queries: Vec<QueryMeta>,
    /// Live queries per worker.
    loads: Vec<usize>,
    /// Latest merged answer per query id.
    answers: Vec<Vec<ObjectId>>,
    /// Merged per-query sample logs.
    histories: Vec<History>,
    tick: u64,
    skip_routing: bool,
    batch: bool,
    history_capacity: Option<usize>,
    metrics: Option<EngineMetrics>,
    sim_hooks: Option<SharedSimHooks>,
}

impl ShardedEngine {
    /// Spawn `workers` long-lived worker threads over a loaded store.
    /// Dirty-region skip routing starts enabled and per-query histories
    /// are unbounded, as in the serial processor.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn new(store: SpatialStore, workers: usize, placement: Placement) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let (results_tx, results) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel();
            let results_tx = results_tx.clone();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                worker::worker_loop(w, rx, results_tx)
            }));
        }
        ShardedEngine {
            store: Arc::new(store),
            senders,
            results,
            handles,
            placement,
            rr_cursor: 0,
            queries: Vec::new(),
            loads: vec![0; workers],
            answers: Vec::new(),
            histories: Vec::new(),
            tick: 0,
            skip_routing: true,
            batch: false,
            history_capacity: None,
            metrics: None,
            sim_hooks: None,
        }
    }

    /// Attach (or detach, with `None`) an observability bundle. When set,
    /// every round records the pipeline surface plus the engine-specific
    /// instruments (per-worker latency, hand-off timings, rebalance
    /// counters). Detached (the default) the hot path pays nothing.
    ///
    /// # Panics
    /// Panics when the bundle was registered for a different worker
    /// count.
    pub fn set_metrics(&mut self, metrics: Option<EngineMetrics>) {
        if let Some(m) = &metrics {
            assert_eq!(
                m.worker_tick_seconds.len(),
                self.num_workers(),
                "metrics bundle registered for a different worker count"
            );
        }
        self.metrics = metrics;
    }

    /// The attached observability bundle, if any.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.metrics.as_ref()
    }

    /// Install (or clear, with `None`) simulation fault-injection hooks
    /// (see [`igern_core::hooks::SimHooks`]). [`ShardedEngine::step`]
    /// fires `on_tick` and applies `desync_targets` after updates are
    /// applied and before the round is published; each worker fires
    /// `on_worker_shard` before evaluating its shard. Never installed in
    /// production.
    pub fn set_sim_hooks(&mut self, hooks: Option<SharedSimHooks>) {
        self.sim_hooks = hooks;
    }

    /// The underlying store.
    pub fn store(&self) -> &SpatialStore {
        &self.store
    }

    /// Exclusive store access; sound because the coordinator holds the
    /// only `Arc` reference between ticks (workers release theirs before
    /// reporting).
    fn store_mut(&mut self) -> &mut SpatialStore {
        Arc::get_mut(&mut self.store).expect("store uniquely owned between ticks")
    }

    /// Test hook: corrupt the store's bucket state for `id` (see
    /// `SpatialStore::debug_force_desync`). Returns whether the object
    /// was present.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        self.store_mut().debug_force_desync(id)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.senders.len()
    }

    /// The active placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Live queries per worker (the shard sizes).
    pub fn worker_loads(&self) -> &[usize] {
        &self.loads
    }

    /// Enable or disable dirty-region skip routing (mirrors the serial
    /// processor's flag).
    pub fn set_skip_routing(&mut self, on: bool) {
        self.skip_routing = on;
    }

    /// Whether dirty-region skip routing is enabled.
    pub fn skip_routing(&self) -> bool {
        self.skip_routing
    }

    /// Enable or disable shared-scan batch evaluation inside each worker
    /// shard (mirrors the serial processor's
    /// [`set_batch`](igern_core::processor::Processor::set_batch)). Off by
    /// default; answers and counters are bit-identical either way.
    pub fn set_batch(&mut self, on: bool) {
        self.batch = on;
    }

    /// Whether shared-scan batch evaluation is enabled.
    pub fn batch(&self) -> bool {
        self.batch
    }

    /// Cap the history of subsequently added queries (`None` =
    /// unbounded). Aggregates still fold every sample exactly.
    pub fn set_history_capacity(&mut self, cap: Option<usize>) {
        if let Some(c) = cap {
            assert!(c >= 1, "history capacity must be at least 1");
        }
        self.history_capacity = cap;
    }

    /// The history capacity applied to newly added queries.
    pub fn history_capacity(&self) -> Option<usize> {
        self.history_capacity
    }

    /// Register a continuous query anchored at moving object `obj`;
    /// returns its index. Index assignment (tombstone reuse first)
    /// matches the serial processor exactly.
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`] when `obj` is not in the store;
    /// [`EngineError::NotKindA`] when a bichromatic algorithm is
    /// requested for a non-A object; [`EngineError::ZeroK`] when a
    /// k-variant algorithm is given `k == 0`.
    pub fn add_query(&mut self, obj: ObjectId, algo: Algorithm) -> Result<usize, EngineError> {
        self.add_query_in(obj, algo, DistanceMode::Euclidean)
    }

    /// [`ShardedEngine::add_query`] with an explicit distance mode.
    ///
    /// # Errors
    /// As [`ShardedEngine::add_query`], plus [`EngineError::NoNetwork`]
    /// when [`DistanceMode::Network`] is requested on a store without an
    /// attached road network.
    pub fn add_query_in(
        &mut self,
        obj: ObjectId,
        algo: Algorithm,
        mode: DistanceMode,
    ) -> Result<usize, EngineError> {
        if self.store.position(obj).is_none() {
            return Err(EngineError::UnknownObject(obj));
        }
        if algo.is_bichromatic() && self.store.kind(obj) != ObjectKind::A {
            return Err(EngineError::NotKindA(obj));
        }
        if let Algorithm::IgernMonoK(0) | Algorithm::IgernBiK(0) | Algorithm::Knn(0) = algo {
            return Err(EngineError::ZeroK);
        }
        if mode == DistanceMode::Network && self.store.network().is_none() {
            return Err(EngineError::NoNetwork);
        }
        self.add_query_with(obj, algo.make_monitor_in(mode, Some(obj)))
    }

    /// Register a query evaluated by a caller-supplied monitor; returns
    /// its index (tombstoned slots are reused first).
    ///
    /// # Errors
    /// [`EngineError::UnknownObject`] when `obj` is not in the store.
    pub fn add_query_with(
        &mut self,
        obj: ObjectId,
        monitor: Box<dyn ContinuousMonitor>,
    ) -> Result<usize, EngineError> {
        let pos = self
            .store
            .position(obj)
            .ok_or(EngineError::UnknownObject(obj))?;
        let cell = self.store.all().cell_of_point(pos);
        let num_cells = self.store.all().num_cells();
        let worker = self
            .placement
            .pick(cell, num_cells, &self.loads, &mut self.rr_cursor);
        let meta = QueryMeta {
            obj,
            worker,
            removed: false,
        };
        let qid = match self.queries.iter().position(|m| m.removed) {
            Some(i) => {
                self.queries[i] = meta;
                self.answers[i].clear();
                self.histories[i] = History::with_capacity(self.history_capacity);
                i
            }
            None => {
                self.queries.push(meta);
                self.answers.push(Vec::new());
                self.histories
                    .push(History::with_capacity(self.history_capacity));
                self.queries.len() - 1
            }
        };
        self.loads[worker] += 1;
        self.send(worker, ToWorker::Add(qid, QuerySlot::new(obj, monitor)));
        self.rebalance();
        Ok(qid)
    }

    /// Drop a registered query; its slot, answer, and history are freed
    /// and the index becomes reusable. Other indices stay stable.
    ///
    /// # Panics
    /// Panics when the query was already removed.
    pub fn remove_query(&mut self, i: usize) {
        assert!(!self.queries[i].removed, "query {i} already removed");
        let worker = self.queries[i].worker;
        self.queries[i].removed = true;
        self.loads[worker] -= 1;
        self.answers[i] = Vec::new();
        self.histories[i] = History::unbounded();
        self.send(worker, ToWorker::Remove(i));
        self.rebalance();
    }

    /// Insert a new moving object into the store at runtime.
    pub fn insert_object(&mut self, id: ObjectId, kind: ObjectKind, pos: Point) {
        self.store_mut().insert(id, kind, pos);
    }

    /// Apply a single position update without ticking (streaming
    /// ingestion). Touched cells stay in the dirty journal until the
    /// next [`ShardedEngine::step`] closes the round, so skip routing
    /// stays sound — the serial processor's
    /// [`apply_update`](igern_core::processor::Processor::apply_update)
    /// contract, mirrored here.
    pub fn apply_update(&mut self, id: ObjectId, pos: Point) {
        self.store_mut().apply(id, pos);
        if let Some(m) = &self.metrics {
            m.pipeline.updates_total.inc();
        }
    }

    /// Remove a moving object from the store at runtime.
    ///
    /// # Panics
    /// Panics if a live query is anchored at the object.
    pub fn remove_object(&mut self, id: ObjectId) -> Option<Point> {
        assert!(
            !self.queries.iter().any(|m| !m.removed && m.obj == id),
            "cannot remove the anchor of a live query"
        );
        self.store_mut().remove(id)
    }

    /// Apply one tick of updates and fan the evaluation out to the
    /// workers, skipping queries whose watched cells saw no update (when
    /// routing is on). Blocks until every shard has reported and the
    /// merged state is consistent.
    pub fn step(&mut self, updates: &[(ObjectId, Point)]) {
        let start = self.metrics.is_some().then(Instant::now);
        {
            let store = self.store_mut();
            for &(id, pos) in updates {
                store.apply(id, pos);
            }
        }
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.pipeline.apply_seconds.observe_duration(t0.elapsed());
            m.pipeline.updates_total.add(updates.len() as u64);
        }
        self.tick += 1;
        if let Some(h) = self.sim_hooks.clone() {
            h.on_tick(self.tick);
            for id in h.desync_targets(self.tick) {
                self.store_mut().debug_force_desync(id);
            }
        }
        self.run_round(self.skip_routing);
    }

    /// Evaluate all queries against the current store state without
    /// applying updates, ignoring skip routing (initial evaluation at T₀
    /// / force-evaluate oracle) — the parallel form of the serial
    /// processor's `evaluate_all`.
    pub fn evaluate_all(&mut self) {
        self.run_round(false);
    }

    fn run_round(&mut self, route: bool) {
        let publish_start = self.metrics.is_some().then(Instant::now);
        for tx in &self.senders {
            let job = TickJob {
                store: Arc::clone(&self.store),
                tick: self.tick,
                route,
                batch: self.batch,
                hooks: self.sim_hooks.clone(),
            };
            tx.send(ToWorker::Tick(job)).expect("worker alive");
        }
        if let (Some(m), Some(t0)) = (&self.metrics, publish_start) {
            m.publish_seconds.observe_duration(t0.elapsed());
        }
        let mut merged = Vec::new();
        let mut received = 0;
        // Reports already queued before the coordinator starts waiting
        // measure how far the workers run ahead of the merge.
        let mut backlog = 0usize;
        while received < self.senders.len() {
            let report = if received == backlog {
                match self.results.try_recv() {
                    Ok(r) => {
                        backlog += 1;
                        r
                    }
                    Err(_) => self.results.recv().expect("worker alive"),
                }
            } else {
                self.results.recv().expect("worker alive")
            };
            received += 1;
            if let Some(m) = &self.metrics {
                m.worker_tick_seconds[report.worker].observe_duration(report.elapsed);
                if report.batch_groups > 0 {
                    m.pipeline.batch_groups_total.add(report.batch_groups);
                    m.pipeline.batch_members_total.add(report.batch_members);
                }
            }
            merged.extend(report.reports);
        }
        // Every worker released its store clone before reporting: the
        // coordinator owns the snapshot exclusively again — the `Arc`
        // hand-off round trip ends here.
        if let (Some(m), Some(t0)) = (&self.metrics, publish_start) {
            m.handoff_seconds.observe_duration(t0.elapsed());
            m.results_backlog.set(backlog as f64);
        }
        let merge_start = self.metrics.is_some().then(Instant::now);
        // Deterministic merge: shard reports are each qid-sorted; the
        // global order is re-established so histories and answers are
        // written exactly as the serial processor would.
        merged.sort_unstable_by_key(|r| r.qid);
        for r in merged {
            if let Some(m) = &self.metrics {
                m.pipeline.record_sample(&r.sample);
            }
            self.histories[r.qid].push(r.sample);
            if let Some(ans) = r.answer {
                self.answers[r.qid] = ans;
            }
        }
        if let Some(m) = &self.metrics {
            if let Some(t0) = merge_start {
                m.merge_seconds.observe_duration(t0.elapsed());
            }
            for (w, &load) in self.loads.iter().enumerate() {
                m.shard_size[w].set(load as f64);
            }
            m.pipeline
                .dirty_cells
                .observe(self.store.dirty_all().count() as f64);
            m.pipeline.ticks_total.inc();
        }
        // Close out the journal so the next tick's dirt starts clean.
        self.store_mut().drain_dirty();
    }

    /// Migrate queries off the fullest shard until the placement policy
    /// is satisfied. Deterministic: highest query id moves first, ties on
    /// load break toward the lowest worker id.
    fn rebalance(&mut self) {
        let mut migrated = 0u64;
        loop {
            let (max_w, &max) = self
                .loads
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .expect("at least one worker");
            let (min_w, &min) = self
                .loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                .expect("at least one worker");
            if !self.placement.needs_rebalance(min, max) {
                if let (Some(m), 1..) = (&self.metrics, migrated) {
                    m.rebalance_total.inc();
                    m.migrations_total.add(migrated);
                }
                return;
            }
            let qid = self
                .queries
                .iter()
                .enumerate()
                .rev()
                .find(|(_, m)| !m.removed && m.worker == max_w)
                .map(|(i, _)| i)
                .expect("loaded worker owns a live query");
            let (reply_tx, reply_rx) = channel();
            self.send(max_w, ToWorker::Take(qid, reply_tx));
            let slot = reply_rx.recv().expect("worker alive");
            self.send(min_w, ToWorker::Add(qid, slot));
            self.queries[qid].worker = min_w;
            self.loads[max_w] -= 1;
            self.loads[min_w] += 1;
            migrated += 1;
        }
    }

    fn send(&self, worker: usize, msg: ToWorker) {
        self.senders[worker].send(msg).expect("worker alive");
    }

    /// Current tick count (number of `step` rounds).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of registered query slots (live + tombstoned).
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Latest answer of query `i`, sorted by object id.
    ///
    /// # Panics
    /// Panics when the query was removed.
    pub fn answer(&self, i: usize) -> &[ObjectId] {
        assert!(!self.queries[i].removed, "query {i} was removed");
        &self.answers[i]
    }

    /// Number of objects query `i` currently monitors.
    pub fn monitored(&self, i: usize) -> usize {
        self.histories[i].latest().map_or(0, |s| s.monitored)
    }

    /// Per-tick history of query `i`.
    pub fn history(&self, i: usize) -> &History {
        &self.histories[i]
    }

    /// The query object of query `i`.
    pub fn query_object(&self, i: usize) -> ObjectId {
        self.queries[i].obj
    }

    /// Per-worker aggregates over every sample each shard produced
    /// (indexed by worker id). Samples from migrated queries count on the
    /// worker that evaluated them.
    pub fn worker_stats(&self) -> Vec<SeriesStats> {
        self.senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.send(ToWorker::TakeStats(reply_tx))
                    .expect("worker alive");
                reply_rx.recv().expect("worker alive")
            })
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            // A worker that already exited (poisoned channel) is fine.
            let _ = tx.send(ToWorker::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_core::processor::Processor;
    use igern_geom::Aabb;

    /// Build a loaded store with the first `n_a` objects of kind A.
    fn store(points: &[(f64, f64)], n_a: usize) -> SpatialStore {
        let kinds = (0..points.len())
            .map(|i| {
                if i < n_a {
                    ObjectKind::A
                } else {
                    ObjectKind::B
                }
            })
            .collect();
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        s.load(&pts);
        s
    }

    fn pts() -> Vec<(f64, f64)> {
        (0..24)
            .map(|i| ((i * 7 % 24) as f64 / 2.4, (i * 13 % 24) as f64 / 2.4))
            .collect()
    }

    #[test]
    fn engine_matches_serial_processor_tick_by_tick() {
        let pts = pts();
        let mut serial = Processor::new(store(&pts, pts.len()));
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 3, Placement::RoundRobin);
        for i in 0..6u32 {
            serial.add_query(ObjectId(i * 4), Algorithm::IgernMono);
            engine
                .add_query(ObjectId(i * 4), Algorithm::IgernMono)
                .unwrap();
        }
        serial.evaluate_all();
        engine.evaluate_all();
        for t in 0..8 {
            let ups: Vec<(ObjectId, Point)> = (0..pts.len() as u32)
                .filter(|i| (i + t) % 3 == 0)
                .map(|i| {
                    let p = serial.store().position(ObjectId(i)).unwrap();
                    (ObjectId(i), Point::new((p.x + 0.3) % 10.0, p.y))
                })
                .collect();
            serial.step(&ups);
            engine.step(&ups);
            for q in 0..6 {
                assert_eq!(serial.answer(q), engine.answer(q), "query {q} tick {t}");
                assert_eq!(
                    serial.history(q).latest().unwrap().skipped,
                    engine.history(q).latest().unwrap().skipped,
                    "skip decision diverged: query {q} tick {t}"
                );
            }
        }
        assert_eq!(serial.tick(), engine.tick());
        // Every sample landed on some worker.
        let total: usize = engine.worker_stats().iter().map(|s| s.len()).sum();
        assert_eq!(total, 6 * 9);
    }

    #[test]
    fn round_robin_shards_stay_balanced_through_churn() {
        let pts = pts();
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 4, Placement::RoundRobin);
        let mut handles = Vec::new();
        for i in 0..10u32 {
            handles.push(engine.add_query(ObjectId(i), Algorithm::IgernMono).unwrap());
        }
        assert_eq!(engine.worker_loads(), &[3, 3, 2, 2]);
        // Remove everything on worker 0's rotation: rebalance keeps the
        // spread within one.
        engine.remove_query(handles[0]);
        engine.remove_query(handles[4]);
        engine.remove_query(handles[8]);
        let loads = engine.worker_loads().to_vec();
        assert_eq!(loads.iter().sum::<usize>(), 7);
        assert!(
            loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1,
            "{loads:?}"
        );
        engine.evaluate_all();
        engine.step(&[]);
        // Survivors still answer after migration.
        for &h in &handles[1..4] {
            let _ = engine.answer(h);
        }
    }

    #[test]
    fn anchor_cell_placement_groups_by_band() {
        let pts = [(0.5, 0.5), (0.6, 0.6), (9.5, 9.5), (9.4, 9.4)];
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 2, Placement::AnchorCell);
        // Interleave bands so the intermediate spread never trips the
        // 2x rebalance threshold.
        let a = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        let c = engine.add_query(ObjectId(2), Algorithm::IgernMono).unwrap();
        let b = engine.add_query(ObjectId(1), Algorithm::IgernMono).unwrap();
        let d = engine.add_query(ObjectId(3), Algorithm::IgernMono).unwrap();
        // Low corner anchors share a band, far corner the other.
        assert_eq!(engine.worker_loads(), &[2, 2]);
        engine.evaluate_all();
        engine.step(&[(ObjectId(1), Point::new(0.7, 0.7))]);
        for (q, obj) in [(a, 0), (b, 1), (c, 2), (d, 3)] {
            assert_eq!(engine.query_object(q), ObjectId(obj));
        }
    }

    #[test]
    fn tombstoned_slots_are_reused_like_serial() {
        let pts = pts();
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 2, Placement::RoundRobin);
        let a = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        let b = engine.add_query(ObjectId(1), Algorithm::IgernMono).unwrap();
        engine.evaluate_all();
        engine.remove_query(a);
        let c = engine.add_query(ObjectId(2), Algorithm::Knn(1)).unwrap();
        assert_eq!(c, a, "removed slot must be handed out again");
        assert_ne!(c, b);
        assert_eq!(engine.num_queries(), 2);
        engine.step(&[]);
        assert_eq!(engine.query_object(c), ObjectId(2));
        assert_eq!(engine.history(c).len(), 1, "fresh query, fresh history");
    }

    #[test]
    #[should_panic(expected = "was removed")]
    fn removed_query_answer_panics() {
        let pts = pts();
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 2, Placement::RoundRobin);
        let a = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        engine.evaluate_all();
        engine.remove_query(a);
        let _ = engine.answer(a);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let pts = pts();
        ShardedEngine::new(store(&pts, 24), 0, Placement::RoundRobin);
    }

    #[test]
    fn bounded_history_and_routing_flags_mirror_serial() {
        let pts = pts();
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 2, Placement::RoundRobin);
        assert!(engine.skip_routing());
        engine.set_skip_routing(false);
        assert!(!engine.skip_routing());
        engine.set_history_capacity(Some(3));
        assert_eq!(engine.history_capacity(), Some(3));
        let q = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        engine.evaluate_all();
        for _ in 0..7 {
            engine.step(&[]);
        }
        assert_eq!(engine.history(q).len(), 3);
        assert_eq!(engine.history(q).total(), 8);
        assert_eq!(engine.history(q).stats().len(), 8);
        // Forced evaluation: no skips even on quiet ticks.
        assert_eq!(engine.history(q).stats().skipped(), 0);
    }

    #[test]
    fn bad_registrations_are_reported_as_errors() {
        let pts = pts();
        // First 4 objects are kind A, the rest are B.
        let mut engine = ShardedEngine::new(store(&pts, 4), 2, Placement::RoundRobin);
        assert_eq!(
            engine.add_query(ObjectId(999), Algorithm::IgernMono),
            Err(EngineError::UnknownObject(ObjectId(999)))
        );
        assert_eq!(
            engine.add_query(ObjectId(10), Algorithm::IgernBi),
            Err(EngineError::NotKindA(ObjectId(10)))
        );
        // Failed registrations leave no residue: no slot, no load.
        assert_eq!(engine.num_queries(), 0);
        assert_eq!(engine.worker_loads(), &[0, 0]);
        let q = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        assert_eq!(q, 0);
        engine.evaluate_all();
        assert_eq!(
            EngineError::UnknownObject(ObjectId(999)).to_string(),
            "query object o999 not in store"
        );
    }

    #[test]
    fn engine_metrics_capture_rounds_and_workers() {
        let pts = pts();
        let reg = MetricsRegistry::new();
        let mut engine = ShardedEngine::new(store(&pts, pts.len()), 2, Placement::RoundRobin);
        engine.set_metrics(Some(EngineMetrics::register(
            &reg,
            "igern_engine",
            engine.num_workers(),
        )));
        for i in 0..4u32 {
            engine.add_query(ObjectId(i), Algorithm::IgernMono).unwrap();
        }
        engine.evaluate_all();
        engine.step(&[(ObjectId(10), Point::new(1.0, 1.0))]);
        let m = engine.metrics().unwrap();
        assert_eq!(m.pipeline.ticks_total.get(), 2);
        assert_eq!(m.pipeline.updates_total.get(), 1);
        assert_eq!(
            m.pipeline.queries_evaluated_total.get() + m.pipeline.queries_skipped_total.get(),
            8,
            "4 queries × 2 rounds, each either evaluated or skipped"
        );
        // Every worker timed both rounds, and shard gauges cover all
        // live queries.
        let worker_ticks: u64 = m.worker_tick_seconds.iter().map(|h| h.count()).sum();
        assert_eq!(worker_ticks, 4);
        let shard_total: f64 = m.shard_size.iter().map(|g| g.get()).sum();
        assert_eq!(shard_total, 4.0);
        assert_eq!(m.handoff_seconds.count(), 2);
        // The full engine registry exports cleanly through both formats.
        let prom = reg.render_prometheus();
        igern_core::obs::promtext::lint(&prom).expect("engine export lints");
        igern_core::obs::jsontext::parse(&reg.render_json()).expect("json parses");
    }

    #[test]
    fn dynamic_population_flows_through_the_engine() {
        let pts = [(5.0, 5.0), (4.0, 5.0), (8.0, 8.0)];
        let mut engine = ShardedEngine::new(store(&pts, 3), 2, Placement::RoundRobin);
        let h = engine.add_query(ObjectId(0), Algorithm::IgernMono).unwrap();
        engine.evaluate_all();
        engine.insert_object(ObjectId(50), ObjectKind::A, Point::new(5.4, 5.0));
        engine.step(&[]);
        assert!(engine.answer(h).contains(&ObjectId(50)));
        engine.remove_object(ObjectId(50));
        engine.step(&[]);
        assert!(!engine.answer(h).contains(&ObjectId(50)));
        assert!(engine.monitored(h) > 0);
    }
}
