//! Criterion microbenchmarks for the hot paths: the shared NN substrate,
//! the per-tick cost of each continuous algorithm (the quantity behind
//! Figures 7a/8a/9a/10a), and grid maintenance (behind Figure 6a).
//!
//! Run with `cargo bench -p igern-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use igern_core::baselines::{tpl_snapshot, voronoi_snapshot, Crnn};
use igern_core::processor::{Algorithm, Processor};
use igern_core::types::ObjectKind;
use igern_core::{BiIgern, KnnMonitor, MonoIgern, MonoIgernK, RangeMonitor, SpatialStore};
use igern_grid::{exists_closer_than, k_nearest, nearest, ObjectId, OpCounters};
use igern_mobgen::{ObjKind, Workload, WorkloadConfig};
use igern_rtree::{tpl_snapshot_rtree, RTree};

const N_OBJECTS: usize = 50_000;
const GRID: usize = 64;
const SEED: u64 = 7;

/// One loaded store + a mover positioned a few ticks in, shared by all
/// benchmarks.
struct Fixture {
    store: SpatialStore,
    world: Workload,
    query: ObjectId,
}

fn fixture(bichromatic: bool) -> Fixture {
    let cfg = if bichromatic {
        WorkloadConfig::network_bi(N_OBJECTS, SEED)
    } else {
        WorkloadConfig::network_mono(N_OBJECTS, SEED)
    };
    let mut world = Workload::from_config(&cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), GRID, kinds);
    let init: Vec<_> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&init);
    // Warm a few ticks so objects are in steady-state motion.
    for _ in 0..3 {
        for u in world.advance().to_vec() {
            store.apply(ObjectId(u.id), u.pos);
        }
    }
    Fixture {
        store,
        world,
        query: ObjectId(0),
    }
}

fn bench_nn_substrate(c: &mut Criterion) {
    let f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    let mut group = c.benchmark_group("nn_substrate");
    group.bench_function("nearest", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            nearest(f.store.all(), q, Some(f.query), &mut ops)
        })
    });
    group.bench_function("k_nearest_16", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            k_nearest(f.store.all(), q, 16, Some(f.query), &mut ops)
        })
    });
    group.bench_function("exists_closer_than", |b| {
        let radius_sq = 100.0;
        b.iter(|| {
            let mut ops = OpCounters::new();
            exists_closer_than(f.store.all(), q, radius_sq, &[f.query], &mut ops)
        })
    });
    group.finish();
}

fn bench_mono_per_tick(c: &mut Criterion) {
    let mut f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let igern0 = MonoIgern::initial(f.store.all(), q, Some(f.query), &mut ops);
    let crnn0 = Crnn::initial(f.store.all(), q, Some(f.query), &mut ops);
    // Advance one more tick so the monitors see movement.
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();

    let mut group = c.benchmark_group("mono_per_tick");
    group.bench_function("igern_incremental", |b| {
        b.iter_batched(
            || igern0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.all(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("crnn_incremental", |b| {
        b.iter_batched(
            || crnn0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.all(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("tpl_snapshot", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            tpl_snapshot(f.store.all(), q1, Some(f.query), &mut ops)
        })
    });
    group.bench_function("igern_initial", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            MonoIgern::initial(f.store.all(), q1, Some(f.query), &mut ops)
        })
    });
    group.finish();
}

fn bench_bi_per_tick(c: &mut Criterion) {
    let mut f = fixture(true);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let igern0 = BiIgern::initial(
        f.store.grid_a(),
        f.store.grid_b(),
        q,
        Some(f.query),
        &mut ops,
    );
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();

    let mut group = c.benchmark_group("bi_per_tick");
    group.bench_function("igern_bi_incremental", |b| {
        b.iter_batched(
            || igern0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.grid_a(), f.store.grid_b(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("voronoi_snapshot", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            voronoi_snapshot(
                f.store.grid_a(),
                f.store.grid_b(),
                q1,
                Some(f.query),
                &mut ops,
            )
        })
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let krnn0 = MonoIgernK::initial(f.store.all(), q, Some(f.query), 4, &mut ops);
    let knn0 = KnnMonitor::initial(f.store.all(), q, Some(f.query), 8, &mut ops);
    let range0 = RangeMonitor::initial(f.store.all(), q, 25.0, Some(f.query), &mut ops);
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();
    let mut group = c.benchmark_group("monitors_per_tick");
    group.bench_function("krnn_k4_incremental", |b| {
        b.iter_batched(
            || krnn0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.all(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("knn_k8_incremental", |b| {
        b.iter_batched(
            || knn0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.all(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("range_r25_incremental", |b| {
        b.iter_batched(
            || range0.clone(),
            |mut m| {
                let mut ops = OpCounters::new();
                m.incremental(f.store.all(), q1, &mut ops);
                m
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_processor_parallel(c: &mut Criterion) {
    // 64 standing IGERN queries over one tick of updates: sequential vs
    // 4-way parallel evaluation.
    let build = || {
        let mut f = fixture(false);
        let kinds = vec![ObjectKind::A; f.store.len()];
        let mut store = SpatialStore::new(*f.store.space(), GRID, kinds);
        let init: Vec<_> = f.store.all().iter().collect();
        for (id, p) in init {
            store.insert(id, ObjectKind::A, p);
        }
        let mut proc = Processor::new(store);
        for i in 0..64u32 {
            proc.add_query(ObjectId(i * 500), Algorithm::IgernMono);
        }
        proc.evaluate_all();
        let ups: Vec<(ObjectId, igern_geom::Point)> = f
            .world
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        (proc, ups)
    };
    let mut group = c.benchmark_group("processor_64_queries");
    group.sample_size(10);
    group.bench_function("step_sequential", |b| {
        b.iter_batched(
            build,
            |(mut proc, ups)| {
                proc.step(&ups);
                proc
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("step_parallel_4", |b| {
        b.iter_batched(
            build,
            |(mut proc, ups)| {
                proc.step_parallel(&ups, 4);
                proc
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let f = fixture(false);
    let mut tree = RTree::new();
    for (id, p) in f.store.all().iter() {
        tree.insert(id, p);
    }
    let q = f.store.position(f.query).unwrap();
    let mut group = c.benchmark_group("rtree");
    group.bench_function("nearest", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            igern_rtree::nearest(&tree, q, Some(f.query), &mut ops)
        })
    });
    group.bench_function("tpl_snapshot_native", |b| {
        b.iter(|| {
            let mut ops = OpCounters::new();
            tpl_snapshot_rtree(&tree, q, Some(f.query), &mut ops)
        })
    });
    group.finish();
}

fn bench_grid_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_maintenance");
    group.bench_function("apply_one_tick_50k", |b| {
        b.iter_batched(
            || {
                let mut f = fixture(false);
                let ups = f.world.advance().to_vec();
                (f.store, ups)
            },
            |(mut store, ups)| {
                for u in &ups {
                    store.apply(ObjectId(u.id), u.pos);
                }
                store.cell_changes()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_nn_substrate, bench_mono_per_tick, bench_bi_per_tick, bench_extensions, bench_processor_parallel, bench_rtree, bench_grid_maintenance
}
criterion_main!(benches);
