//! Minimal command-line parsing shared by the experiment binaries.
//!
//! No external CLI crate is pulled in: the binaries accept a handful of
//! `--flag value` pairs and `--quick` for a scaled-down smoke run.

/// Parsed experiment options with paper defaults.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Objects for single-population experiments (paper default 100K).
    pub objects: usize,
    /// Ticks (time units) to simulate (paper default 100).
    pub ticks: usize,
    /// Grid cells per side.
    pub grid: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of standing queries whose metrics are averaged.
    pub queries: usize,
    /// Scale everything down for a fast smoke run.
    pub quick: bool,
    /// Directory for CSV output.
    pub out_dir: String,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            objects: 100_000,
            ticks: 100,
            grid: 64,
            seed: 7,
            queries: 8,
            quick: false,
            out_dir: "results".to_string(),
        }
    }
}

impl ExpArgs {
    /// Parse `std::env::args()`, panicking with a usage message on
    /// malformed input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = ExpArgs::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--objects" => args.objects = value("--objects").parse().expect("--objects"),
                "--ticks" => args.ticks = value("--ticks").parse().expect("--ticks"),
                "--grid" => args.grid = value("--grid").parse().expect("--grid"),
                "--seed" => args.seed = value("--seed").parse().expect("--seed"),
                "--queries" => args.queries = value("--queries").parse().expect("--queries"),
                "--out" => args.out_dir = value("--out"),
                "--quick" => args.quick = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --objects N --ticks N --grid N --seed N --queries N --out DIR --quick"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if args.quick {
            args.objects = args.objects.min(5_000);
            args.ticks = args.ticks.min(20);
            args.queries = args.queries.min(4);
        }
        args
    }

    /// The object-count sweep of Figures 7/9 (10K..100K), scaled when
    /// `--quick`.
    pub fn object_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![1_000, 2_500, 5_000]
        } else {
            (1..=10).map(|i| i * 10_000).collect()
        }
    }

    /// The grid-size sweep of Figure 6, scaled when `--quick`.
    pub fn grid_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![8, 16, 32, 64]
        } else {
            vec![8, 16, 32, 64, 96, 128, 192, 256]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> ExpArgs {
        ExpArgs::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_paper() {
        let a = parse(&[]);
        assert_eq!(a.objects, 100_000);
        assert_eq!(a.ticks, 100);
        assert_eq!(a.grid, 64);
    }

    #[test]
    fn flags_override() {
        let a = parse(&[
            "--objects",
            "1234",
            "--ticks",
            "5",
            "--grid",
            "32",
            "--seed",
            "9",
        ]);
        assert_eq!(a.objects, 1234);
        assert_eq!(a.ticks, 5);
        assert_eq!(a.grid, 32);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn quick_scales_down() {
        let a = parse(&["--quick"]);
        assert!(a.objects <= 5_000);
        assert!(a.ticks <= 20);
        assert_eq!(a.object_sweep().len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        parse(&["--nope"]);
    }
}
