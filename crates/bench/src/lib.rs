//! Experiment harness for the Section-7 reproduction.
//!
//! One binary per paper figure (see DESIGN.md §5 and EXPERIMENTS.md):
//!
//! | binary                 | figures  |
//! |------------------------|----------|
//! | `exp_grid_size`        | 6a, 6b   |
//! | `exp_mono_scalability` | 7a, 7b   |
//! | `exp_mono_stability`   | 8a, 8b   |
//! | `exp_bi_scalability`   | 9a, 9b   |
//! | `exp_bi_stability`     | 10a, 10b |
//! | `exp_cost_model`       | §6       |
//! | `exp_ablation`         | A1/A2/A4 |
//! | `exp_engine`           | engine scaling (`BENCH_engine.json`) |
//! | `run_all`              | all      |
//!
//! Every binary prints the same series the paper plots (plus
//! machine-independent operation counts) and writes CSV into `results/`.

pub mod args;
pub mod harness;
pub mod microtime;
pub mod report;

pub use args::ExpArgs;
pub use harness::{run_one, AlgoRun, RunConfig};
