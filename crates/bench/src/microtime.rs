//! A dependency-free micro-timing harness.
//!
//! Replaces the former criterion dev-dependency so the workspace builds
//! and benches fully offline. The statistics are deliberately simple —
//! mean / min / max over a fixed-budget batch of iterations after a
//! warm-up — which is enough to compare the relative cost of the hot
//! paths this crate measures.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-case time budget after warm-up.
const BUDGET: Duration = Duration::from_millis(300);
/// Warm-up iterations before measuring.
const WARMUP: usize = 3;
/// Hard cap on measured iterations per case.
const MAX_ITERS: usize = 10_000;

/// Timing summary of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    pub iters: usize,
    pub mean: Duration,
    pub min: Duration,
    pub max: Duration,
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
            self.mean, self.min, self.max, self.iters
        )
    }
}

/// Time a closure that needs no per-iteration setup.
pub fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) -> Timing {
    bench_batched(group, name, || (), move |()| f())
}

/// Time a closure with per-iteration setup excluded from the measurement
/// (the `iter_batched` shape: clone-heavy monitors are rebuilt outside
/// the timed region).
pub fn bench_batched<S, R>(
    group: &str,
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> R,
) -> Timing {
    for _ in 0..WARMUP {
        black_box(f(setup()));
    }
    let mut iters = 0usize;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    while total < BUDGET && iters < MAX_ITERS {
        let input = setup();
        let start = Instant::now();
        black_box(f(input));
        let dt = start.elapsed();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
        iters += 1;
    }
    let t = Timing {
        iters,
        mean: total / iters.max(1) as u32,
        min,
        max,
    };
    println!("{group}/{name:<28} {t}");
    t
}
