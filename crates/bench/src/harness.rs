//! The shared experiment runner: one workload, one algorithm, full
//! per-tick measurement.
//!
//! Each algorithm is run in its own processor over a freshly generated —
//! but seed-identical — workload, so all algorithms consume byte-identical
//! update streams (the mobgen determinism contract) without interfering
//! with each other's caches or timers.

use std::time::Duration;

use igern_core::processor::{Algorithm, Processor};
use igern_core::types::ObjectKind;
use igern_core::SpatialStore;
use igern_grid::{ObjectId, OpCounters};
use igern_mobgen::{ObjKind, Workload, WorkloadConfig};

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub num_objects: usize,
    pub grid_size: usize,
    /// Total evaluations: 1 initial + (ticks - 1) incremental.
    pub ticks: usize,
    pub seed: u64,
    pub num_queries: usize,
    /// Bichromatic workload (half A, half B) vs. monochromatic.
    pub bichromatic: bool,
}

impl RunConfig {
    /// Paper defaults for a monochromatic run.
    pub fn mono(num_objects: usize, grid_size: usize, ticks: usize, seed: u64) -> Self {
        RunConfig {
            num_objects,
            grid_size,
            ticks,
            seed,
            num_queries: 8,
            bichromatic: false,
        }
    }

    /// Paper defaults for a bichromatic run.
    pub fn bi(num_objects: usize, grid_size: usize, ticks: usize, seed: u64) -> Self {
        RunConfig {
            bichromatic: true,
            ..Self::mono(num_objects, grid_size, ticks, seed)
        }
    }
}

/// Aggregated measurements of one `(workload, algorithm)` run.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    pub algorithm: Algorithm,
    /// Mean per-query evaluation time at each tick (index 0 = initial).
    pub tick_times: Vec<Duration>,
    /// Running accumulation of `tick_times`.
    pub accumulated: Vec<Duration>,
    /// Mean monitored objects over all queries and all ticks.
    pub mean_monitored: f64,
    /// Mean answer size over all queries and ticks.
    pub mean_answer: f64,
    /// Mean monitored-region area over all queries and ticks (0 for
    /// algorithms without a persistent region).
    pub mean_region_area: f64,
    /// Summed machine-independent operation counts over all queries/ticks.
    pub ops: OpCounters,
    /// Grid cell changes recorded on the store over the whole run.
    pub cell_changes: u64,
}

impl AlgoRun {
    /// Mean time of the initial evaluation (tick 0).
    pub fn initial_time(&self) -> Duration {
        self.tick_times.first().copied().unwrap_or_default()
    }

    /// Mean time per incremental tick (ticks ≥ 1); falls back to the
    /// initial tick for single-tick runs.
    pub fn mean_incremental_time(&self) -> Duration {
        if self.tick_times.len() <= 1 {
            return self.initial_time();
        }
        let total: Duration = self.tick_times[1..].iter().sum();
        total / (self.tick_times.len() as u32 - 1)
    }

    /// Mean time over all ticks including the initial one (the "average
    /// CPU time" of Figures 7a/9a).
    pub fn mean_time(&self) -> Duration {
        if self.tick_times.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.tick_times.iter().sum();
        total / self.tick_times.len() as u32
    }

    /// Total accumulated time (Figures 8b/10b's last point).
    pub fn total_time(&self) -> Duration {
        self.accumulated.last().copied().unwrap_or_default()
    }
}

/// Instantiate the workload for a config.
fn build_workload(cfg: &RunConfig) -> Workload {
    let wcfg = if cfg.bichromatic {
        WorkloadConfig::network_bi(cfg.num_objects, cfg.seed)
    } else {
        WorkloadConfig::network_mono(cfg.num_objects, cfg.seed)
    };
    Workload::from_config(&wcfg)
}

/// Run one algorithm over the configured workload and aggregate.
pub fn run_one(cfg: &RunConfig, algorithm: Algorithm) -> AlgoRun {
    assert!(cfg.ticks >= 1, "need at least the initial tick");
    let mut workload = build_workload(cfg);
    let kinds: Vec<ObjectKind> = workload
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, cfg.grid_size, kinds);
    let initial: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&initial);
    let mut proc = Processor::new(store);
    let query_kind = ObjKind::A; // bichromatic queries must be A; mono is all-A
    let query_ids = workload.pick_queries(query_kind, cfg.num_queries);
    assert!(!query_ids.is_empty(), "no query candidates in workload");
    for &q in &query_ids {
        proc.add_query(ObjectId(q), algorithm);
    }
    // Tick 0: initial evaluation.
    proc.evaluate_all();
    // Ticks 1..: move everything, re-evaluate.
    for _ in 1..cfg.ticks {
        let ups: Vec<(ObjectId, _)> = workload
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        proc.step(&ups);
    }
    // Aggregate across queries.
    let nq = proc.num_queries();
    let mut tick_times = vec![Duration::ZERO; cfg.ticks];
    let mut ops = OpCounters::new();
    let mut monitored_sum = 0u64;
    let mut answer_sum = 0u64;
    let mut area_sum = 0.0f64;
    let mut samples = 0u64;
    for qi in 0..nq {
        let hist = proc.history(qi);
        assert_eq!(hist.len(), cfg.ticks, "one sample per tick per query");
        for (t, s) in hist.iter().enumerate() {
            tick_times[t] += s.elapsed;
            ops.merge(&s.ops);
            monitored_sum += s.monitored as u64;
            answer_sum += s.answer_size as u64;
            area_sum += s.region_area;
            samples += 1;
        }
    }
    for t in &mut tick_times {
        *t /= nq as u32;
    }
    let mut accumulated = Vec::with_capacity(cfg.ticks);
    let mut acc = Duration::ZERO;
    for &t in &tick_times {
        acc += t;
        accumulated.push(acc);
    }
    AlgoRun {
        algorithm,
        tick_times,
        accumulated,
        mean_monitored: monitored_sum as f64 / samples as f64,
        mean_answer: answer_sum as f64 / samples as f64,
        mean_region_area: area_sum / samples as f64,
        ops,
        cell_changes: proc.store().cell_changes(),
    }
}

/// Count grid cell changes for a workload at a given grid size, without
/// evaluating any query (Figure 6a's metric).
pub fn measure_cell_changes(cfg: &RunConfig) -> u64 {
    let mut workload = build_workload(cfg);
    let kinds = vec![ObjectKind::A; workload.len()];
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, cfg.grid_size, kinds);
    let initial: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&initial);
    for _ in 1..cfg.ticks {
        for u in workload.advance().to_vec() {
            store.apply(ObjectId(u.id), u.pos);
        }
    }
    store.cell_changes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(bichromatic: bool) -> RunConfig {
        RunConfig {
            num_objects: 300,
            grid_size: 16,
            ticks: 6,
            seed: 3,
            num_queries: 3,
            bichromatic,
        }
    }

    #[test]
    fn mono_run_produces_full_series() {
        let run = run_one(&tiny(false), Algorithm::IgernMono);
        assert_eq!(run.tick_times.len(), 6);
        assert_eq!(run.accumulated.len(), 6);
        assert!(run.total_time() >= run.initial_time());
        assert!(run.ops.total_searches() > 0);
    }

    #[test]
    fn identical_seeds_give_identical_answers_across_algorithms() {
        let cfg = tiny(false);
        let a = run_one(&cfg, Algorithm::IgernMono);
        let b = run_one(&cfg, Algorithm::Crnn);
        let c = run_one(&cfg, Algorithm::TplRepeat);
        // Answer sizes are workload properties, not algorithm properties.
        assert!((a.mean_answer - b.mean_answer).abs() < 1e-9);
        assert!((a.mean_answer - c.mean_answer).abs() < 1e-9);
    }

    #[test]
    fn bi_run_matches_voronoi_answers() {
        let cfg = tiny(true);
        let a = run_one(&cfg, Algorithm::IgernBi);
        let b = run_one(&cfg, Algorithm::VoronoiRepeat);
        assert!((a.mean_answer - b.mean_answer).abs() < 1e-9);
    }

    #[test]
    fn igern_monitors_fewer_than_crnn() {
        let cfg = RunConfig {
            num_objects: 2_000,
            ..tiny(false)
        };
        let igern = run_one(&cfg, Algorithm::IgernMono);
        let crnn = run_one(&cfg, Algorithm::Crnn);
        assert!(
            igern.mean_monitored < crnn.mean_monitored,
            "IGERN {} vs CRNN {}",
            igern.mean_monitored,
            crnn.mean_monitored
        );
        // Dense data: nearly every pie is occupied (queries near the space
        // boundary can face a few empty pies).
        assert!(crnn.mean_monitored > 5.0, "crnn {}", crnn.mean_monitored);
    }

    #[test]
    fn cell_changes_grow_with_grid_size() {
        let coarse = measure_cell_changes(&RunConfig {
            grid_size: 8,
            ..tiny(false)
        });
        let fine = measure_cell_changes(&RunConfig {
            grid_size: 64,
            ..tiny(false)
        });
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }
}
