//! Microbenchmarks for the hot paths: the shared NN substrate, the
//! per-tick cost of each continuous algorithm (the quantity behind
//! Figures 7a/8a/9a/10a), grid maintenance (behind Figure 6a), and the
//! processor's routed evaluation over many standing queries.
//!
//! Run with `cargo run --release -p igern-bench --bin microbench`.
//! Timing comes from the in-repo [`igern_bench::microtime`] harness, so
//! the whole workspace builds offline.

use igern_bench::microtime::{bench, bench_batched};
use igern_core::baselines::{tpl_snapshot, voronoi_snapshot, Crnn};
use igern_core::processor::{Algorithm, Processor};
use igern_core::types::ObjectKind;
use igern_core::{BiIgern, KnnMonitor, MonoIgern, MonoIgernK, RangeMonitor, SpatialStore};
use igern_grid::{exists_closer_than, k_nearest, nearest, ObjectId, OpCounters};
use igern_mobgen::{ObjKind, Workload, WorkloadConfig};
use igern_rtree::{tpl_snapshot_rtree, RTree};

const N_OBJECTS: usize = 50_000;
const GRID: usize = 64;
const SEED: u64 = 7;

/// One loaded store + a mover positioned a few ticks in, shared by all
/// benchmarks.
struct Fixture {
    store: SpatialStore,
    world: Workload,
    query: ObjectId,
}

fn fixture(bichromatic: bool) -> Fixture {
    let cfg = if bichromatic {
        WorkloadConfig::network_bi(N_OBJECTS, SEED)
    } else {
        WorkloadConfig::network_mono(N_OBJECTS, SEED)
    };
    let mut world = Workload::from_config(&cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), GRID, kinds);
    let init: Vec<_> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&init);
    // Warm a few ticks so objects are in steady-state motion.
    for _ in 0..3 {
        for u in world.advance().to_vec() {
            store.apply(ObjectId(u.id), u.pos);
        }
    }
    Fixture {
        store,
        world,
        query: ObjectId(0),
    }
}

fn bench_nn_substrate() {
    let f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    bench("nn_substrate", "nearest", || {
        let mut ops = OpCounters::new();
        nearest(f.store.all(), q, Some(f.query), &mut ops)
    });
    bench("nn_substrate", "k_nearest_16", || {
        let mut ops = OpCounters::new();
        k_nearest(f.store.all(), q, 16, Some(f.query), &mut ops)
    });
    bench("nn_substrate", "exists_closer_than", || {
        let mut ops = OpCounters::new();
        exists_closer_than(f.store.all(), q, 100.0, &[f.query], &mut ops)
    });
}

fn bench_mono_per_tick() {
    let mut f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let igern0 = MonoIgern::initial(f.store.all(), q, Some(f.query), &mut ops);
    let crnn0 = Crnn::initial(f.store.all(), q, Some(f.query), &mut ops);
    // Advance one more tick so the monitors see movement.
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();

    bench_batched(
        "mono_per_tick",
        "igern_incremental",
        || igern0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.all(), q1, &mut ops);
            m
        },
    );
    bench_batched(
        "mono_per_tick",
        "crnn_incremental",
        || crnn0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.all(), q1, &mut ops);
            m
        },
    );
    bench("mono_per_tick", "tpl_snapshot", || {
        let mut ops = OpCounters::new();
        tpl_snapshot(f.store.all(), q1, Some(f.query), &mut ops)
    });
    bench("mono_per_tick", "igern_initial", || {
        let mut ops = OpCounters::new();
        MonoIgern::initial(f.store.all(), q1, Some(f.query), &mut ops)
    });
}

fn bench_bi_per_tick() {
    let mut f = fixture(true);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let igern0 = BiIgern::initial(
        f.store.grid_a(),
        f.store.grid_b(),
        q,
        Some(f.query),
        &mut ops,
    );
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();

    bench_batched(
        "bi_per_tick",
        "igern_bi_incremental",
        || igern0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.grid_a(), f.store.grid_b(), q1, &mut ops);
            m
        },
    );
    bench("bi_per_tick", "voronoi_snapshot", || {
        let mut ops = OpCounters::new();
        voronoi_snapshot(
            f.store.grid_a(),
            f.store.grid_b(),
            q1,
            Some(f.query),
            &mut ops,
        )
    });
}

fn bench_extensions() {
    let mut f = fixture(false);
    let q = f.store.position(f.query).unwrap();
    let mut ops = OpCounters::new();
    let krnn0 = MonoIgernK::initial(f.store.all(), q, Some(f.query), 4, &mut ops);
    let knn0 = KnnMonitor::initial(f.store.all(), q, Some(f.query), 8, &mut ops);
    let range0 = RangeMonitor::initial(f.store.all(), q, 25.0, Some(f.query), &mut ops);
    for u in f.world.advance().to_vec() {
        f.store.apply(ObjectId(u.id), u.pos);
    }
    let q1 = f.store.position(f.query).unwrap();
    bench_batched(
        "monitors_per_tick",
        "krnn_k4_incremental",
        || krnn0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.all(), q1, &mut ops);
            m
        },
    );
    bench_batched(
        "monitors_per_tick",
        "knn_k8_incremental",
        || knn0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.all(), q1, &mut ops);
            m
        },
    );
    bench_batched(
        "monitors_per_tick",
        "range_r25_incremental",
        || range0.clone(),
        |mut m| {
            let mut ops = OpCounters::new();
            m.incremental(f.store.all(), q1, &mut ops);
            m
        },
    );
}

fn bench_processor() {
    // 64 standing IGERN queries over one tick of updates: sequential vs
    // 4-way parallel evaluation, with and without dirty-region routing.
    let build = || {
        let mut f = fixture(false);
        let kinds = vec![ObjectKind::A; f.store.len()];
        let mut store = SpatialStore::new(*f.store.space(), GRID, kinds);
        let init: Vec<_> = f.store.all().iter().collect();
        for (id, p) in init {
            store.insert(id, ObjectKind::A, p);
        }
        let mut proc = Processor::new(store);
        for i in 0..64u32 {
            proc.add_query(ObjectId(i * 500), Algorithm::IgernMono);
        }
        proc.evaluate_all();
        let ups: Vec<(ObjectId, igern_geom::Point)> = f
            .world
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        (proc, ups)
    };
    bench_batched(
        "processor_64_queries",
        "step_sequential",
        build,
        |(mut proc, ups)| {
            proc.step(&ups);
            proc
        },
    );
    bench_batched(
        "processor_64_queries",
        "step_force_evaluate",
        || {
            let (mut proc, ups) = build();
            proc.set_skip_routing(false);
            (proc, ups)
        },
        |(mut proc, ups)| {
            proc.step(&ups);
            proc
        },
    );
    bench_batched(
        "processor_64_queries",
        "step_parallel_4",
        build,
        |(mut proc, ups)| {
            proc.step_parallel(&ups, 4);
            proc
        },
    );
}

fn bench_rtree() {
    let f = fixture(false);
    let mut tree = RTree::new();
    for (id, p) in f.store.all().iter() {
        tree.insert(id, p).unwrap();
    }
    let q = f.store.position(f.query).unwrap();
    bench("rtree", "nearest", || {
        let mut ops = OpCounters::new();
        igern_rtree::nearest(&tree, q, Some(f.query), &mut ops)
    });
    bench("rtree", "tpl_snapshot_native", || {
        let mut ops = OpCounters::new();
        tpl_snapshot_rtree(&tree, q, Some(f.query), &mut ops)
    });
}

fn bench_grid_maintenance() {
    bench_batched(
        "grid_maintenance",
        "apply_one_tick_50k",
        || {
            let mut f = fixture(false);
            let ups = f.world.advance().to_vec();
            (f.store, ups)
        },
        |(mut store, ups)| {
            for u in &ups {
                store.apply(ObjectId(u.id), u.pos);
            }
            store.cell_changes()
        },
    );
}

fn main() {
    bench_nn_substrate();
    bench_mono_per_tick();
    bench_bi_per_tick();
    bench_extensions();
    bench_processor();
    bench_rtree();
    bench_grid_maintenance();
}
