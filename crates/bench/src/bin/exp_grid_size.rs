//! Experiment E1 — Figure 6: the effect of grid size.
//!
//! * Figure 6a: number of cell changes (index maintenance overhead) as the
//!   grid grows — monotone increasing.
//! * Figure 6b: total CPU time of the monochromatic IGERN query under each
//!   grid size — U-shaped (coarse grids make NN search scan too many
//!   objects; very fine grids pay in update overhead and pruning work),
//!   with the sweet spot at a moderate size. The paper picks the
//!   compromise used by all other experiments.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E1 (Figure 6): grid-size sweep — {} objects, {} ticks, seed {}",
        args.objects, args.ticks, args.seed
    );
    let mut rows = Vec::new();
    for grid in args.grid_sweep() {
        let cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::mono(args.objects, grid, args.ticks, args.seed)
        };
        let cell_changes = harness::measure_cell_changes(&cfg);
        let run = harness::run_one(&cfg, Algorithm::IgernMono);
        rows.push(vec![
            grid.to_string(),
            format!("{:.1}", cell_changes as f64 / 1e3),
            ms(run.total_time()),
            run.ops.objects_visited.to_string(),
        ]);
    }
    print_table(
        "Figure 6a/6b: grid size vs cell changes (K) and IGERN CPU time (ms)",
        &["grid", "cell_changes_K", "cpu_total_ms", "objects_visited"],
        &rows,
    );
    write_csv(
        &args.out_dir,
        "fig6_grid_size",
        &["grid", "cell_changes_K", "cpu_total_ms", "objects_visited"],
        &rows,
    );
    println!(
        "\nExpected shape: cell changes rise monotonically with grid size;\n\
         CPU time is high for tiny grids, dips at a moderate size, and\n\
         rises again for very fine grids (Figure 6b's U-shape)."
    );
}
