//! Run every experiment binary in sequence with shared flags.
//!
//! `cargo run --release -p igern-bench --bin run_all -- --quick` gives a
//! fast smoke pass over all figures; without `--quick` the paper-scale
//! parameters are used.

use std::process::Command;

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let experiments = [
        "exp_grid_size",
        "exp_mono_scalability",
        "exp_mono_stability",
        "exp_bi_scalability",
        "exp_bi_stability",
        "exp_cost_model",
        "exp_ablation",
        "exp_krnn",
        "exp_substrate",
        "exp_query_count",
    ];
    let mut failures = Vec::new();
    for name in experiments {
        println!("\n########## {name} ##########");
        let status = Command::new(dir.join(name))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        if !status.success() {
            eprintln!("{name} exited with {status}");
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
