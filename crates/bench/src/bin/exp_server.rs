//! Experiment SRV — serving-layer throughput and push latency.
//!
//! N concurrent clients stream position updates at full speed into one
//! server while holding live subscriptions; each measures
//! **tick-to-push latency** — the wall-clock gap between the server
//! stamping a tick's push batch and the client receiving its
//! `TICK_END` — from the `stamp_nanos` the frames carry (same host, so
//! one clock). Sustained ingest is the total updates sent over the
//! send-loop wall time, backpressured end to end by the bounded ingest
//! queue.
//!
//! By default the server runs in-process (workers 1 and a host-capped
//! 4, two series), followed by a **durability sweep**: the same
//! workload with the write-ahead log enabled, one series per fsync
//! policy (`never`/`tick`/`always`), so `BENCH_server.json` shows what
//! durability costs relative to the log-free baseline. `--addr
//! HOST:PORT` instead drives an external `igern serve` instance, which
//! is how the CI smoke leg exercises the shipped binary. Results go to
//! `BENCH_server.json` with `host_cpus` recorded — single-core hosts
//! serialize everything, so read the numbers against that field.
//!
//! In-process runs finish with a **subscriber sweep**: 100 / 1k / 10k
//! concurrent standing subscriptions over the in-memory transport, one
//! series per I/O backend, measuring per-tick fan-out latency (tick
//! stamp → each subscriber's `TICK_END` decoded). The threaded backend
//! is skipped at 10k — two OS threads per connection would need 20k
//! threads — which is exactly the scaling cliff the reactor removes.

use std::io::Write;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use igern_bench::report::print_table;
use igern_core::obs::MetricsRegistry;
use igern_core::processor::Algorithm;
use igern_core::types::ObjectKind;
use igern_core::SpatialStore;
use igern_geom::Aabb;
use igern_mobgen::rng::Rng64;
use igern_server::client::Event;
use igern_server::proto::{Frame, FrameReader, ReadOutcome};
use igern_server::{
    memory_listener, Client, IoBackend, Listener, Server, ServerConfig, SlowConsumerPolicy, Stream,
    TickMode, PROTOCOL_VERSION,
};
use igern_wal::{FsyncPolicy, WalOptions};

const SIDE: f64 = 100.0;

#[derive(Debug, Clone)]
struct SrvArgs {
    clients: usize,
    /// Updates each client streams.
    updates: usize,
    objects_per_client: usize,
    tick_ms: u64,
    seed: u64,
    quick: bool,
    /// Drive an external server instead of in-process sweeps.
    addr: Option<String>,
    /// Send a SHUTDOWN frame when done (external mode).
    shutdown: bool,
    /// I/O backend for in-process runs; `None` sweeps both.
    io: Option<IoBackend>,
    /// Override the subscriber-sweep counts (default 100/1k/10k).
    subscribers: Option<usize>,
}

impl SrvArgs {
    fn parse() -> Self {
        let mut args = SrvArgs {
            clients: 4,
            updates: 20_000,
            objects_per_client: 100,
            tick_ms: 5,
            seed: 7,
            quick: false,
            addr: None,
            shutdown: false,
            io: None,
            subscribers: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--clients" => args.clients = value("--clients").parse().expect("--clients"),
                "--updates" => args.updates = value("--updates").parse().expect("--updates"),
                "--objects" => {
                    args.objects_per_client = value("--objects").parse().expect("--objects")
                }
                "--tick-ms" => args.tick_ms = value("--tick-ms").parse().expect("--tick-ms"),
                "--seed" => args.seed = value("--seed").parse().expect("--seed"),
                "--quick" => args.quick = true,
                "--addr" => args.addr = Some(value("--addr")),
                "--shutdown" => args.shutdown = value("--shutdown") == "true",
                "--subscribers" => {
                    args.subscribers = Some(value("--subscribers").parse().expect("--subscribers"))
                }
                "--io" => {
                    let name = value("--io");
                    args.io = match name.as_str() {
                        "both" => None,
                        other => Some(
                            IoBackend::parse(other)
                                .unwrap_or_else(|| panic!("--io {other:?} (threads|reactor|both)")),
                        ),
                    };
                }
                other => panic!(
                    "unknown flag {other} \
                     (--clients --updates --objects --tick-ms --seed --quick --addr --shutdown --io)"
                ),
            }
        }
        if args.quick {
            args.clients = args.clients.min(2);
            args.updates = args.updates.min(2_000);
        }
        args
    }
}

fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

struct ClientRun {
    sent: u64,
    send_secs: f64,
    /// Tick-to-push latencies (ms), one per TICK_END received.
    latencies_ms: Vec<f64>,
}

/// One bench client: populate an id range, subscribe two queries, then
/// stream updates at full speed, draining pushes opportunistically.
fn drive_client(addr: &str, idx: usize, args: &SrvArgs) -> ClientRun {
    let mut rng = Rng64::seed_from_u64(args.seed ^ (idx as u64).wrapping_mul(0x9e37));
    let base = (idx * args.objects_per_client) as u32;
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Duration::from_millis(1))
        .expect("read timeout");
    for i in 0..args.objects_per_client as u32 {
        let (x, y) = (rng.f64() * SIDE, rng.f64() * SIDE);
        client
            .upsert(base + i, ObjectKind::A, x, y)
            .expect("populate");
    }
    client
        .subscribe(base, Algorithm::IgernMono)
        .expect("subscribe mono");
    client
        .subscribe(base + 1, Algorithm::Knn(4))
        .expect("subscribe knn");

    let mut latencies_ms = Vec::new();
    let drain = |client: &mut Client, latencies_ms: &mut Vec<f64>| {
        while let Ok(Some(ev)) = client.poll_event(Duration::ZERO) {
            if let Event::TickEnd { stamp_nanos, .. } = ev {
                let now = now_nanos();
                if now > stamp_nanos {
                    latencies_ms.push((now - stamp_nanos) as f64 / 1e6);
                }
            }
        }
    };

    let start = Instant::now();
    for u in 0..args.updates {
        let id = base + (rng.gen_range(0..args.objects_per_client)) as u32;
        let (x, y) = (rng.f64() * SIDE, rng.f64() * SIDE);
        client.upsert(id, ObjectKind::A, x, y).expect("update");
        // Drain periodically so the outbound queue never brands this
        // client a slow consumer; rarely enough not to gate the sends.
        if u % 256 == 255 {
            drain(&mut client, &mut latencies_ms);
        }
    }
    let send_secs = start.elapsed().as_secs_f64();
    // Collect the tail of pushes for a few tick periods.
    let settle = Instant::now() + Duration::from_millis(args.tick_ms.max(10) * 20);
    while Instant::now() < settle {
        drain(&mut client, &mut latencies_ms);
        std::thread::sleep(Duration::from_millis(1));
    }
    if args.shutdown && idx == 0 {
        client.shutdown_server().expect("shutdown frame");
    }
    ClientRun {
        sent: args.updates as u64,
        send_secs,
        latencies_ms,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Series {
    label: String,
    workers: usize,
    /// `None` for the external mode, where the server's backend is its
    /// own business.
    io: Option<IoBackend>,
    /// `None` = no write-ahead log for this series.
    wal_fsync: Option<FsyncPolicy>,
    updates_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    samples: usize,
    slow_consumer_events: u64,
    protocol_errors: u64,
}

/// Run all clients against `addr` and aggregate.
fn run_clients(addr: &str, args: &SrvArgs) -> (f64, Vec<f64>) {
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        // The collect is the spawn barrier: chaining map(spawn).map(join)
        // lazily would run the clients one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..args.clients)
            .map(|i| scope.spawn(move || drive_client(addr, i, args)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let sent: u64 = runs.iter().map(|r| r.sent).sum();
    let wall = runs.iter().map(|r| r.send_secs).fold(0.0, f64::max);
    let mut latencies: Vec<f64> = runs.into_iter().flat_map(|r| r.latencies_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    (sent as f64 / wall, latencies)
}

fn measure_in_process(
    workers: usize,
    io: IoBackend,
    args: &SrvArgs,
    wal_fsync: Option<FsyncPolicy>,
) -> Series {
    let store = SpatialStore::new(Aabb::from_coords(0.0, 0.0, SIDE, SIDE), 16, Vec::new());
    let wal_dir = wal_fsync.map(|fsync| {
        let dir = std::env::temp_dir().join(format!(
            "igern-bench-wal-{}-{}",
            std::process::id(),
            fsync.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (dir, fsync)
    });
    let cfg = ServerConfig {
        space: Aabb::from_coords(0.0, 0.0, SIDE, SIDE),
        grid: 16,
        workers,
        io,
        tick_mode: TickMode::Every(Duration::from_millis(args.tick_ms.max(1))),
        slow_consumer: SlowConsumerPolicy::Coalesce,
        wal: wal_dir.as_ref().map(|(dir, fsync)| WalOptions {
            fsync: *fsync,
            ..WalOptions::new(dir)
        }),
        ..ServerConfig::default()
    };
    let mut server = Server::start(("127.0.0.1", 0), store, cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let (updates_per_sec, latencies) = run_clients(&addr, args);
    let m = server.metrics();
    let label = match wal_fsync {
        None => format!("in-process, {workers} workers, {} io", io.name()),
        Some(f) => format!(
            "in-process, {workers} workers, {} io, wal fsync={}",
            io.name(),
            f.name()
        ),
    };
    let series = Series {
        label,
        workers,
        io: Some(io),
        wal_fsync,
        updates_per_sec,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        samples: latencies.len(),
        slow_consumer_events: m.slow_consumer_total.get(),
        protocol_errors: m.protocol_errors_total.get(),
    };
    server.stop();
    if let Some((dir, _)) = wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    series
}

/// Objects the sweep driver maintains; subscriber anchors cycle these.
const SWEEP_OBJECTS: u32 = 512;
/// Driver churn per tick in the subscriber sweep.
const SWEEP_CHURN: usize = 64;

struct SweepPoint {
    io: IoBackend,
    subscribers: usize,
    ticks: u64,
    handshake_secs: f64,
    fanout_p50_ms: f64,
    fanout_p99_ms: f64,
    samples: usize,
    /// `Some(reason)` when the point was not measured.
    skipped: Option<&'static str>,
}

/// Block on `r` (bounded by the stream's read timeout per poll) until a
/// frame decodes.
fn next_push(r: &mut FrameReader<Stream>, deadline: Duration) -> Frame {
    let t0 = Instant::now();
    loop {
        match r.poll().expect("subscriber stream is well-formed") {
            ReadOutcome::Frame(f) => return f,
            ReadOutcome::Eof => panic!("subscriber saw EOF mid-sweep"),
            _ => assert!(
                t0.elapsed() < deadline,
                "subscriber starved for {deadline:?}"
            ),
        }
    }
}

/// Fan-out to `n` standing subscribers over the in-memory transport:
/// one driver client churns objects and steps ticks while `n` raw
/// streams each hold a 4-NN subscription. Per tick, every subscriber's
/// `TICK_END` arrival is timed against the tick's push stamp; the
/// drain runs on one thread, so the recorded p99 is the cost of
/// delivering *and consuming* the full fan-out, not one lucky socket.
fn sweep_point(io: IoBackend, n: usize, ticks: u64, args: &SrvArgs) -> SweepPoint {
    let space = Aabb::from_coords(0.0, 0.0, SIDE, SIDE);
    let cfg = ServerConfig {
        space,
        grid: 16,
        io,
        tick_mode: TickMode::Manual,
        slow_consumer: SlowConsumerPolicy::Coalesce,
        ..ServerConfig::default()
    };
    let store = SpatialStore::new(space, 16, Vec::new());
    let (listener, connector) = memory_listener();
    let mut server = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
        .expect("sweep server boots");

    let mut driver = Client::from_stream(Stream::Mem(connector.connect().expect("driver pipe")))
        .expect("driver handshake");
    let mut rng = Rng64::seed_from_u64(args.seed ^ 0xFA0);
    for id in 1..=SWEEP_OBJECTS {
        driver
            .upsert(id, ObjectKind::A, rng.f64() * SIDE, rng.f64() * SIDE)
            .expect("populate");
    }
    // The driver holds a subscription of its own purely so TICK_END
    // reaches it (ticks are only pushed to subscribed connections).
    driver.subscribe(1, Algorithm::Knn(1)).expect("driver sub");

    // Handshake pipelined in waves — send to all, then collect from
    // all — so connection setup overlaps inside the server instead of
    // serializing on this thread's round trips.
    let wait = Duration::from_secs(120);
    let t0 = Instant::now();
    let mut subs: Vec<(Stream, FrameReader<Stream>)> = Vec::with_capacity(n);
    for _ in 0..n {
        let s = Stream::Mem(connector.connect().expect("subscriber pipe"));
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .expect("read timeout");
        let mut w = s.try_clone().expect("stream clone");
        w.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello");
        subs.push((w, FrameReader::new(s)));
    }
    for (_, r) in subs.iter_mut() {
        match next_push(r, wait) {
            Frame::HelloAck { .. } => {}
            other => panic!("expected HelloAck, got {other:?}"),
        }
    }
    for (i, (w, _)) in subs.iter_mut().enumerate() {
        w.write_all(
            &Frame::Subscribe {
                token: 1,
                anchor: 1 + (i as u32 % SWEEP_OBJECTS),
                algo: Algorithm::Knn(4),
                mode: igern_core::DistanceMode::Euclidean,
            }
            .encode(),
        )
        .expect("subscribe");
    }
    for (_, r) in subs.iter_mut() {
        match next_push(r, wait) {
            Frame::Subscribed { .. } => {}
            other => panic!("expected Subscribed, got {other:?}"),
        }
    }
    let handshake_secs = t0.elapsed().as_secs_f64();

    let mut lat_ms: Vec<f64> = Vec::with_capacity(n * ticks as usize);
    for tick in 1..=ticks {
        for _ in 0..SWEEP_CHURN {
            let id = 1 + rng.gen_range(0..SWEEP_OBJECTS as usize) as u32;
            driver
                .upsert(id, ObjectKind::A, rng.f64() * SIDE, rng.f64() * SIDE)
                .expect("churn");
        }
        driver.step().expect("step");
        driver
            .wait_tick_end(tick, Duration::from_secs(120))
            .expect("driver tick");
        for (_, r) in subs.iter_mut() {
            loop {
                if let Frame::TickEnd {
                    tick: t,
                    stamp_nanos,
                } = next_push(r, wait)
                {
                    if t == tick {
                        let now = now_nanos();
                        if now > stamp_nanos {
                            lat_ms.push((now - stamp_nanos) as f64 / 1e6);
                        }
                        break;
                    }
                }
            }
        }
    }
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    drop(subs);
    drop(driver);
    server.stop();
    SweepPoint {
        io,
        subscribers: n,
        ticks,
        handshake_secs,
        fanout_p50_ms: percentile(&lat_ms, 0.50),
        fanout_p99_ms: percentile(&lat_ms, 0.99),
        samples: lat_ms.len(),
        skipped: None,
    }
}

fn run_subscriber_sweep(args: &SrvArgs) -> Vec<SweepPoint> {
    let counts: Vec<usize> = match args.subscribers {
        Some(n) => vec![n],
        None if args.quick => vec![100, 1_000],
        None => vec![100, 1_000, 10_000],
    };
    let ticks: u64 = if args.quick { 3 } else { 5 };
    let backends: &[IoBackend] = match args.io {
        Some(IoBackend::Reactor) => &[IoBackend::Reactor],
        Some(IoBackend::Threads) => &[IoBackend::Threads],
        None => &[IoBackend::Reactor, IoBackend::Threads],
    };
    let mut points = Vec::new();
    for &io in backends {
        for &n in &counts {
            if io == IoBackend::Threads && n >= 10_000 {
                // Two OS threads per connection: 10k subscribers means
                // 20k threads, which degrades (or outright fails) long
                // before the reactor's fixed pool notices. Documented
                // rather than measured.
                points.push(SweepPoint {
                    io,
                    subscribers: n,
                    ticks,
                    handshake_secs: f64::NAN,
                    fanout_p50_ms: f64::NAN,
                    fanout_p99_ms: f64::NAN,
                    samples: 0,
                    skipped: Some("threads backend needs 2 OS threads/conn; 20k threads"),
                });
                continue;
            }
            println!("  sweep: {} io, {n} subscribers ...", io.name());
            points.push(sweep_point(io, n, ticks, args));
        }
    }
    points
}

fn main() {
    let args = SrvArgs::parse();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "SRV: serving layer — {} clients × {} updates, {} objects/client, \
         tick {}ms, seed {}, host cpus {host_cpus}",
        args.clients, args.updates, args.objects_per_client, args.tick_ms, args.seed
    );

    let series: Vec<Series> = match &args.addr {
        Some(addr) => {
            let (updates_per_sec, latencies) = run_clients(addr, &args);
            vec![Series {
                label: format!("external {addr}"),
                workers: 0,
                io: None,
                wal_fsync: None,
                updates_per_sec,
                p50_ms: percentile(&latencies, 0.50),
                p99_ms: percentile(&latencies, 0.99),
                samples: latencies.len(),
                slow_consumer_events: 0,
                protocol_errors: 0,
            }]
        }
        None => {
            let io = args.io.unwrap_or(IoBackend::Reactor);
            let sweep = if host_cpus >= 4 { vec![1, 4] } else { vec![1] };
            let mut series: Vec<Series> = sweep
                .iter()
                .map(|&w| measure_in_process(w, io, &args, None))
                .collect();
            // Durability sweep: the same workload over a write-ahead
            // log, one series per fsync policy, at the widest worker
            // count measured above (the log rides the tick thread, so
            // its cost is worker-independent — compare against that
            // baseline series).
            let wal_workers = *sweep.last().expect("sweep never empty");
            for fsync in [FsyncPolicy::Never, FsyncPolicy::Tick, FsyncPolicy::Always] {
                series.push(measure_in_process(wal_workers, io, &args, Some(fsync)));
            }
            series
        }
    };
    let sweep_points: Vec<SweepPoint> = if args.addr.is_none() {
        run_subscriber_sweep(&args)
    } else {
        Vec::new()
    };

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                format!("{:.0}", s.updates_per_sec),
                format!("{:.3}", s.p50_ms),
                format!("{:.3}", s.p99_ms),
                s.samples.to_string(),
            ]
        })
        .collect();
    print_table(
        "SRV: sustained ingest and tick-to-push latency",
        &["series", "updates/s", "p50 ms", "p99 ms", "ticks seen"],
        &rows,
    );

    if !sweep_points.is_empty() {
        let rows: Vec<Vec<String>> = sweep_points
            .iter()
            .map(|p| {
                vec![
                    p.io.name().to_string(),
                    p.subscribers.to_string(),
                    match p.skipped {
                        Some(why) => format!("skipped: {why}"),
                        None => format!("{:.3}", p.fanout_p50_ms),
                    },
                    if p.skipped.is_some() {
                        "-".to_string()
                    } else {
                        format!("{:.3}", p.fanout_p99_ms)
                    },
                    p.samples.to_string(),
                ]
            })
            .collect();
        print_table(
            "SRV: subscriber fan-out sweep (tick stamp → TICK_END decoded)",
            &["io", "subscribers", "p50 ms", "p99 ms", "samples"],
            &rows,
        );
    }

    let entries: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"label\": \"{}\", \"workers\": {}, \"io\": {}, \"wal_fsync\": {}, \
                 \"updates_per_sec\": {:.1}, \
                 \"tick_to_push_p50_ms\": {:.4}, \"tick_to_push_p99_ms\": {:.4}, \
                 \"latency_samples\": {}, \"slow_consumer_events\": {}, \
                 \"protocol_errors\": {}}}",
                s.label,
                s.workers,
                s.io.map_or("null".to_string(), |io| format!("\"{}\"", io.name())),
                s.wal_fsync
                    .map_or("null".to_string(), |f| format!("\"{}\"", f.name())),
                s.updates_per_sec,
                s.p50_ms,
                s.p99_ms,
                s.samples,
                s.slow_consumer_events,
                s.protocol_errors
            )
        })
        .collect();
    let sweep_entries: Vec<String> = sweep_points
        .iter()
        .map(|p| {
            let num = |v: f64| {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    "null".to_string()
                }
            };
            format!(
                "    {{\"io\": \"{}\", \"subscribers\": {}, \"ticks\": {}, \
                 \"handshake_secs\": {}, \"fanout_p50_ms\": {}, \"fanout_p99_ms\": {}, \
                 \"samples\": {}, \"skipped\": {}}}",
                p.io.name(),
                p.subscribers,
                p.ticks,
                num(p.handshake_secs),
                num(p.fanout_p50_ms),
                num(p.fanout_p99_ms),
                p.samples,
                p.skipped
                    .map_or("null".to_string(), |why| format!("\"{why}\"")),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"server_throughput\",\n  \"clients\": {},\n  \
         \"updates_per_client\": {},\n  \"objects_per_client\": {},\n  \
         \"tick_ms\": {},\n  \"seed\": {},\n  \"host_cpus\": {host_cpus},\n  \
         \"series\": [\n{}\n  ],\n  \"subscriber_sweep\": [\n{}\n  ]\n}}\n",
        args.clients,
        args.updates,
        args.objects_per_client,
        args.tick_ms,
        args.seed,
        entries.join(",\n"),
        sweep_entries.join(",\n")
    );
    let path = "BENCH_server.json";
    std::fs::write(path, &json).expect("write BENCH_server.json");
    println!("wrote {path}");
}
