//! Experiment E5 — Figure 10: bichromatic stability over time.
//!
//! * Figure 10a: per-tick CPU time of the first ticks — at tick 0 plain
//!   Voronoi construction may win (IGERN's initial step does extra work to
//!   set up monitoring), but from tick 1 on IGERN is consistently cheaper.
//! * Figure 10b: accumulated CPU over up to 100 ticks — the gap widens.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E5 (Figure 10): bichromatic stability — {} objects, grid {}, seed {}",
        args.objects, args.grid, args.seed
    );
    let cfg = RunConfig {
        num_queries: args.queries,
        ..RunConfig::bi(args.objects, args.grid, args.ticks, args.seed)
    };
    let igern = harness::run_one(&cfg, Algorithm::IgernBi);
    let voronoi = harness::run_one(&cfg, Algorithm::VoronoiRepeat);

    let first = 10.min(cfg.ticks);
    let rows_a: Vec<Vec<String>> = (0..first)
        .map(|t| {
            vec![
                t.to_string(),
                ms(igern.tick_times[t]),
                ms(voronoi.tick_times[t]),
            ]
        })
        .collect();
    print_table(
        "Figure 10a: CPU time per tick (ms), first ticks",
        &["tick", "igern_ms", "voronoi_ms"],
        &rows_a,
    );
    write_csv(
        &args.out_dir,
        "fig10a_bi_time_intervals",
        &["tick", "igern_ms", "voronoi_ms"],
        &rows_a,
    );

    let marks: Vec<usize> = [10, 20, 40, 60, 80, 100]
        .into_iter()
        .filter(|&m| m <= cfg.ticks)
        .collect();
    let rows_b: Vec<Vec<String>> = marks
        .iter()
        .map(|&m| {
            vec![
                m.to_string(),
                ms(igern.accumulated[m - 1]),
                ms(voronoi.accumulated[m - 1]),
            ]
        })
        .collect();
    print_table(
        "Figure 10b: accumulated CPU time (ms) by number of time slots",
        &["slots", "igern_ms", "voronoi_ms"],
        &rows_b,
    );
    write_csv(
        &args.out_dir,
        "fig10b_bi_accumulated",
        &["slots", "igern_ms", "voronoi_ms"],
        &rows_b,
    );
    println!(
        "\nExpected shape: Voronoi may win only at tick 0; for every tick\n\
         after, IGERN is cheaper and the accumulated gap keeps growing."
    );
}
