//! Experiment E7 — ablations called out in DESIGN.md §7.
//!
//! * **A1** incremental vs re-evaluation: IGERN vs snapshot TPL re-run
//!   every tick (where do the savings come from?).
//! * **A2** pruning granularity: cell-level (the paper's literal
//!   algorithm) vs exact object-level dominance filtering — candidate-set
//!   size and CPU per tick.
//! * **A4** movement model: network-constrained vs random-waypoint — the
//!   IGERN advantage must not be an artifact of road clustering.

use std::time::{Duration, Instant};

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::baselines::{voronoi_snapshot_with, SiteAcquisition};
use igern_core::processor::Algorithm;
use igern_core::prune::PruneGranularity;
use igern_core::types::ObjectKind;
use igern_core::{MonoIgern, SpatialStore};
use igern_grid::{ObjectId, OpCounters};
use igern_mobgen::{HotspotConfig, Movement, ObjKind, Workload, WorkloadConfig};

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E7: ablations — {} objects, grid {}, {} ticks, seed {}",
        args.objects, args.grid, args.ticks, args.seed
    );
    ablation_a1(&args);
    ablation_a2(&args);
    ablation_a4(&args);
    ablation_a6(&args);
    ablation_a7(&args);
}

/// A1: incremental maintenance vs re-evaluating from scratch.
fn ablation_a1(args: &ExpArgs) {
    let cfg = RunConfig {
        num_queries: args.queries,
        ..RunConfig::mono(args.objects, args.grid, args.ticks, args.seed)
    };
    let igern = harness::run_one(&cfg, Algorithm::IgernMono);
    let tpl = harness::run_one(&cfg, Algorithm::TplRepeat);
    let headers = [
        "algorithm",
        "mean_ms_per_tick",
        "total_ms",
        "nn_c",
        "nn_b",
        "obj_visits",
    ];
    let rows = vec![
        vec![
            "IGERN (incremental)".into(),
            ms(igern.mean_time()),
            ms(igern.total_time()),
            igern.ops.nn_c.to_string(),
            igern.ops.nn_b.to_string(),
            igern.ops.objects_visited.to_string(),
        ],
        vec![
            "TPL (re-evaluate)".into(),
            ms(tpl.mean_time()),
            ms(tpl.total_time()),
            tpl.ops.nn_c.to_string(),
            tpl.ops.nn_b.to_string(),
            tpl.ops.objects_visited.to_string(),
        ],
    ];
    print_table("A1: incremental vs snapshot re-evaluation", &headers, &rows);
    write_csv(&args.out_dir, "ablation_a1_incremental", &headers, &rows);
}

/// A2: cell-granularity vs exact object-level pruning.
fn ablation_a2(args: &ExpArgs) {
    let headers = [
        "granularity",
        "mean_ms_per_tick",
        "mean_monitored",
        "obj_visits",
    ];
    let mut rows = Vec::new();
    for (label, gran) in [
        ("cell (paper-literal)", PruneGranularity::Cell),
        ("exact (default)", PruneGranularity::Exact),
    ] {
        let (mean_t, monitored, visits) = run_mono_with_granularity(args, gran);
        rows.push(vec![
            label.to_string(),
            ms(mean_t),
            format!("{monitored:.2}"),
            visits.to_string(),
        ]);
    }
    print_table("A2: pruning granularity", &headers, &rows);
    write_csv(&args.out_dir, "ablation_a2_granularity", &headers, &rows);
    println!(
        "\nExpected: cell granularity re-discovers every object in the\n\
         straddling cells each tick (orders of magnitude more visits and\n\
         CPU); per-tick cleaning caps the *retained* monitored count, so\n\
         the answers and final candidate counts match the exact mode."
    );
}

/// Drive MonoIgern manually so the granularity can be selected.
fn run_mono_with_granularity(args: &ExpArgs, gran: PruneGranularity) -> (Duration, f64, u64) {
    let mut workload =
        Workload::from_config(&WorkloadConfig::network_mono(args.objects, args.seed));
    let kinds = vec![ObjectKind::A; workload.len()];
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, args.grid, kinds);
    let initial: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&initial);
    let queries = (0..args.queries)
        .map(|i| ObjectId((i * workload.len() / args.queries.max(1)) as u32))
        .collect::<Vec<_>>();
    let mut ops = OpCounters::new();
    let mut monitors: Vec<MonoIgern> = Vec::new();
    let mut total = Duration::ZERO;
    let mut monitored_sum = 0u64;
    let mut samples = 0u64;
    let t0 = Instant::now();
    for &q in &queries {
        let pos = store.position(q).unwrap();
        let m = MonoIgern::initial_with(store.all(), pos, Some(q), gran, &mut ops);
        monitored_sum += m.num_monitored() as u64;
        samples += 1;
        monitors.push(m);
    }
    total += t0.elapsed();
    for _ in 1..args.ticks {
        for u in workload.advance().to_vec() {
            store.apply(ObjectId(u.id), u.pos);
        }
        let t = Instant::now();
        for (m, &q) in monitors.iter_mut().zip(&queries) {
            let pos = store.position(q).unwrap();
            m.incremental(store.all(), pos, &mut ops);
            monitored_sum += m.num_monitored() as u64;
            samples += 1;
        }
        total += t.elapsed();
    }
    let per_tick = total / (args.ticks as u32 * queries.len().max(1) as u32);
    (
        per_tick,
        monitored_sum as f64 / samples as f64,
        ops.objects_visited,
    )
}

/// A4: movement model — network vs random waypoint.
fn ablation_a4(args: &ExpArgs) {
    let headers = ["movement", "igern_ms", "crnn_ms", "igern_monitored"];
    let mut rows = Vec::new();
    for (label, cfg) in [
        (
            "network (Brinkhoff)",
            WorkloadConfig::network_mono(args.objects, args.seed),
        ),
        (
            "random waypoint",
            WorkloadConfig {
                num_objects: args.objects,
                seed: args.seed,
                movement: Movement::RandomWaypoint {
                    space: igern_geom::Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
                    min_speed: 2.0,
                    max_speed: 8.0,
                },
                kind_a_fraction: None,
            },
        ),
    ] {
        let (igern_t, igern_mon) = run_with_workload(args, &cfg, Algorithm::IgernMono);
        let (crnn_t, _) = run_with_workload(args, &cfg, Algorithm::Crnn);
        rows.push(vec![
            label.to_string(),
            ms(igern_t),
            ms(crnn_t),
            format!("{igern_mon:.2}"),
        ]);
    }
    print_table("A4: movement model", &headers, &rows);
    write_csv(&args.out_dir, "ablation_a4_movement", &headers, &rows);
    println!("\nExpected: IGERN < CRNN under both movement models.");
}

/// A7: Voronoi-baseline site acquisition — incremental iterator (our
/// strongest implementation) vs restart-per-site (the paper's §6
/// `a_t·NN_c` accounting), against IGERN-bi, over one bichromatic stream.
fn ablation_a7(args: &ExpArgs) {
    let mut workload = Workload::from_config(&WorkloadConfig::network_bi(args.objects, args.seed));
    let kinds: Vec<ObjectKind> = workload
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, args.grid, kinds);
    let initial: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&initial);
    let queries = workload.pick_queries(ObjKind::A, args.queries);
    let mut t_inc = Duration::ZERO;
    let mut t_restart = Duration::ZERO;
    let mut ops_inc = OpCounters::new();
    let mut ops_restart = OpCounters::new();
    let mut evals = 0u32;
    for _ in 0..args.ticks {
        for u in workload.advance().to_vec() {
            store.apply(ObjectId(u.id), u.pos);
        }
        for &q in &queries {
            let pos = store.position(ObjectId(q)).unwrap();
            let t = Instant::now();
            let a = voronoi_snapshot_with(
                store.grid_a(),
                store.grid_b(),
                pos,
                Some(ObjectId(q)),
                SiteAcquisition::Incremental,
                &mut ops_inc,
            );
            t_inc += t.elapsed();
            let t = Instant::now();
            let b = voronoi_snapshot_with(
                store.grid_a(),
                store.grid_b(),
                pos,
                Some(ObjectId(q)),
                SiteAcquisition::RestartPerSite,
                &mut ops_restart,
            );
            t_restart += t.elapsed();
            assert_eq!(a.rnn, b.rnn, "acquisition modes must agree");
            evals += 1;
        }
    }
    let headers = ["voronoi variant", "ms_per_eval", "obj_visits"];
    let rows = vec![
        vec![
            "incremental iterator".into(),
            ms(t_inc / evals),
            ops_inc.objects_visited.to_string(),
        ],
        vec![
            "restart per site (paper cost model)".into(),
            ms(t_restart / evals),
            ops_restart.objects_visited.to_string(),
        ],
    ];
    print_table("A7: Voronoi-baseline site acquisition", &headers, &rows);
    write_csv(&args.out_dir, "ablation_a7_voronoi_sites", &headers, &rows);
    println!(
        "
Expected: identical answers; the restart-per-site variant (the
         literal §6 accounting) is substantially more expensive — part of
         the paper's reported IGERN-vs-Voronoi gap is baseline-substrate
         strength rather than algorithmic structure."
    );
}

/// A6: spatial skew — Gaussian hotspots vs the road network.
fn ablation_a6(args: &ExpArgs) {
    let headers = ["distribution", "igern_ms", "crnn_ms", "igern_monitored"];
    let mut rows = Vec::new();
    for (label, cfg) in [
        (
            "network (baseline)",
            WorkloadConfig::network_mono(args.objects, args.seed),
        ),
        (
            "gaussian hotspots",
            WorkloadConfig {
                num_objects: args.objects,
                seed: args.seed,
                movement: Movement::Hotspot(HotspotConfig::default()),
                kind_a_fraction: None,
            },
        ),
    ] {
        let (igern_t, igern_mon) = run_with_workload(args, &cfg, Algorithm::IgernMono);
        let (crnn_t, _) = run_with_workload(args, &cfg, Algorithm::Crnn);
        rows.push(vec![
            label.to_string(),
            ms(igern_t),
            ms(crnn_t),
            format!("{igern_mon:.2}"),
        ]);
    }
    print_table("A6: spatial skew (hotspot clustering)", &headers, &rows);
    write_csv(&args.out_dir, "ablation_a6_skew", &headers, &rows);
    println!(
        "
Expected: heavy clustering favors IGERN's single adaptive region
         over CRNN's fixed six pies (queries inside a hotspot see dense
         pies; queries at a hotspot fringe see open-ended ones)."
    );
}

/// Run a processor-driven algorithm over an explicit workload config.
fn run_with_workload(args: &ExpArgs, wcfg: &WorkloadConfig, algo: Algorithm) -> (Duration, f64) {
    let mut workload = Workload::from_config(wcfg);
    let kinds: Vec<ObjectKind> = workload
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, args.grid, kinds);
    let initial: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&initial);
    let mut proc = igern_core::processor::Processor::new(store);
    for q in workload.pick_queries(ObjKind::A, args.queries) {
        proc.add_query(ObjectId(q), algo);
    }
    proc.evaluate_all();
    for _ in 1..args.ticks {
        let ups: Vec<(ObjectId, _)> = workload
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        proc.step(&ups);
    }
    let mut total = Duration::ZERO;
    let mut monitored = 0u64;
    let mut samples = 0u64;
    for qi in 0..proc.num_queries() {
        for s in proc.history(qi) {
            total += s.elapsed;
            monitored += s.monitored as u64;
            samples += 1;
        }
    }
    (
        total / samples.max(1) as u32,
        monitored as f64 / samples.max(1) as f64,
    )
}
