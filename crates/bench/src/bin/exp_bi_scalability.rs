//! Experiment E4 — Figure 9: bichromatic scalability, IGERN vs repetitive
//! Voronoi.
//!
//! * Figure 9a: average CPU time per tick as objects grow 10K..100K
//!   (half A, half B) — IGERN grows far more slowly than Voronoi.
//! * Figure 9b: monitored objects, monochromatic vs bichromatic IGERN —
//!   nearly the same, showing the unified framework costs nothing extra.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E4 (Figure 9): bichromatic scalability — grid {}, {} ticks, seed {}",
        args.grid, args.ticks, args.seed
    );
    let mut rows = Vec::new();
    for n in args.object_sweep() {
        let bi_cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::bi(n, args.grid, args.ticks, args.seed)
        };
        let mono_cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::mono(n, args.grid, args.ticks, args.seed)
        };
        let igern_bi = harness::run_one(&bi_cfg, Algorithm::IgernBi);
        let voronoi = harness::run_one(&bi_cfg, Algorithm::VoronoiRepeat);
        let igern_mono = harness::run_one(&mono_cfg, Algorithm::IgernMono);
        rows.push(vec![
            (n / 1000).to_string(),
            ms(igern_bi.mean_time()),
            ms(voronoi.mean_time()),
            format!("{:.2}", igern_mono.mean_monitored),
            format!("{:.2}", igern_bi.mean_monitored),
            format!("{:.2}", igern_bi.mean_answer),
        ]);
    }
    let headers = [
        "objects_K",
        "igern_bi_ms",
        "voronoi_ms",
        "mono_monitored",
        "bi_monitored",
        "bi_answer_size",
    ];
    print_table(
        "Figure 9a/9b: avg CPU per tick (ms) and monitored objects (mono vs bi)",
        &headers,
        &rows,
    );
    write_csv(&args.out_dir, "fig9_bi_scalability", &headers, &rows);
    println!(
        "\nExpected shape: IGERN's growth with object count is much gentler\n\
         than repetitive Voronoi's; monitored counts for mono and bi IGERN\n\
         are close (Figure 9b's point about the unified framework)."
    );
}
