//! Experiment E6 — Section 6's analytical comparison, fed with measured
//! quantities.
//!
//! The cost formulas of §6 take the unit costs of the three NN-search
//! classes and the per-tick series `r_t` / `a_t` / `b_t`. Here we measure
//! those from a real run (operation counters give machine-independent
//! units: objects visited per search class) and evaluate the paper's
//! ratios, checking the claimed inequalities hold on measured data.

use igern_bench::report::{print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::costmodel::{
    bi_ratio_vs_voronoi, crnn_cost, igern_bi_cost, igern_mono_cost, mono_ratio_vs_crnn,
    mono_ratio_vs_tpl, tpl_cost, voronoi_cost, UnitCosts,
};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E6 (Section 6): analytical cost model on measured parameters — {} objects, grid {}",
        args.objects, args.grid
    );
    let mono_cfg = RunConfig {
        num_queries: args.queries,
        ..RunConfig::mono(args.objects, args.grid, args.ticks, args.seed)
    };
    let bi_cfg = RunConfig {
        num_queries: args.queries,
        ..RunConfig::bi(args.objects, args.grid, args.ticks, args.seed)
    };

    // Measure unit costs from the IGERN runs: objects visited per search,
    // split by class via the per-class counters.
    let mono = harness::run_one(&mono_cfg, Algorithm::IgernMono);
    let bi = harness::run_one(&bi_cfg, Algorithm::IgernBi);
    let total_searches = mono.ops.total_searches().max(1);
    let per_search = mono.ops.objects_visited as f64 / total_searches as f64;
    // Relative weights: unconstrained searches scan the most, bounded the
    // least; measured proxy keeps the model honest about magnitude.
    let u = UnitCosts {
        nn: per_search * 1.5,
        nn_c: per_search,
        nn_b: per_search * 0.4,
    };

    let ticks = args.ticks;
    let r = vec![mono.mean_monitored; ticks];
    let a = vec![bi.mean_monitored; ticks];
    let b = vec![bi.mean_answer.max(1.0); ticks];

    let rows = vec![
        vec![
            "IGERN-mono".into(),
            format!("{:.1}", igern_mono_cost(&u, &r)),
            format!("{:.3}", mono_ratio_vs_crnn(&u, &r)),
        ],
        vec![
            "CRNN".into(),
            format!("{:.1}", crnn_cost(&u, ticks)),
            "1.000".into(),
        ],
        vec![
            "TPL-repeat".into(),
            format!("{:.1}", tpl_cost(&u, &r)),
            format!("{:.3}", mono_ratio_vs_tpl(&u, &r)),
        ],
        vec![
            "IGERN-bi".into(),
            format!("{:.1}", igern_bi_cost(&u, &a, &b)),
            format!("{:.3}", bi_ratio_vs_voronoi(&u, &a, &b)),
        ],
        vec![
            "Voronoi-repeat".into(),
            format!("{:.1}", voronoi_cost(&u, &a, &b)),
            "1.000".into(),
        ],
    ];
    let headers = ["algorithm", "model_cost", "ratio_vs_its_baseline"];
    print_table(
        "Section 6: analytical costs on measured unit costs and series",
        &headers,
        &rows,
    );
    write_csv(&args.out_dir, "sec6_cost_model", &headers, &rows);

    println!("\nMeasured inputs:");
    println!("  unit objects-visited per search ≈ {per_search:.1}");
    println!("  r_t (mono monitored)  ≈ {:.2}", mono.mean_monitored);
    println!("  a_t (bi monitored)    ≈ {:.2}", bi.mean_monitored);
    println!("  b_t (bi answer size)  ≈ {:.2}", bi.mean_answer);
    let ok_crnn = igern_mono_cost(&u, &r) <= crnn_cost(&u, ticks);
    let ok_tpl = igern_mono_cost(&u, &r) <= tpl_cost(&u, &r) + 1e-9;
    let ok_vor = igern_bi_cost(&u, &a, &b) <= voronoi_cost(&u, &a, &b) + 1e-9;
    println!("\nSection-6 inequalities on measured data:");
    println!("  IGERN ≤ CRNN     : {ok_crnn}");
    println!("  IGERN ≤ TPL      : {ok_tpl}");
    println!("  IGERN ≤ Voronoi  : {ok_vor}");
}
