//! Experiment ENG — sharded-engine scaling: wall-clock per tick of the
//! 64-query corner workload (the routing acceptance workload) as the
//! worker count sweeps 1 → 8.
//!
//! Two series per worker count:
//!
//! * **routed** — `IgernMono` with skip routing on: most query-ticks are
//!   skipped, so this mainly measures the coordinator/worker round-trip
//!   overhead the sharding adds.
//! * **heavy** — `TplRepeat` with routing off: every query re-evaluates
//!   every tick, the load the sharding is meant to spread.
//!
//! Results go to `BENCH_engine.json` (repo root by default). The file
//! records `host_cpus`: on a single-core host the workers serialize and
//! no speedup is physically possible — interpret the sweep against that
//! field, the numbers are measured, never extrapolated.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use igern_bench::{report::print_table, ExpArgs};
use igern_core::obs::MetricsRegistry;
use igern_core::processor::{Algorithm, Processor};
use igern_core::types::{DistanceMode, ObjectKind};
use igern_core::{NetworkSpace, SpatialStore};
use igern_engine::{EngineMetrics, Placement, ShardedEngine};
use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;
use igern_mobgen::rng::Rng64;
use igern_mobgen::{build_synthetic_network, SyntheticNetworkConfig};

/// Counting global allocator — bench-harness-only instrumentation that
/// turns the "zero steady-state allocations per routed tick" claim into a
/// measurement instead of an assertion. Every allocation and reallocation
/// bumps one relaxed counter; frees are not counted (a tick that frees
/// without allocating still holds the steady state). The counter is read
/// around the measured tick window of the `large` series.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

static BT_BUDGET: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn trace_alloc(layout: Layout) {
    if BT_BUDGET.load(Ordering::Relaxed) == 0 {
        return;
    }
    IN_HOOK.with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        if BT_BUDGET.fetch_sub(1, Ordering::Relaxed) > 0 {
            eprintln!(
                "alloc of {} bytes at:\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        flag.set(false);
    });
}

/// Count one allocation — unless it came from the backtrace printer
/// itself (the debug-only `EXP_ALLOC_TRACE` path), whose own allocations
/// would otherwise pollute the measurement.
fn count_alloc(layout: Layout) {
    let in_hook = IN_HOOK.try_with(|flag| flag.get()).unwrap_or(false);
    if !in_hook {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trace_alloc(layout);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc(layout);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const SIDE: f64 = 100.0;
const CORNER: f64 = 10.0;
const N_QUERIES: usize = 64;
const N_FILLER: usize = 336;
const N_MOVERS: usize = 40;

fn corner_point(rng: &mut Rng64) -> Point {
    Point::new(rng.f64() * CORNER, rng.f64() * CORNER)
}

/// The corner workload: 8×8 lattice of query anchors, uniform filler,
/// movers jittering inside one grid corner.
fn build_store(seed: u64) -> SpatialStore {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::new();
    for iy in 0..8 {
        for ix in 0..8 {
            pts.push(Point::new(ix as f64 * 12.5 + 6.25, iy as f64 * 12.5 + 6.25));
        }
    }
    for _ in 0..N_FILLER {
        pts.push(Point::new(rng.f64() * SIDE, rng.f64() * SIDE));
    }
    for _ in 0..N_MOVERS {
        pts.push(corner_point(&mut rng));
    }
    let mut store = SpatialStore::new(
        Aabb::from_coords(0.0, 0.0, SIDE, SIDE),
        16,
        vec![ObjectKind::A; pts.len()],
    );
    store.load(&pts);
    store
}

/// The seeded update stream: each tick a subset of movers jitters inside
/// the corner (identical across worker counts).
fn build_stream(seed: u64, ticks: usize) -> Vec<Vec<(ObjectId, Point)>> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xc02e_5eed);
    let first_mover = (N_QUERIES + N_FILLER) as u32;
    (0..ticks)
        .map(|_| {
            let mut ups = Vec::new();
            for m in 0..N_MOVERS {
                if rng.gen_bool(0.6) {
                    ups.push((ObjectId(first_mover + m as u32), corner_point(&mut rng)));
                }
            }
            ups
        })
        .collect()
}

struct Measured {
    ms_per_tick: f64,
    answer_fingerprint: u64,
    /// The observability registry, when the run was instrumented.
    registry: Option<MetricsRegistry>,
}

/// Run the workload on `workers` threads and time the tick loop,
/// optionally with the observability layer attached. With
/// [`DistanceMode::Network`] the store carries a deterministic synthetic
/// road graph (built from `seed`) and every query routes over it.
fn measure(
    workers: usize,
    algo: Algorithm,
    routing: bool,
    seed: u64,
    stream: &[Vec<(ObjectId, Point)>],
    with_metrics: bool,
    mode: DistanceMode,
) -> Measured {
    let mut store = build_store(seed);
    if mode == DistanceMode::Network {
        store.set_network(std::sync::Arc::new(NetworkSpace::from_network(
            &build_synthetic_network(&SyntheticNetworkConfig {
                k: 8,
                space: Aabb::from_coords(0.0, 0.0, SIDE, SIDE),
                seed,
                ..Default::default()
            }),
        )));
    }
    let mut engine = ShardedEngine::new(store, workers, Placement::RoundRobin);
    engine.set_skip_routing(routing);
    let registry = with_metrics.then(MetricsRegistry::new);
    if let Some(reg) = &registry {
        engine.set_metrics(Some(EngineMetrics::register(reg, "igern_engine", workers)));
    }
    for i in 0..N_QUERIES {
        engine
            .add_query_in(ObjectId(i as u32), algo, mode)
            .expect("valid query");
    }
    engine.evaluate_all();
    let start = Instant::now();
    for ups in stream {
        engine.step(ups);
    }
    let elapsed = start.elapsed();
    // A cheap order-sensitive hash over every answer, to assert the
    // sweep's outputs are identical at every worker count.
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for q in 0..N_QUERIES {
        for o in engine.answer(q) {
            fp = (fp ^ o.0 as u64).wrapping_mul(0x1000_0000_01b3);
        }
        fp = (fp ^ engine.monitored(q) as u64).wrapping_mul(0x1000_0000_01b3);
    }
    Measured {
        ms_per_tick: elapsed.as_secs_f64() * 1e3 / stream.len() as f64,
        answer_fingerprint: fp,
        registry,
    }
}

// ---------------------------------------------------------------------
// The `large` series: 100k objects × 10k queries on the serial tick loop.
// ---------------------------------------------------------------------

const L_SIDE: f64 = 1000.0;
const L_CORNER: f64 = 100.0;
const L_GRID_N: usize = 64;
const L_OBJECTS: usize = 100_000;
const L_QUERIES: usize = 10_000;
const L_MOVERS: usize = 1_000;

struct LargeResult {
    routed_ms_per_tick: f64,
    routed_allocs: u64,
    routed_ticks: usize,
    warmup_ticks: usize,
    heavy_ms_per_tick: f64,
    heavy_ticks: usize,
}

/// The scaled-up workload: 100×100 lattice of query anchors over a
/// 1000×1000 space, uniform filler to 100k objects, 1k movers jittering
/// in one 100×100 corner. Runs on the serial [`Processor`] — the engine's
/// coordinator/worker channels allocate per message by design, so the
/// zero-alloc claim is about the tick loop itself, which the serial path
/// exercises without protocol noise.
///
/// Two measurements:
///
/// * **routed** — `IgernMono` with skip routing on; after a warm-up
///   window the allocation counter must not move across the measured
///   ticks (the tentpole's zero-steady-state-allocation acceptance).
/// * **heavy** — the same queries with routing off, so all 10k re-run
///   IGERN's incremental step every tick. (`TplRepeat` is not used here:
///   10k snapshot re-runs over 100k objects per tick is the quadratic
///   blow-up the continuous algorithms exist to avoid.)
fn large_series(seed: u64, quick: bool) -> LargeResult {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x1a26_e5ee);
    let mut pts: Vec<Point> = Vec::with_capacity(L_OBJECTS);
    for iy in 0..100 {
        for ix in 0..100 {
            pts.push(Point::new(ix as f64 * 10.0 + 5.0, iy as f64 * 10.0 + 5.0));
        }
    }
    for _ in 0..L_OBJECTS - L_QUERIES - L_MOVERS {
        pts.push(Point::new(rng.f64() * L_SIDE, rng.f64() * L_SIDE));
    }
    for _ in 0..L_MOVERS {
        pts.push(Point::new(rng.f64() * L_CORNER, rng.f64() * L_CORNER));
    }
    let mut store = SpatialStore::new(
        Aabb::from_coords(0.0, 0.0, L_SIDE, L_SIDE),
        L_GRID_N,
        vec![ObjectKind::A; pts.len()],
    );
    store.load(&pts);

    let mut p = Processor::new(store);
    // Bounded histories become rings: pushes stop allocating once full.
    p.set_history_capacity(Some(4));
    for i in 0..L_QUERIES {
        p.add_query(ObjectId(i as u32), Algorithm::IgernMono);
    }
    p.evaluate_all();

    let warmup_ticks = if quick { 4 } else { 10 };
    let routed_ticks = if quick { 5 } else { 20 };
    let heavy_ticks = if quick { 2 } else { 3 };
    // The whole stream is pre-built so tick timing and the allocation
    // counter see only the processor, never the workload generator.
    let mut srng = Rng64::seed_from_u64(seed ^ 0x1a26_c02e);
    let first_mover = (L_OBJECTS - L_MOVERS) as u32;
    let stream: Vec<Vec<(ObjectId, Point)>> = (0..warmup_ticks + routed_ticks + heavy_ticks)
        .map(|_| {
            let mut ups = Vec::new();
            for m in 0..L_MOVERS {
                if srng.gen_bool(0.6) {
                    ups.push((
                        ObjectId(first_mover + m as u32),
                        Point::new(srng.f64() * L_CORNER, srng.f64() * L_CORNER),
                    ));
                }
            }
            ups
        })
        .collect();

    for ups in &stream[..warmup_ticks] {
        p.step(ups);
    }
    let trace = std::env::var_os("EXP_ALLOC_TRACE").is_some();
    let a0 = alloc_count();
    let t0 = Instant::now();
    for ups in &stream[warmup_ticks..warmup_ticks + routed_ticks] {
        let ta = alloc_count();
        if trace {
            BT_BUDGET.store(12, Ordering::Relaxed);
        }
        p.step(ups);
        if trace {
            BT_BUDGET.store(0, Ordering::Relaxed);
            eprintln!("tick allocs: {}", alloc_count() - ta);
        }
    }
    let routed_elapsed = t0.elapsed();
    let routed_allocs = alloc_count() - a0;

    p.set_skip_routing(false);
    let t1 = Instant::now();
    for ups in &stream[warmup_ticks + routed_ticks..] {
        p.step(ups);
    }
    let heavy_elapsed = t1.elapsed();

    LargeResult {
        routed_ms_per_tick: routed_elapsed.as_secs_f64() * 1e3 / routed_ticks as f64,
        routed_allocs,
        routed_ticks,
        warmup_ticks,
        heavy_ms_per_tick: heavy_elapsed.as_secs_f64() * 1e3 / heavy_ticks as f64,
        heavy_ticks,
    }
}

// ---------------------------------------------------------------------
// The `batch` series: clustered 10k queries, batched vs per-query.
// ---------------------------------------------------------------------

const B_SIDE: f64 = 1000.0;
const B_CORNER: f64 = 100.0;
const B_GRID_N: usize = 16;
const B_QUERIES: usize = 10_000;
const B_FILLER: usize = 190_000;
const B_MOVERS: usize = 1_000;
/// Query anchors take every 19th object id: a cluster cell's bucket then
/// holds ids scattered across the whole 200k-entry position table, so
/// the per-query path pays a cache miss per object per member where the
/// batched path gathers each cell once per group.
const B_STRIDE: usize = (B_QUERIES + B_FILLER) / B_QUERIES;

struct BatchResult {
    per_query_ms_per_tick: f64,
    batched_ms_per_tick: f64,
    speedup: f64,
    ticks: usize,
}

/// The shared-scan showcase workload: 10k `IgernMono` anchors packed
/// into one 100×100 corner of a 1000×1000 space (a few dozen grid cells,
/// hundreds of same-class queries per anchor cell), uniform filler, 1k
/// movers jittering inside the corner. Routing is off so every query
/// re-runs its incremental step every tick; the run is repeated on the
/// serial [`Processor`] with batching off and on, same pre-built stream.
/// Batching is a pure execution-plan change, so the answers must be
/// bit-identical — asserted via the same fingerprint as the sweep.
fn batch_series(seed: u64, quick: bool) -> BatchResult {
    let build = |batch: bool| {
        let mut rng = Rng64::seed_from_u64(seed ^ 0xba7c_5eed);
        let mut pts: Vec<Point> = (0..B_QUERIES + B_FILLER)
            .map(|_| Point::new(rng.f64() * B_SIDE, rng.f64() * B_SIDE))
            .collect();
        for i in 0..B_QUERIES {
            pts[i * B_STRIDE] = Point::new(rng.f64() * B_CORNER, rng.f64() * B_CORNER);
        }
        for _ in 0..B_MOVERS {
            pts.push(Point::new(rng.f64() * B_CORNER, rng.f64() * B_CORNER));
        }
        let mut store = SpatialStore::new(
            Aabb::from_coords(0.0, 0.0, B_SIDE, B_SIDE),
            B_GRID_N,
            vec![ObjectKind::A; pts.len()],
        );
        store.load(&pts);
        let mut p = Processor::new(store);
        p.set_skip_routing(false);
        p.set_history_capacity(Some(4));
        p.set_batch(batch);
        for i in 0..B_QUERIES {
            p.add_query(ObjectId((i * B_STRIDE) as u32), Algorithm::IgernMono);
        }
        p.evaluate_all();
        p
    };
    let warmup = 1;
    let ticks = if quick { 2 } else { 4 };
    let mut srng = Rng64::seed_from_u64(seed ^ 0xba7c_c02e);
    let first_mover = (B_QUERIES + B_FILLER) as u32;
    let stream: Vec<Vec<(ObjectId, Point)>> = (0..warmup + ticks)
        .map(|_| {
            let mut ups = Vec::new();
            for m in 0..B_MOVERS {
                if srng.gen_bool(0.6) {
                    ups.push((
                        ObjectId(first_mover + m as u32),
                        Point::new(srng.f64() * B_CORNER, srng.f64() * B_CORNER),
                    ));
                }
            }
            ups
        })
        .collect();

    let run = |batch: bool| {
        let mut p = build(batch);
        for ups in &stream[..warmup] {
            p.step(ups);
        }
        let t0 = Instant::now();
        for ups in &stream[warmup..] {
            p.step(ups);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / ticks as f64;
        let mut fp = 0xcbf2_9ce4_8422_2325u64;
        for q in 0..B_QUERIES {
            for o in p.answer(q) {
                fp = (fp ^ o.0 as u64).wrapping_mul(0x1000_0000_01b3);
            }
            fp = (fp ^ p.monitored(q) as u64).wrapping_mul(0x1000_0000_01b3);
        }
        (ms, fp)
    };
    let (per_query_ms, fp_plain) = run(false);
    let (batched_ms, fp_batched) = run(true);
    assert_eq!(
        fp_plain, fp_batched,
        "batched answers diverged from the per-query path — the series is invalid"
    );
    BatchResult {
        per_query_ms_per_tick: per_query_ms,
        batched_ms_per_tick: batched_ms,
        speedup: per_query_ms / batched_ms,
        ticks,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let ticks = if args.quick { 10 } else { args.ticks.min(60) };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ENG: engine scaling — {} queries, {} objects, {ticks} ticks, seed {}, host cpus {host_cpus}",
        N_QUERIES,
        N_QUERIES + N_FILLER + N_MOVERS,
        args.seed
    );
    let stream = build_stream(args.seed, ticks);
    let sweep = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut fingerprints: Vec<(u64, u64)> = Vec::new();
    // Best-of-N per cell: on a contended host a single timed sweep is at
    // the mercy of the scheduler, and the minimum is the estimate least
    // polluted by interference (same rationale as the metrics-overhead
    // check below). Every repeat's answers still feed the fingerprint
    // cross-check.
    let sweep_repeats = if args.quick { 2 } else { 3 };
    for &workers in &sweep {
        let mut routed_best = f64::INFINITY;
        let mut heavy_best = f64::INFINITY;
        for _ in 0..sweep_repeats {
            let routed = measure(
                workers,
                Algorithm::IgernMono,
                true,
                args.seed,
                &stream,
                false,
                DistanceMode::Euclidean,
            );
            let heavy = measure(
                workers,
                Algorithm::TplRepeat,
                false,
                args.seed,
                &stream,
                false,
                DistanceMode::Euclidean,
            );
            routed_best = routed_best.min(routed.ms_per_tick);
            heavy_best = heavy_best.min(heavy.ms_per_tick);
            fingerprints.push((routed.answer_fingerprint, heavy.answer_fingerprint));
            assert_eq!(
                fingerprints[0],
                *fingerprints.last().unwrap(),
                "answers diverged at {workers} workers — the sweep is invalid"
            );
        }
        rows.push(vec![
            workers.to_string(),
            format!("{routed_best:.4}"),
            format!("{heavy_best:.4}"),
        ]);
        entries.push(format!(
            "    {{\"workers\": {workers}, \"placement\": \"round-robin\", \
             \"repeats\": {sweep_repeats}, \
             \"routed_ms_per_tick\": {routed_best:.6}, \"heavy_ms_per_tick\": {heavy_best:.6}}}",
        ));
    }
    print_table(
        "ENG: ms per tick vs workers (64-query corner workload)",
        &["workers", "routed (IgernMono)", "heavy (TplRepeat)"],
        &rows,
    );

    // The large series: scale check plus the measured zero-alloc claim.
    let large = large_series(args.seed, args.quick);
    println!(
        "large ({}k objects, {}k queries, serial): routed {:.4} ms/tick \
         ({} allocations over {} measured ticks after {} warm-up), \
         heavy {:.2} ms/tick over {} ticks",
        L_OBJECTS / 1000,
        L_QUERIES / 1000,
        large.routed_ms_per_tick,
        large.routed_allocs,
        large.routed_ticks,
        large.warmup_ticks,
        large.heavy_ms_per_tick,
        large.heavy_ticks,
    );
    assert_eq!(
        large.routed_allocs, 0,
        "steady-state routed ticks must not touch the allocator"
    );

    // The batch series: shared-scan evaluation on the clustered workload.
    let batch = batch_series(args.seed, args.quick);
    println!(
        "batch ({}k clustered queries, serial, routing off): per-query {:.2} ms/tick, \
         batched {:.2} ms/tick ({:.2}x) over {} ticks",
        B_QUERIES / 1000,
        batch.per_query_ms_per_tick,
        batch.batched_ms_per_tick,
        batch.speedup,
        batch.ticks,
    );

    // The network series: the same corner workload under road-network
    // (shortest-path) distance — a synthetic 8×8 road graph over the
    // space, every query in DistanceMode::Network. Two worker counts
    // cross-check each other's answers; timings quantify what graph
    // routing costs relative to the Euclidean sweep above. The Euclidean
    // hot path is untouched by all of this: the `large` series'
    // zero-allocation assertion (above) is the regression gate.
    let net_ticks = if args.quick { 5 } else { 15 };
    let net_stream = build_stream(args.seed, net_ticks);
    let mut net_entries = Vec::new();
    let mut net_rows = Vec::new();
    let mut net_fps: Vec<(u64, u64)> = Vec::new();
    for workers in [1usize, 4] {
        let routed = measure(
            workers,
            Algorithm::IgernMono,
            true,
            args.seed,
            &net_stream,
            false,
            DistanceMode::Network,
        );
        let heavy = measure(
            workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &net_stream,
            false,
            DistanceMode::Network,
        );
        net_fps.push((routed.answer_fingerprint, heavy.answer_fingerprint));
        assert_eq!(
            net_fps[0],
            *net_fps.last().unwrap(),
            "network answers diverged at {workers} workers — the series is invalid"
        );
        net_rows.push(vec![
            workers.to_string(),
            format!("{:.4}", routed.ms_per_tick),
            format!("{:.4}", heavy.ms_per_tick),
        ]);
        net_entries.push(format!(
            "    {{\"workers\": {workers}, \"routed_ms_per_tick\": {:.6},              \"heavy_ms_per_tick\": {:.6}}}",
            routed.ms_per_tick, heavy.ms_per_tick,
        ));
    }
    print_table(
        "ENG: ms per tick under network distance (8x8 road graph)",
        &["workers", "routed (IgernMono)", "heavy (TplRepeat)"],
        &net_rows,
    );

    // Observability acceptance check: the same workload with the metrics
    // registry attached must stay within a few percent of the bare run.
    // Best-of-N per side damps scheduler noise; the heavy series is used
    // because its ticks are long enough to time meaningfully, over a 5×
    // longer stream so each timed run is hundreds of milliseconds.
    // Worker count is capped at the host's parallelism — oversubscribed
    // threads on a small host add scheduling jitter far larger than the
    // instrument cost being measured.
    let ov_workers = host_cpus.clamp(1, 4);
    let repeats = if args.quick { 3 } else { 5 };
    let ov_stream = build_stream(args.seed, ticks * 5);
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut on_registry = None;
    for _ in 0..repeats {
        let off = measure(
            ov_workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &ov_stream,
            false,
            DistanceMode::Euclidean,
        );
        let on = measure(
            ov_workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &ov_stream,
            true,
            DistanceMode::Euclidean,
        );
        assert_eq!(
            off.answer_fingerprint, on.answer_fingerprint,
            "attaching metrics changed the answers — instrumentation must be passive"
        );
        off_best = off_best.min(off.ms_per_tick);
        if on.ms_per_tick < on_best {
            on_best = on.ms_per_tick;
            on_registry = on.registry;
        }
    }
    let overhead_pct = (on_best - off_best) / off_best * 100.0;
    println!(
        "metrics overhead (heavy, {ov_workers} workers, best of {repeats}): \
         off {off_best:.4} ms/tick, on {on_best:.4} ms/tick ({overhead_pct:+.2}%)"
    );
    let registry_json = on_registry
        .expect("the instrumented run keeps its registry")
        .render_json();

    let json = format!(
        "{{\n  \"experiment\": \"engine_scaling\",\n  \"workload\": \"corner-64q\",\n  \
         \"queries\": {N_QUERIES},\n  \"objects\": {},\n  \"ticks\": {ticks},\n  \
         \"seed\": {},\n  \"host_cpus\": {host_cpus},\n  \"series\": [\n{}\n  ],\n  \
         \"metrics_overhead\": {{\"workers\": {ov_workers}, \"series\": \"heavy\", \
         \"repeats\": {repeats}, \"off_ms_per_tick\": {off_best:.6}, \
         \"on_ms_per_tick\": {on_best:.6}, \"overhead_pct\": {overhead_pct:.3}}},\n  \
         \"large\": {{\"objects\": {L_OBJECTS}, \"queries\": {L_QUERIES}, \
         \"grid_n\": {L_GRID_N}, \"engine\": \"serial\", \
         \"warmup_ticks\": {}, \"routed_ticks\": {}, \
         \"routed_ms_per_tick\": {:.6}, \"routed_allocs\": {}, \
         \"heavy_ticks\": {}, \"heavy_ms_per_tick\": {:.6}}},\n  \
         \"batch\": {{\"queries\": {B_QUERIES}, \"objects\": {}, \
         \"grid_n\": {B_GRID_N}, \"engine\": \"serial\", \"routing\": false, \
         \"ticks\": {}, \"per_query_ms_per_tick\": {:.6}, \
         \"batched_ms_per_tick\": {:.6}, \"speedup\": {:.3}}},\n  \
         \"network\": {{\"graph\": \"synthetic-8x8\", \"ticks\": {net_ticks}, \
         \"series\": [\n{}\n  ]}},\n  \
         \"metrics_registry\": {}\n}}\n",
        N_QUERIES + N_FILLER + N_MOVERS,
        args.seed,
        entries.join(",\n"),
        large.warmup_ticks,
        large.routed_ticks,
        large.routed_ms_per_tick,
        large.routed_allocs,
        large.heavy_ticks,
        large.heavy_ms_per_tick,
        B_QUERIES + B_FILLER + B_MOVERS,
        batch.ticks,
        batch.per_query_ms_per_tick,
        batch.batched_ms_per_tick,
        batch.speedup,
        net_entries.join(",\n"),
        registry_json.trim_end()
    );
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
