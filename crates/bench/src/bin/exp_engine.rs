//! Experiment ENG — sharded-engine scaling: wall-clock per tick of the
//! 64-query corner workload (the routing acceptance workload) as the
//! worker count sweeps 1 → 8.
//!
//! Two series per worker count:
//!
//! * **routed** — `IgernMono` with skip routing on: most query-ticks are
//!   skipped, so this mainly measures the coordinator/worker round-trip
//!   overhead the sharding adds.
//! * **heavy** — `TplRepeat` with routing off: every query re-evaluates
//!   every tick, the load the sharding is meant to spread.
//!
//! Results go to `BENCH_engine.json` (repo root by default). The file
//! records `host_cpus`: on a single-core host the workers serialize and
//! no speedup is physically possible — interpret the sweep against that
//! field, the numbers are measured, never extrapolated.

use std::time::Instant;

use igern_bench::{report::print_table, ExpArgs};
use igern_core::obs::MetricsRegistry;
use igern_core::processor::Algorithm;
use igern_core::types::ObjectKind;
use igern_core::SpatialStore;
use igern_engine::{EngineMetrics, Placement, ShardedEngine};
use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;
use igern_mobgen::rng::Rng64;

const SIDE: f64 = 100.0;
const CORNER: f64 = 10.0;
const N_QUERIES: usize = 64;
const N_FILLER: usize = 336;
const N_MOVERS: usize = 40;

fn corner_point(rng: &mut Rng64) -> Point {
    Point::new(rng.f64() * CORNER, rng.f64() * CORNER)
}

/// The corner workload: 8×8 lattice of query anchors, uniform filler,
/// movers jittering inside one grid corner.
fn build_store(seed: u64) -> SpatialStore {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::new();
    for iy in 0..8 {
        for ix in 0..8 {
            pts.push(Point::new(ix as f64 * 12.5 + 6.25, iy as f64 * 12.5 + 6.25));
        }
    }
    for _ in 0..N_FILLER {
        pts.push(Point::new(rng.f64() * SIDE, rng.f64() * SIDE));
    }
    for _ in 0..N_MOVERS {
        pts.push(corner_point(&mut rng));
    }
    let mut store = SpatialStore::new(
        Aabb::from_coords(0.0, 0.0, SIDE, SIDE),
        16,
        vec![ObjectKind::A; pts.len()],
    );
    store.load(&pts);
    store
}

/// The seeded update stream: each tick a subset of movers jitters inside
/// the corner (identical across worker counts).
fn build_stream(seed: u64, ticks: usize) -> Vec<Vec<(ObjectId, Point)>> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xc02e_5eed);
    let first_mover = (N_QUERIES + N_FILLER) as u32;
    (0..ticks)
        .map(|_| {
            let mut ups = Vec::new();
            for m in 0..N_MOVERS {
                if rng.gen_bool(0.6) {
                    ups.push((ObjectId(first_mover + m as u32), corner_point(&mut rng)));
                }
            }
            ups
        })
        .collect()
}

struct Measured {
    ms_per_tick: f64,
    answer_fingerprint: u64,
    /// The observability registry, when the run was instrumented.
    registry: Option<MetricsRegistry>,
}

/// Run the workload on `workers` threads and time the tick loop,
/// optionally with the observability layer attached.
fn measure(
    workers: usize,
    algo: Algorithm,
    routing: bool,
    seed: u64,
    stream: &[Vec<(ObjectId, Point)>],
    with_metrics: bool,
) -> Measured {
    let mut engine = ShardedEngine::new(build_store(seed), workers, Placement::RoundRobin);
    engine.set_skip_routing(routing);
    let registry = with_metrics.then(MetricsRegistry::new);
    if let Some(reg) = &registry {
        engine.set_metrics(Some(EngineMetrics::register(reg, "igern_engine", workers)));
    }
    for i in 0..N_QUERIES {
        engine
            .add_query(ObjectId(i as u32), algo)
            .expect("valid query");
    }
    engine.evaluate_all();
    let start = Instant::now();
    for ups in stream {
        engine.step(ups);
    }
    let elapsed = start.elapsed();
    // A cheap order-sensitive hash over every answer, to assert the
    // sweep's outputs are identical at every worker count.
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for q in 0..N_QUERIES {
        for o in engine.answer(q) {
            fp = (fp ^ o.0 as u64).wrapping_mul(0x1000_0000_01b3);
        }
        fp = (fp ^ engine.monitored(q) as u64).wrapping_mul(0x1000_0000_01b3);
    }
    Measured {
        ms_per_tick: elapsed.as_secs_f64() * 1e3 / stream.len() as f64,
        answer_fingerprint: fp,
        registry,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let ticks = if args.quick { 10 } else { args.ticks.min(60) };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ENG: engine scaling — {} queries, {} objects, {ticks} ticks, seed {}, host cpus {host_cpus}",
        N_QUERIES,
        N_QUERIES + N_FILLER + N_MOVERS,
        args.seed
    );
    let stream = build_stream(args.seed, ticks);
    let sweep = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut fingerprints: Vec<(u64, u64)> = Vec::new();
    for &workers in &sweep {
        let routed = measure(
            workers,
            Algorithm::IgernMono,
            true,
            args.seed,
            &stream,
            false,
        );
        let heavy = measure(
            workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &stream,
            false,
        );
        fingerprints.push((routed.answer_fingerprint, heavy.answer_fingerprint));
        assert_eq!(
            fingerprints[0],
            *fingerprints.last().unwrap(),
            "answers diverged at {workers} workers — the sweep is invalid"
        );
        rows.push(vec![
            workers.to_string(),
            format!("{:.4}", routed.ms_per_tick),
            format!("{:.4}", heavy.ms_per_tick),
        ]);
        entries.push(format!(
            "    {{\"workers\": {workers}, \"placement\": \"round-robin\", \
             \"routed_ms_per_tick\": {:.6}, \"heavy_ms_per_tick\": {:.6}}}",
            routed.ms_per_tick, heavy.ms_per_tick
        ));
    }
    print_table(
        "ENG: ms per tick vs workers (64-query corner workload)",
        &["workers", "routed (IgernMono)", "heavy (TplRepeat)"],
        &rows,
    );

    // Observability acceptance check: the same workload with the metrics
    // registry attached must stay within a few percent of the bare run.
    // Best-of-N per side damps scheduler noise; the heavy series is used
    // because its ticks are long enough to time meaningfully, over a 5×
    // longer stream so each timed run is hundreds of milliseconds.
    // Worker count is capped at the host's parallelism — oversubscribed
    // threads on a small host add scheduling jitter far larger than the
    // instrument cost being measured.
    let ov_workers = host_cpus.clamp(1, 4);
    let repeats = if args.quick { 3 } else { 5 };
    let ov_stream = build_stream(args.seed, ticks * 5);
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut on_registry = None;
    for _ in 0..repeats {
        let off = measure(
            ov_workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &ov_stream,
            false,
        );
        let on = measure(
            ov_workers,
            Algorithm::TplRepeat,
            false,
            args.seed,
            &ov_stream,
            true,
        );
        assert_eq!(
            off.answer_fingerprint, on.answer_fingerprint,
            "attaching metrics changed the answers — instrumentation must be passive"
        );
        off_best = off_best.min(off.ms_per_tick);
        if on.ms_per_tick < on_best {
            on_best = on.ms_per_tick;
            on_registry = on.registry;
        }
    }
    let overhead_pct = (on_best - off_best) / off_best * 100.0;
    println!(
        "metrics overhead (heavy, {ov_workers} workers, best of {repeats}): \
         off {off_best:.4} ms/tick, on {on_best:.4} ms/tick ({overhead_pct:+.2}%)"
    );
    let registry_json = on_registry
        .expect("the instrumented run keeps its registry")
        .render_json();

    let json = format!(
        "{{\n  \"experiment\": \"engine_scaling\",\n  \"workload\": \"corner-64q\",\n  \
         \"queries\": {N_QUERIES},\n  \"objects\": {},\n  \"ticks\": {ticks},\n  \
         \"seed\": {},\n  \"host_cpus\": {host_cpus},\n  \"series\": [\n{}\n  ],\n  \
         \"metrics_overhead\": {{\"workers\": {ov_workers}, \"series\": \"heavy\", \
         \"repeats\": {repeats}, \"off_ms_per_tick\": {off_best:.6}, \
         \"on_ms_per_tick\": {on_best:.6}, \"overhead_pct\": {overhead_pct:.3}}},\n  \
         \"metrics_registry\": {}\n}}\n",
        N_QUERIES + N_FILLER + N_MOVERS,
        args.seed,
        entries.join(",\n"),
        registry_json.trim_end()
    );
    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
