//! Experiment E10 — query-count scalability: total processor cost per
//! tick as the number of standing queries grows (the processor-oriented
//! claim of the paper's introduction: IGERN "scales up for large numbers
//! of moving objects **and queries**").

use std::time::Duration;

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E10: query-count sweep — {} objects, grid {}, {} ticks, seed {}",
        args.objects, args.grid, args.ticks, args.seed
    );
    let counts: &[usize] = if args.quick {
        &[1, 4, 16]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let mut rows = Vec::new();
    for &nq in counts {
        let cfg = RunConfig {
            num_queries: nq,
            ..RunConfig::mono(args.objects, args.grid, args.ticks, args.seed)
        };
        let igern = igern_bench::run_one(&cfg, Algorithm::IgernMono);
        let crnn = igern_bench::run_one(&cfg, Algorithm::Crnn);
        // mean_time() is per query per tick; total per tick = × nq.
        let total = |d: Duration| d * nq as u32;
        rows.push(vec![
            nq.to_string(),
            ms(total(igern.mean_time())),
            ms(total(crnn.mean_time())),
            ms(igern.mean_time()),
            ms(crnn.mean_time()),
        ]);
    }
    let headers = [
        "queries",
        "igern_total_ms_per_tick",
        "crnn_total_ms_per_tick",
        "igern_per_query_ms",
        "crnn_per_query_ms",
    ];
    print_table(
        "E10: processor cost vs number of standing queries",
        &headers,
        &rows,
    );
    write_csv(&args.out_dir, "e10_query_count", &headers, &rows);
    println!(
        "\nExpected shape: total cost grows linearly in the query count for\n\
         both algorithms (queries are independent), with IGERN's slope\n\
         roughly a third of CRNN's — so the query capacity at a fixed tick\n\
         budget is correspondingly higher."
    );
}
