//! Experiment E3 — Figure 8: monochromatic stability over time.
//!
//! * Figure 8a: per-tick CPU time of the first ten ticks — tick 0 (the
//!   initial step) is the expensive one; later ticks are flat, IGERN below
//!   CRNN throughout.
//! * Figure 8b: accumulated CPU time over up to 100 ticks — the IGERN
//!   saving grows with the horizon.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E3 (Figure 8): monochromatic stability — {} objects, grid {}, seed {}",
        args.objects, args.grid, args.seed
    );
    let cfg = RunConfig {
        num_queries: args.queries,
        ..RunConfig::mono(args.objects, args.grid, args.ticks, args.seed)
    };
    let igern = harness::run_one(&cfg, Algorithm::IgernMono);
    let crnn = harness::run_one(&cfg, Algorithm::Crnn);

    // Figure 8a: the first ten ticks.
    let first = 10.min(cfg.ticks);
    let rows_a: Vec<Vec<String>> = (0..first)
        .map(|t| {
            vec![
                t.to_string(),
                ms(igern.tick_times[t]),
                ms(crnn.tick_times[t]),
            ]
        })
        .collect();
    print_table(
        "Figure 8a: CPU time per tick (ms), first ticks",
        &["tick", "igern_ms", "crnn_ms"],
        &rows_a,
    );
    write_csv(
        &args.out_dir,
        "fig8a_mono_time_intervals",
        &["tick", "igern_ms", "crnn_ms"],
        &rows_a,
    );

    // Figure 8b: accumulated time at growing horizons.
    let marks: Vec<usize> = [10, 20, 40, 60, 80, 100]
        .into_iter()
        .filter(|&m| m <= cfg.ticks)
        .collect();
    let rows_b: Vec<Vec<String>> = marks
        .iter()
        .map(|&m| {
            vec![
                m.to_string(),
                ms(igern.accumulated[m - 1]),
                ms(crnn.accumulated[m - 1]),
            ]
        })
        .collect();
    print_table(
        "Figure 8b: accumulated CPU time (ms) by number of time slots",
        &["slots", "igern_ms", "crnn_ms"],
        &rows_b,
    );
    write_csv(
        &args.out_dir,
        "fig8b_mono_accumulated",
        &["slots", "igern_ms", "crnn_ms"],
        &rows_b,
    );
    println!(
        "\nExpected shape: tick 0 dominates; ticks ≥ 1 flat and stable;\n\
         the accumulated-time gap between CRNN and IGERN widens with the\n\
         number of slots."
    );
}
