//! Experiment E8 — the reverse **k**-nearest-neighbor extension (the
//! journal version of the paper generalizes IGERN to RkNN): per-tick CPU,
//! monitored objects (bounded by 6k), and answer size as `k` grows.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E8: reverse k-NN sweep — {} objects, grid {}, {} ticks, seed {}",
        args.objects, args.grid, args.ticks, args.seed
    );
    let ks: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let mut rows = Vec::new();
    for &k in ks {
        let mono_cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::mono(args.objects, args.grid, args.ticks, args.seed)
        };
        let bi_cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::bi(args.objects, args.grid, args.ticks, args.seed)
        };
        let mono = harness::run_one(&mono_cfg, Algorithm::IgernMonoK(k));
        let bi = harness::run_one(&bi_cfg, Algorithm::IgernBiK(k));
        rows.push(vec![
            k.to_string(),
            ms(mono.mean_time()),
            format!("{:.2}", mono.mean_monitored),
            format!("{:.2}", mono.mean_answer),
            ms(bi.mean_time()),
            format!("{:.2}", bi.mean_monitored),
            format!("{:.2}", bi.mean_answer),
        ]);
    }
    let headers = [
        "k",
        "mono_ms",
        "mono_monitored",
        "mono_answer",
        "bi_ms",
        "bi_monitored",
        "bi_answer",
    ];
    print_table("E8: RkNN extension, mono and bi, vs k", &headers, &rows);
    write_csv(&args.out_dir, "e8_krnn", &headers, &rows);
    println!(
        "\nExpected shape: monitored objects and answer sizes grow roughly\n\
         linearly with k (bounded by 6k); CPU grows with k because the\n\
         order-k region is non-convex and its redraw scans the grid."
    );
}
