//! Experiment E2 — Figure 7: monochromatic scalability, IGERN vs CRNN.
//!
//! * Figure 7a: average CPU time per tick as the object count grows from
//!   10K to 100K — IGERN consistently below CRNN.
//! * Figure 7b: average number of monitored objects — CRNN pins six,
//!   IGERN averages ≈3.

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::{harness, ExpArgs, RunConfig};
use igern_core::processor::Algorithm;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E2 (Figure 7): monochromatic scalability — grid {}, {} ticks, seed {}",
        args.grid, args.ticks, args.seed
    );
    let mut rows = Vec::new();
    for n in args.object_sweep() {
        let cfg = RunConfig {
            num_queries: args.queries,
            ..RunConfig::mono(n, args.grid, args.ticks, args.seed)
        };
        let igern = harness::run_one(&cfg, Algorithm::IgernMono);
        let crnn = harness::run_one(&cfg, Algorithm::Crnn);
        rows.push(vec![
            (n / 1000).to_string(),
            ms(igern.mean_time()),
            ms(crnn.mean_time()),
            format!("{:.2}", igern.mean_monitored),
            format!("{:.2}", crnn.mean_monitored),
            format!(
                "{:.3}",
                igern.mean_region_area / crnn.mean_region_area.max(1e-9)
            ),
            igern.ops.objects_visited.to_string(),
            crnn.ops.objects_visited.to_string(),
        ]);
    }
    let headers = [
        "objects_K",
        "igern_ms",
        "crnn_ms",
        "igern_monitored",
        "crnn_monitored",
        "area_ratio",
        "igern_obj_visits",
        "crnn_obj_visits",
    ];
    print_table(
        "Figure 7a/7b: avg CPU per tick (ms) and monitored objects, IGERN vs CRNN",
        &headers,
        &rows,
    );
    write_csv(&args.out_dir, "fig7_mono_scalability", &headers, &rows);
    println!(
        "\nExpected shape: IGERN below CRNN at every size (one region,\n\
         fewer candidates); CRNN monitored ≈ 6 throughout, IGERN ≈ 3;\n\
         IGERN's monitored area a small fraction of CRNN's (§3.3 argues\n\
         about one sixth)."
    );
}
