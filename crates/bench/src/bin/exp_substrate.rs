//! Experiment E9 — ablation A5: index substrate (grid vs R-tree).
//!
//! The paper runs everything on a grid; the original TPL was designed for
//! R-trees. This ablation runs the snapshot TPL on both substrates over
//! the same update stream, and also compares raw index-maintenance cost
//! (the price a tree pays for moving objects — the reason the continuous
//! query literature moved to grids).

use std::time::{Duration, Instant};

use igern_bench::report::{ms, print_table, write_csv};
use igern_bench::ExpArgs;
use igern_core::baselines::tpl_snapshot;
use igern_core::types::ObjectKind;
use igern_core::SpatialStore;
use igern_grid::{ObjectId, OpCounters};
use igern_mobgen::{Workload, WorkloadConfig};
use igern_rtree::{tpl_snapshot_rtree, RTree};

fn main() {
    let args = ExpArgs::parse();
    println!(
        "E9: substrate ablation (grid vs R-tree) — {} objects, grid {}, {} ticks, seed {}",
        args.objects, args.grid, args.ticks, args.seed
    );

    let mut workload =
        Workload::from_config(&WorkloadConfig::network_mono(args.objects, args.seed));
    let kinds = vec![ObjectKind::A; workload.len()];
    let space = workload.mover().space();
    let mut store = SpatialStore::new(space, args.grid, kinds);
    let mut rtree = RTree::new();
    let init: Vec<_> = (0..workload.len() as u32)
        .map(|i| workload.mover().position(i))
        .collect();
    store.load(&init);
    for (i, &p) in init.iter().enumerate() {
        rtree.insert(ObjectId(i as u32), p).unwrap();
    }
    let queries: Vec<ObjectId> = (0..args.queries)
        .map(|i| ObjectId((i * workload.len() / args.queries.max(1)) as u32))
        .collect();

    let mut grid_maint = Duration::ZERO;
    let mut tree_maint = Duration::ZERO;
    let mut grid_query = Duration::ZERO;
    let mut tree_query = Duration::ZERO;
    let mut grid_ops = OpCounters::new();
    let mut tree_ops = OpCounters::new();
    let mut evaluations = 0u32;

    for _ in 0..args.ticks {
        let ups = workload.advance().to_vec();
        let t = Instant::now();
        for u in &ups {
            store.apply(ObjectId(u.id), u.pos);
        }
        grid_maint += t.elapsed();
        let t = Instant::now();
        for u in &ups {
            rtree.update(ObjectId(u.id), u.pos).unwrap();
        }
        tree_maint += t.elapsed();

        for &q in &queries {
            let pos = store.position(q).unwrap();
            let t = Instant::now();
            let a = tpl_snapshot(store.all(), pos, Some(q), &mut grid_ops);
            grid_query += t.elapsed();
            let t = Instant::now();
            let b = tpl_snapshot_rtree(&rtree, pos, Some(q), &mut tree_ops);
            tree_query += t.elapsed();
            assert_eq!(a.rnn, b.rnn, "substrates must agree");
            evaluations += 1;
        }
    }

    let headers = [
        "substrate",
        "maint_ms_per_tick",
        "tpl_ms_per_eval",
        "nodes_or_cells_visited",
        "objects_visited",
    ];
    let rows = vec![
        vec![
            "grid".into(),
            ms(grid_maint / args.ticks as u32),
            ms(grid_query / evaluations),
            grid_ops.cells_visited.to_string(),
            grid_ops.objects_visited.to_string(),
        ],
        vec![
            "r-tree".into(),
            ms(tree_maint / args.ticks as u32),
            ms(tree_query / evaluations),
            tree_ops.cells_visited.to_string(),
            tree_ops.objects_visited.to_string(),
        ],
    ];
    print_table("E9 / A5: TPL on grid vs native R-tree", &headers, &rows);
    write_csv(&args.out_dir, "e9_substrate", &headers, &rows);
    println!(
        "\nBoth substrates return identical answers (asserted tick-by-tick).\n\
         Expected: query costs comparable; index maintenance far cheaper on\n\
         the grid under 100% movement — the reason the continuous-query\n\
         literature (and the paper) uses grids for moving objects."
    );
}
