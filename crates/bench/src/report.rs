//! Table printing and CSV output for the experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// Render a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Print an aligned table: a title line, a header row, and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line
    };
    println!("{}", fmt_row(headers.to_vec()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row.iter().map(|s| s.as_str()).collect()));
    }
}

/// Write the same table as CSV under `dir/name.csv` (directory created on
/// demand). Errors are reported but not fatal — the console table is the
/// primary output.
pub fn write_csv(dir: &str, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = Path::new(dir).join(format!("{name}.csv"));
    let run = || -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", headers.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    };
    match run() {
        Ok(()) => println!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formats_millis() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(ms(Duration::ZERO), "0.000");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("igern_report_test");
        let dir = dir.to_str().unwrap();
        write_csv(
            dir,
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let content = fs::read_to_string(Path::new(dir).join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        print_table("x", &["a", "b"], &[vec!["1".into()]]);
    }
}
