//! Per-connection state: the bounded outbound queue and the reader /
//! writer thread loops.
//!
//! Each accepted socket gets two threads. The **reader** owns the
//! receive side: it enforces the `HELLO` handshake, answers `PING`
//! inline, forwards every mutating command — in arrival order — into
//! the server's one bounded ingest queue (a blocking send, which is the
//! backpressure path), and turns protocol violations into one `ERROR`
//! frame plus a connection close, never a panic. The **writer** drains
//! the connection's outbound queue to the socket under a write timeout.
//!
//! The outbound queue is a `Mutex<VecDeque<Frame>>` (not a channel)
//! because the slow-consumer *coalesce* policy needs to drop queued
//! tick traffic in place while keeping acks and errors.

use std::collections::VecDeque;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::proto::{ErrorCode, Frame, FrameError, FrameReader, ReadOutcome, PROTOCOL_VERSION};
use crate::transport::Stream;
use crate::{Ingest, ServerConfig, ServerMetrics, SlowConsumerPolicy};

/// Result of pushing a tick batch into the outbound queue.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushOutcome {
    /// The batch is queued.
    Delivered,
    /// Coalesce policy fired: queued tick traffic was dropped and the
    /// batch was NOT queued — re-push full snapshots with
    /// [`Connection::push_forced`].
    NeedSnapshot,
    /// The connection is dead (or the disconnect policy just killed it).
    Dead,
}

/// Shared per-connection state (reader, writer, and tick thread all
/// hold an `Arc`).
pub(crate) struct Connection {
    pub id: u64,
    stream: Stream,
    queue: Mutex<VecDeque<Frame>>,
    wake: Condvar,
    /// Hard-dead: no more frames in or out; sockets are shut down.
    dead: AtomicBool,
    /// Graceful close: writer flushes the queue, then exits.
    closing: AtomicBool,
}

impl Connection {
    pub fn new(id: u64, stream: Stream) -> Self {
        Connection {
            id,
            stream,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            dead: AtomicBool::new(false),
            closing: AtomicBool::new(false),
        }
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Lock the outbound queue, recovering from poison instead of
    /// propagating it. A writer- or tick-thread panic must cost at most
    /// its own connection: the queue holds plain frames (always
    /// consistent at any lock boundary), so the poison flag carries no
    /// information here — swallowing it stops one panic from cascading
    /// into every thread that touches this queue. Recoveries are
    /// counted in `ServerMetrics::lock_poisoned_total`.
    fn lock_queue(&self, metrics: &ServerMetrics) -> MutexGuard<'_, VecDeque<Frame>> {
        self.queue.lock().unwrap_or_else(|e: PoisonError<_>| {
            metrics.lock_poisoned_total.inc();
            e.into_inner()
        })
    }

    /// Kill the connection now: both socket directions are shut down so
    /// the reader unblocks, and the writer discards whatever is queued.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.wake.notify_all();
    }

    /// Graceful close: the writer flushes queued frames first.
    pub fn close_after_flush(&self) {
        self.closing.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Queue a control frame (ack, error, pong) — never dropped by
    /// coalescing. Control traffic is bounded by the peer's own request
    /// rate (one reply per request, and requests flow through the
    /// bounded ingest queue), but a hard cap guards a peer that floods
    /// requests while never reading replies: past `4 × cap` the
    /// connection is killed regardless of policy.
    pub fn push_control(&self, frame: Frame, cap: usize, metrics: &ServerMetrics) {
        let mut q = self.lock_queue(metrics);
        if self.is_dead() {
            return;
        }
        if q.len() >= cap.saturating_mul(4) {
            drop(q);
            metrics.slow_consumer_total.inc();
            self.kill();
            return;
        }
        q.push_back(frame);
        drop(q);
        self.wake.notify_one();
    }

    /// Queue one tick's push batch, applying the slow-consumer policy
    /// on overflow.
    pub fn push_tick_batch(
        &self,
        batch: Vec<Frame>,
        cap: usize,
        policy: SlowConsumerPolicy,
        metrics: &ServerMetrics,
    ) -> PushOutcome {
        let mut q = self.lock_queue(metrics);
        if self.is_dead() {
            return PushOutcome::Dead;
        }
        if q.len() + batch.len() > cap {
            metrics.slow_consumer_total.inc();
            match policy {
                SlowConsumerPolicy::Disconnect => {
                    drop(q);
                    self.kill();
                    return PushOutcome::Dead;
                }
                SlowConsumerPolicy::Coalesce => {
                    // Shed every queued tick frame (stale deltas and
                    // end markers); acks/errors/pongs survive. The
                    // caller re-sends the current tick as snapshots.
                    q.retain(|f| !f.is_tick_traffic());
                    return PushOutcome::NeedSnapshot;
                }
            }
        }
        q.extend(batch);
        drop(q);
        self.wake.notify_one();
        PushOutcome::Delivered
    }

    /// Queue a snapshot batch after a coalesce, bypassing the cap (the
    /// queue holds no tick traffic at this point, so the overshoot is
    /// bounded by one tick's worth of frames — documented soft cap).
    pub fn push_forced(&self, batch: Vec<Frame>, metrics: &ServerMetrics) -> PushOutcome {
        let mut q = self.lock_queue(metrics);
        if self.is_dead() {
            return PushOutcome::Dead;
        }
        q.extend(batch);
        drop(q);
        self.wake.notify_one();
        PushOutcome::Delivered
    }

    /// Writer thread body: drain the queue to the socket.
    pub fn writer_loop(self: &Arc<Self>, metrics: &ServerMetrics) {
        loop {
            let frame = {
                let mut q = self.lock_queue(metrics);
                loop {
                    if self.is_dead() {
                        return;
                    }
                    if let Some(f) = q.pop_front() {
                        break f;
                    }
                    if self.closing.load(Ordering::Acquire) {
                        // Flushed everything; hand the socket back.
                        let _ = self.stream.shutdown(Shutdown::Write);
                        return;
                    }
                    let (guard, _) = self
                        .wake
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(|e: PoisonError<_>| {
                            metrics.lock_poisoned_total.inc();
                            e.into_inner()
                        });
                    q = guard;
                }
            };
            let wire = frame.encode();
            if std::io::Write::write_all(&mut (&self.stream), &wire).is_err() {
                // Write timeout or broken pipe: the consumer is gone
                // (or too slow to keep the socket open) — kill.
                metrics.slow_consumer_total.inc();
                self.kill();
                return;
            }
            metrics.frame_out(frame.type_name());
        }
    }
}

/// Reader thread body. Owns the receive half until the peer disconnects
/// or violates the protocol; always announces the close to the tick
/// thread with [`Ingest::Closed`] exactly once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reader_loop(
    conn: Arc<Connection>,
    stream: Stream,
    ingest: SyncSender<Ingest>,
    next_sid: Arc<AtomicU32>,
    shutdown: Arc<AtomicBool>,
    cfg: &ServerConfig,
    metrics: &ServerMetrics,
) {
    let mut reader = FrameReader::new(stream);
    let mut greeted = false;
    // Idle backoff: `read_timeout` is a poll interval, so an idle
    // reader wakes 20×/s doing nothing. After >1s without a frame the
    // poll stretches to 1s (shutdown latency bound); the next frame
    // restores the configured interval. The reactor backend has no
    // equivalent — it is readiness-driven and never polls.
    const IDLE_BACKOFF_AFTER: Duration = Duration::from_secs(1);
    const IDLE_POLL: Duration = Duration::from_secs(1);
    let mut idle_since: Option<std::time::Instant> = None;
    let mut backed_off = false;
    let err_frame = |code: ErrorCode, msg: &str| Frame::Error {
        code,
        message: msg.to_string(),
    };
    loop {
        match reader.poll() {
            Ok(ReadOutcome::Idle) => {
                if conn.is_dead() || shutdown.load(Ordering::Acquire) {
                    break;
                }
                match idle_since {
                    None => idle_since = Some(std::time::Instant::now()),
                    Some(t0) if !backed_off && t0.elapsed() >= IDLE_BACKOFF_AFTER => {
                        backed_off = true;
                        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
                    }
                    Some(_) => {}
                }
            }
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Skipped(_)) => {
                // Forward compatibility: a newer client's frame type we
                // cannot decode — counted, otherwise ignored.
                metrics.frames_skipped_total.inc();
            }
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Proto(e)) => {
                metrics.protocol_errors_total.inc();
                conn.push_control(
                    err_frame(ErrorCode::Malformed, &e.to_string()),
                    cfg.outbound_queue_frames,
                    metrics,
                );
                conn.close_after_flush();
                break;
            }
            Ok(ReadOutcome::Frame(frame)) => {
                idle_since = None;
                if backed_off {
                    backed_off = false;
                    let _ = reader.get_ref().set_read_timeout(Some(cfg.read_timeout));
                }
                metrics.frame_in(frame.type_name());
                if !greeted {
                    match frame {
                        Frame::Hello { version } if crate::proto::version_accepted(version) => {
                            greeted = true;
                            // Echo the client's (accepted) version: the
                            // conversation proceeds at the older side's
                            // level.
                            conn.push_control(
                                Frame::HelloAck { version },
                                cfg.outbound_queue_frames,
                                metrics,
                            );
                        }
                        Frame::Hello { version } => {
                            metrics.protocol_errors_total.inc();
                            conn.push_control(
                                err_frame(
                                    ErrorCode::VersionMismatch,
                                    &format!(
                                        "server speaks versions {}..={PROTOCOL_VERSION}, \
                                         client sent {version}",
                                        crate::proto::MIN_PROTOCOL_VERSION
                                    ),
                                ),
                                cfg.outbound_queue_frames,
                                metrics,
                            );
                            conn.close_after_flush();
                            break;
                        }
                        _ => {
                            metrics.protocol_errors_total.inc();
                            conn.push_control(
                                err_frame(ErrorCode::ExpectedHello, "first frame must be HELLO"),
                                cfg.outbound_queue_frames,
                                metrics,
                            );
                            conn.close_after_flush();
                            break;
                        }
                    }
                    continue;
                }
                let item = match frame {
                    Frame::Ping { nonce } => {
                        // Answered inline: liveness must not wait for a
                        // tick.
                        conn.push_control(
                            Frame::Pong { nonce },
                            cfg.outbound_queue_frames,
                            metrics,
                        );
                        continue;
                    }
                    Frame::UpsertObject { id, kind, x, y } => Ingest::Upsert {
                        conn: conn.id,
                        id,
                        kind,
                        x,
                        y,
                    },
                    Frame::RemoveObject { id } => Ingest::Remove { conn: conn.id, id },
                    Frame::Subscribe {
                        token,
                        anchor,
                        algo,
                        mode,
                    } => {
                        // The sid is allocated here but the SUBSCRIBED
                        // ack is emitted by the tick thread at dequeue,
                        // so a client that has seen it is part of the
                        // next tick and the ack precedes any ERROR or
                        // TICK_DELTA for the subscription.
                        let sid = next_sid.fetch_add(1, Ordering::Relaxed);
                        Ingest::Subscribe {
                            conn: conn.id,
                            sid,
                            token,
                            anchor,
                            algo,
                            mode,
                        }
                    }
                    Frame::Unsubscribe { sid } => Ingest::Unsubscribe { conn: conn.id, sid },
                    Frame::Step => Ingest::Step,
                    Frame::Shutdown => Ingest::ShutdownRequested,
                    // Server→client frames arriving from a client are a
                    // protocol violation.
                    _ => {
                        metrics.protocol_errors_total.inc();
                        conn.push_control(
                            err_frame(
                                ErrorCode::Malformed,
                                &format!("unexpected {} frame from client", frame.type_name()),
                            ),
                            cfg.outbound_queue_frames,
                            metrics,
                        );
                        conn.close_after_flush();
                        break;
                    }
                };
                // Blocking send on the bounded queue: this is where a
                // firehose client is backpressured.
                if ingest.send(item).is_err() {
                    break; // tick thread gone (shutdown)
                }
                metrics.ingest_enqueued_total.inc();
            }
        }
    }
    // Announce the close exactly once; tick thread tears down subs.
    if ingest.send(Ingest::Closed(conn.id)).is_ok() {
        metrics.ingest_enqueued_total.inc();
    }
    if !conn.is_dead() {
        conn.close_after_flush();
    }
}
