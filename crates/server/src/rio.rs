//! Reactor-backed serving: connection state machines on a small fixed
//! pool of event-loop threads.
//!
//! The threaded backend (`conn.rs`) spends two OS threads per accepted
//! socket; this module replaces them with `io_threads` event loops
//! (default `min(4, cpus)`), each running an [`igern_reactor::Reactor`]
//! over non-blocking streams:
//!
//! * **reads** — the resumable [`FrameReader`] is driven incrementally
//!   on readiness; `WouldBlock` parks the state machine until the next
//!   readable event. The handshake, inline `PING`, and frame→[`Ingest`]
//!   mapping are the same as the threaded reader's.
//! * **ingest backpressure** — the threaded reader blocks on the
//!   bounded ingest queue; an event loop must not. A frame that does
//!   not fit is *parked* on its connection, read interest is dropped,
//!   and delivery is retried on a short reactor timer — per-connection
//!   arrival order is preserved because a parked connection reads
//!   nothing further.
//! * **writes** — each connection owns a queue of encoded frames with a
//!   byte offset into the head frame; flushes run until `WouldBlock`,
//!   short writes resume on the next writable event (`EPOLLOUT` is
//!   registered only while the queue is non-empty). The slow-consumer
//!   policies are enforced as frame-count watermarks at enqueue time,
//!   exactly like the threaded queue: `disconnect`/`coalesce` at
//!   `outbound_queue_frames`, hard kill at 4× for control traffic.
//! * **tick fan-out** — the tick thread enqueues frames under each
//!   connection's mutex and schedules the connection on its loop's
//!   pending-flush list (deduplicated per connection), then wakes the
//!   loop. The [`Waker`](igern_reactor::Waker) coalesces, so a tick
//!   fanning out to hundreds of connections on one loop costs one
//!   `write(2)`, not hundreds.
//! * **shutdown** — graceful shutdown drains in-flight outbound queues
//!   with a bounded deadline (`shutdown_drain`) instead of relying on
//!   per-connection writer threads; a consumer that cannot drain in
//!   time is cut off at the deadline.
//!
//! The in-process memory transport has no fd: those connections
//! register as external readiness sources, with the transport's notify
//! hooks (`crates/server/src/transport.rs`) flipping ready bits.

use std::collections::VecDeque;
use std::io::Write;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use igern_core::obs::{
    Counter, Gauge, Histogram, MetricsRegistry, COUNT_BUCKETS, LATENCY_BUCKETS_S,
};
use igern_reactor::{Backend, ExternalHandle, Interest, Mode, Reactor, Token};

use crate::conn::{Connection, PushOutcome};
use crate::proto::{ErrorCode, Frame, FrameError, FrameReader, ReadOutcome, PROTOCOL_VERSION};
use crate::transport::{Listener, ReadyNotify, Stream};
use crate::{Ingest, ServerConfig, ServerMetrics, SlowConsumerPolicy};

/// Reserved token for the acceptor (loop 0 only). Connection tokens are
/// slab slots counting from 0; `u64::MAX` is reserved by the reactor.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// How soon a parked ingest delivery is retried.
const PARK_RETRY: Duration = Duration::from_millis(1);

/// Reactor-backend instruments, registered under
/// `igern_server_reactor_*` in the shared registry.
#[derive(Clone)]
pub struct ReactorMetrics {
    /// Readiness events delivered per event-loop wakeup.
    pub events_per_wakeup: Histogram,
    /// Ready-queue depth observed at the last dispatch.
    pub ready_queue_depth: Gauge,
    /// Outbound flushes resumed after a short write.
    pub short_write_resumptions_total: Counter,
    /// Soft `RLIMIT_NOFILE` read at startup (0 if unreadable).
    pub fd_limit: Gauge,
}

impl ReactorMetrics {
    /// Register every instrument in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let p = "igern_server_reactor";
        ReactorMetrics {
            events_per_wakeup: registry
                .histogram(&format!("{p}_events_per_wakeup"), &COUNT_BUCKETS),
            ready_queue_depth: registry.gauge(&format!("{p}_ready_queue_depth")),
            short_write_resumptions_total: registry
                .counter(&format!("{p}_short_write_resumptions_total")),
            fd_limit: registry.gauge(&format!("{p}_fd_limit")),
        }
    }
}

/// Either backend's per-connection handle, as seen by the tick thread.
/// The tick code is backend-agnostic: both arms expose the same queue
/// semantics ([`PushOutcome`], watermarks, graceful close).
#[derive(Clone)]
pub(crate) enum ConnHandle {
    /// Threaded backend: condvar queue drained by a writer thread.
    Thread(Arc<Connection>),
    /// Reactor backend: byte queue flushed by an event loop.
    Reactor(Arc<RConn>),
}

impl ConnHandle {
    pub fn id(&self) -> u64 {
        match self {
            ConnHandle::Thread(c) => c.id,
            ConnHandle::Reactor(c) => c.id,
        }
    }

    pub fn is_dead(&self) -> bool {
        match self {
            ConnHandle::Thread(c) => c.is_dead(),
            ConnHandle::Reactor(c) => c.is_dead(),
        }
    }

    pub fn push_control(&self, frame: Frame, cap: usize, metrics: &ServerMetrics) {
        match self {
            ConnHandle::Thread(c) => c.push_control(frame, cap, metrics),
            ConnHandle::Reactor(c) => c.push_control(frame, cap, metrics),
        }
    }

    pub fn push_tick_batch(
        &self,
        batch: Vec<Frame>,
        cap: usize,
        policy: SlowConsumerPolicy,
        metrics: &ServerMetrics,
    ) -> PushOutcome {
        match self {
            ConnHandle::Thread(c) => c.push_tick_batch(batch, cap, policy, metrics),
            ConnHandle::Reactor(c) => c.push_tick_batch(batch, cap, policy, metrics),
        }
    }

    pub fn push_forced(&self, batch: Vec<Frame>, metrics: &ServerMetrics) -> PushOutcome {
        match self {
            ConnHandle::Thread(c) => c.push_forced(batch, metrics),
            ConnHandle::Reactor(c) => c.push_forced(batch, metrics),
        }
    }

    pub fn close_after_flush(&self) {
        match self {
            ConnHandle::Thread(c) => c.close_after_flush(),
            ConnHandle::Reactor(c) => c.close_after_flush(),
        }
    }
}

/// One encoded outbound frame awaiting flush.
struct OutFrame {
    bytes: Vec<u8>,
    /// Sheddable under the coalesce policy (tick deltas / tick ends).
    tick: bool,
    /// Wire type, counted in `frames_out` once fully flushed.
    ty: &'static str,
}

/// Outbound queue: frames plus the byte offset already written into
/// the head frame (short-write resumption state).
struct OutState {
    frames: VecDeque<OutFrame>,
    head_off: usize,
}

/// Reactor-backend connection state shared between its event loop and
/// the tick thread.
pub(crate) struct RConn {
    pub id: u64,
    /// Slab slot (== token) on the owning loop.
    slot: usize,
    out: Mutex<OutState>,
    dead: AtomicBool,
    closing: AtomicBool,
    /// Already on the owning loop's pending-flush list (dedup so a
    /// tick enqueuing many batches schedules each connection once).
    queued: AtomicBool,
    /// Write/shutdown handle (the loop's reader owns another clone).
    stream: Stream,
    home: Arc<LoopShared>,
}

impl RConn {
    fn lock_out(&self, metrics: &ServerMetrics) -> MutexGuard<'_, OutState> {
        self.out.lock().unwrap_or_else(|e: PoisonError<_>| {
            metrics.lock_poisoned_total.inc();
            e.into_inner()
        })
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn is_closing(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }

    /// Kill now: both stream directions shut down, queued frames are
    /// discarded by the loop when it next visits the connection.
    pub fn kill(self: &Arc<Self>) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.schedule();
    }

    /// Graceful close: the loop flushes the queue, then half-closes.
    pub fn close_after_flush(self: &Arc<Self>) {
        self.closing.store(true, Ordering::Release);
        self.schedule();
    }

    /// Put this connection on its loop's pending-flush list (dedup'd)
    /// and wake the loop. The waker batches: any number of schedules
    /// between two loop iterations cost at most one syscall.
    fn schedule(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.home
                .flush
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(self));
        }
        self.home.waker.wake();
    }

    /// Same contract as [`Connection::push_control`]: never shed by
    /// coalescing, hard kill past `4 × cap`.
    pub fn push_control(self: &Arc<Self>, frame: Frame, cap: usize, metrics: &ServerMetrics) {
        let mut q = self.lock_out(metrics);
        if self.is_dead() {
            return;
        }
        if q.frames.len() >= cap.saturating_mul(4) {
            drop(q);
            metrics.slow_consumer_total.inc();
            self.kill();
            return;
        }
        q.frames.push_back(OutFrame {
            bytes: frame.encode(),
            tick: frame.is_tick_traffic(),
            ty: frame.type_name(),
        });
        drop(q);
        self.schedule();
    }

    /// Same contract as [`Connection::push_tick_batch`]: the
    /// slow-consumer policy fires when the queue watermark would be
    /// crossed.
    pub fn push_tick_batch(
        self: &Arc<Self>,
        batch: Vec<Frame>,
        cap: usize,
        policy: SlowConsumerPolicy,
        metrics: &ServerMetrics,
    ) -> PushOutcome {
        let mut q = self.lock_out(metrics);
        if self.is_dead() {
            return PushOutcome::Dead;
        }
        if q.frames.len() + batch.len() > cap {
            metrics.slow_consumer_total.inc();
            match policy {
                SlowConsumerPolicy::Disconnect => {
                    drop(q);
                    self.kill();
                    return PushOutcome::Dead;
                }
                SlowConsumerPolicy::Coalesce => {
                    // Shed queued tick traffic — except a partially
                    // written head frame, whose prefix is already on
                    // the wire and must complete or the byte stream
                    // corrupts. Acks/errors/pongs always survive.
                    let keep_head = q.head_off > 0;
                    let mut idx = 0;
                    q.frames.retain(|f| {
                        let keep = (idx == 0 && keep_head) || !f.tick;
                        idx += 1;
                        keep
                    });
                    return PushOutcome::NeedSnapshot;
                }
            }
        }
        for frame in batch {
            q.frames.push_back(OutFrame {
                bytes: frame.encode(),
                tick: frame.is_tick_traffic(),
                ty: frame.type_name(),
            });
        }
        drop(q);
        self.schedule();
        PushOutcome::Delivered
    }

    /// Same contract as [`Connection::push_forced`]: post-coalesce
    /// snapshots bypass the cap (bounded by one tick's frames).
    pub fn push_forced(
        self: &Arc<Self>,
        batch: Vec<Frame>,
        metrics: &ServerMetrics,
    ) -> PushOutcome {
        let mut q = self.lock_out(metrics);
        if self.is_dead() {
            return PushOutcome::Dead;
        }
        for frame in batch {
            q.frames.push_back(OutFrame {
                bytes: frame.encode(),
                tick: frame.is_tick_traffic(),
                ty: frame.type_name(),
            });
        }
        drop(q);
        self.schedule();
        PushOutcome::Delivered
    }
}

/// Cross-thread face of one event loop: its waker plus the two queues
/// other threads feed it.
struct LoopShared {
    waker: igern_reactor::Waker,
    /// Accepted connections handed over by the acceptor (loop 0).
    inject: Mutex<Vec<(u64, Stream)>>,
    /// Connections with freshly queued outbound frames (dedup'd via
    /// [`RConn::queued`]).
    flush: Mutex<Vec<Arc<RConn>>>,
}

/// Handle the [`Server`](crate::Server) keeps on the loop pool.
pub(crate) struct ReactorPool {
    loops: Vec<Arc<LoopShared>>,
    threads: Vec<JoinHandle<()>>,
    drain: Arc<AtomicBool>,
}

impl ReactorPool {
    /// Wake every loop (shutdown flag changes, etc.).
    pub fn wake_all(&self) {
        for l in &self.loops {
            l.waker.wake();
        }
    }

    /// Enter drain mode: loops flush remaining outbound queues under
    /// the `shutdown_drain` deadline, then exit. Called after the tick
    /// thread has run its final tick and requested graceful closes.
    pub fn begin_drain(&self) {
        self.drain.store(true, Ordering::Release);
        self.wake_all();
    }

    /// Join every loop thread (bounded by the drain deadline).
    pub fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Resolve the loop-thread count: explicit, or `min(4, cpus)`.
pub(crate) fn resolve_io_threads(cfg_threads: usize) -> usize {
    if cfg_threads > 0 {
        return cfg_threads;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(1)
}

/// Spawn the loop pool serving `listener`. The reactors are created
/// here (so their wakers exist before any cross-thread traffic) and
/// moved into their threads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn start_pool(
    listener: Listener,
    ingest: SyncSender<Ingest>,
    next_sid: Arc<AtomicU32>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
    metrics: ServerMetrics,
    registry: &MetricsRegistry,
) -> std::io::Result<ReactorPool> {
    let n = resolve_io_threads(cfg.io_threads);
    let rmetrics = ReactorMetrics::register(registry);
    let fd_soft = igern_reactor::fd_limit().map_or(0, |(soft, _)| soft);
    rmetrics.fd_limit.set(fd_soft as f64);

    // Backend override for tests/CI (`IGERN_REACTOR_BACKEND=poll`
    // exercises the portable fallback on Linux).
    let backend = std::env::var("IGERN_REACTOR_BACKEND")
        .ok()
        .and_then(|s| Backend::parse(&s))
        .unwrap_or_else(Backend::default_for_host);

    let mut reactors = Vec::with_capacity(n);
    let mut loops = Vec::with_capacity(n);
    for _ in 0..n {
        let r = Reactor::with_backend(backend)?;
        loops.push(Arc::new(LoopShared {
            waker: r.waker(),
            inject: Mutex::new(Vec::new()),
            flush: Mutex::new(Vec::new()),
        }));
        reactors.push(r);
    }
    let drain = Arc::new(AtomicBool::new(false));
    let next_conn = Arc::new(AtomicU64::new(1));

    let mut listener = Some(listener);
    let mut threads = Vec::with_capacity(n);
    for (i, reactor) in reactors.into_iter().enumerate() {
        let lp = IoLoop {
            index: i,
            reactor,
            listener: if i == 0 { listener.take() } else { None },
            listener_ext: None,
            next_conn: Arc::clone(&next_conn),
            loops: loops.clone(),
            ingest: ingest.clone(),
            next_sid: Arc::clone(&next_sid),
            shutdown: Arc::clone(&shutdown),
            drain: Arc::clone(&drain),
            cfg: cfg.clone(),
            metrics: metrics.clone(),
            rmetrics: rmetrics.clone(),
            dispatch_seconds: registry.histogram_labeled(
                "igern_server_reactor_dispatch_seconds",
                &[("loop", &i.to_string())],
                &LATENCY_BUCKETS_S,
            ),
            fd_soft,
            fd_warned: false,
            entries: Vec::new(),
            free: Vec::new(),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("igern-io-{i}"))
                .spawn(move || lp.run())
                .expect("spawn io loop thread"),
        );
    }
    Ok(ReactorPool {
        loops,
        threads,
        drain,
    })
}

/// Per-connection state owned by its event loop.
struct ConnEntry {
    conn: Arc<RConn>,
    /// Incremental frame decoder over a non-blocking stream clone.
    reader: FrameReader<Stream>,
    /// Kernel-pollable fd (TCP); `None` for the memory transport.
    fd: Option<i32>,
    /// External readiness source (memory transport); kept so the
    /// handle outlives the notify closures.
    #[allow(dead_code)]
    external: Option<ExternalHandle>,
    /// Memory transport: re-installed when toggling write interest.
    notify_read: Option<ReadyNotify>,
    notify_write: Option<ReadyNotify>,
    /// Write-notify currently installed (memory transport's EPOLLOUT).
    write_notify_on: bool,
    /// Interest currently registered for `fd`.
    cur_interest: Interest,
    /// HELLO handshake completed.
    greeted: bool,
    /// Ingest item that did not fit the bounded queue; blocks further
    /// reads until delivered (arrival order).
    parked: Option<Ingest>,
    /// No more reads: EOF, I/O error, or protocol close.
    read_done: bool,
    /// `Ingest::Closed` delivered (exactly-once contract).
    announced_closed: bool,
}

struct IoLoop {
    index: usize,
    reactor: Reactor,
    listener: Option<Listener>,
    /// Keeps the memory listener's accept-notify source alive.
    #[allow(dead_code)]
    listener_ext: Option<ExternalHandle>,
    next_conn: Arc<AtomicU64>,
    loops: Vec<Arc<LoopShared>>,
    ingest: SyncSender<Ingest>,
    next_sid: Arc<AtomicU32>,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    cfg: ServerConfig,
    metrics: ServerMetrics,
    rmetrics: ReactorMetrics,
    dispatch_seconds: Histogram,
    fd_soft: u64,
    fd_warned: bool,
    entries: Vec<Option<ConnEntry>>,
    free: Vec<usize>,
}

impl IoLoop {
    fn shared(&self) -> &Arc<LoopShared> {
        &self.loops[self.index]
    }

    fn run(mut self) {
        if let Some(listener) = &self.listener {
            match listener.raw_fd() {
                Some(fd) => {
                    if self
                        .reactor
                        .register(fd, Token(LISTENER_TOKEN), Interest::READABLE, Mode::Level)
                        .is_err()
                    {
                        eprintln!("reactor: listener registration failed; not accepting");
                    }
                }
                None => {
                    let ext = self.reactor.external(Token(LISTENER_TOKEN));
                    let cb = ext.clone();
                    listener.set_accept_notify(Some(Arc::new(move || cb.set_ready(true, false))));
                    self.listener_ext = Some(ext);
                }
            }
        }
        let mut events = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let timeout = if self.drain.load(Ordering::Acquire) {
                let dl =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + self.cfg.shutdown_drain);
                let now = Instant::now();
                if now >= dl || self.all_flushed() {
                    self.teardown_all();
                    return;
                }
                Some((dl - now).min(Duration::from_millis(50)))
            } else {
                // Wakes drive the loop; the cap only bounds how stale a
                // missed flag read can get.
                Some(Duration::from_millis(100))
            };
            events.clear();
            let woken = match self.reactor.poll(&mut events, timeout) {
                Ok(o) => o.woken,
                Err(_) => false,
            };
            let t0 = Instant::now();
            if !events.is_empty() || woken {
                self.rmetrics.events_per_wakeup.observe(events.len() as f64);
            }
            self.rmetrics.ready_queue_depth.set(events.len() as f64);
            self.drain_inject();
            self.drain_flush();
            for &ev in &events {
                if ev.token.0 == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                let slot = ev.token.0 as usize;
                if ev.timer {
                    self.visit_parked(slot);
                    continue;
                }
                if ev.writable {
                    self.flush_slot(slot);
                }
                if ev.readable {
                    self.visit_parked(slot);
                }
            }
            self.dispatch_seconds.observe_duration(t0.elapsed());
        }
    }

    // ------------------------------------------------------------ accept

    fn accept_ready(&mut self) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let stream = match self.listener.as_ref().map(|l| l.accept()) {
                Some(Ok(s)) => s,
                Some(Err(e)) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient accept failure (e.g. the peer already reset):
                // the pending slot was consumed, try the next one.
                Some(Err(_)) => continue,
                None => return,
            };
            let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
            self.metrics.connections_total.inc();
            self.warn_near_fd_limit();
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            if let (Some(bytes), Some(fd)) = (self.cfg.tcp_send_buffer, stream.raw_fd()) {
                let _ = igern_reactor::sys::set_send_buffer(fd, bytes as std::ffi::c_int);
            }
            let target = (id as usize) % self.loops.len();
            if target == self.index {
                self.install(id, stream);
            } else {
                self.loops[target]
                    .inject
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((id, stream));
                self.loops[target].waker.wake();
            }
        }
    }

    fn warn_near_fd_limit(&mut self) {
        if self.fd_warned || self.fd_soft == 0 {
            return;
        }
        // Active-connection gauge is maintained by the tick thread;
        // headroom covers the listener, wakeup fds, and WAL files.
        let active = self.metrics.connections_active.get();
        if active + 64.0 >= 0.9 * self.fd_soft as f64 {
            self.fd_warned = true;
            eprintln!(
                "reactor: {} active connections approaching RLIMIT_NOFILE soft limit {} — \
                 raise `ulimit -n` or expect accept failures",
                active as u64, self.fd_soft
            );
        }
    }

    fn drain_inject(&mut self) {
        loop {
            let batch: Vec<(u64, Stream)> = {
                let mut q = self
                    .shared()
                    .inject
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *q)
            };
            if batch.is_empty() {
                return;
            }
            for (id, stream) in batch {
                self.install(id, stream);
            }
        }
    }

    /// Create the connection state machine for an accepted stream and
    /// register it with the reactor. `Ingest::NewConn` is parked first,
    /// so no frame from this connection can reach the tick thread
    /// before the connection itself does.
    fn install(&mut self, id: u64, stream: Stream) {
        let (write_half, read_half) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(w), Ok(r)) => (w, r),
            _ => return, // fd duplication failed; drop the connection
        };
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.entries.push(None);
                self.entries.len() - 1
            }
        };
        let token = Token(slot as u64);
        // Register the READ half's fd: it lives in the entry's
        // FrameReader for the whole connection, so the kernel
        // registration never outlives its fd. (Clones share one open
        // file description; registering the short-lived original's fd
        // would leave poll(2) watching a closed descriptor.)
        let reg_fd = read_half.raw_fd();
        let conn = Arc::new(RConn {
            id,
            slot,
            out: Mutex::new(OutState {
                frames: VecDeque::new(),
                head_off: 0,
            }),
            dead: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            queued: AtomicBool::new(false),
            stream: write_half,
            home: Arc::clone(self.shared()),
        });
        let mut entry = ConnEntry {
            conn: Arc::clone(&conn),
            reader: FrameReader::new(read_half),
            fd: None,
            external: None,
            notify_read: None,
            notify_write: None,
            write_notify_on: false,
            cur_interest: Interest::NONE,
            greeted: false,
            parked: Some(Ingest::NewConn(ConnHandle::Reactor(conn))),
            read_done: false,
            announced_closed: false,
        };
        match reg_fd {
            Some(fd) => {
                // Registered with no read interest while NewConn is
                // parked; interest is restored once it is delivered.
                if self
                    .reactor
                    .register(fd, token, Interest::NONE, Mode::Level)
                    .is_err()
                {
                    self.free.push(slot);
                    return; // entry (and both stream halves) drop here
                }
                entry.fd = Some(fd);
            }
            None => {
                let ext = self.reactor.external(token);
                let rd = ext.clone();
                let read_cb: ReadyNotify = Arc::new(move || rd.set_ready(true, false));
                let wr = ext.clone();
                let write_cb: ReadyNotify = Arc::new(move || wr.set_ready(false, true));
                // Readable notify installed now (fires immediately if
                // the client already sent bytes); writable notify is
                // installed on demand, mirroring EPOLLOUT toggling.
                stream.set_notify(Some(Arc::clone(&read_cb)), None);
                entry.notify_read = Some(read_cb);
                entry.notify_write = Some(write_cb);
                entry.external = Some(ext);
            }
        }
        self.entries[slot] = Some(entry);
        // Deliver the parked NewConn (or arm the retry timer).
        self.visit_parked(slot);
    }

    // ----------------------------------------------------- reading side

    /// Entry point for readable/timer events: deliver any parked ingest
    /// item first, then continue reading.
    fn visit_parked(&mut self, slot: usize) {
        loop {
            let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if entry.conn.is_dead() {
                self.cleanup_slot(slot);
                return;
            }
            let Some(item) = entry.parked.take() else {
                self.read_slot(slot);
                return;
            };
            let was_closed = matches!(item, Ingest::Closed(_));
            match self.ingest.try_send(item) {
                Ok(()) => {
                    self.metrics.ingest_enqueued_total.inc();
                    let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                        return;
                    };
                    if was_closed {
                        entry.announced_closed = true;
                        self.update_interest(slot);
                        return;
                    }
                    self.update_interest(slot);
                    // Fall through: there may be more buffered input.
                }
                Err(TrySendError::Full(item)) => {
                    entry.parked = Some(item);
                    self.reactor
                        .set_timer(Token(slot as u64), Instant::now() + PARK_RETRY);
                    self.update_interest(slot);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Tick thread gone (shutdown): nothing more to say.
                    entry.read_done = true;
                    entry.announced_closed = true;
                    self.update_interest(slot);
                    return;
                }
            }
        }
    }

    /// Drive the frame reader until it goes idle, parking on ingest
    /// backpressure. Mirrors `conn::reader_loop` decision for decision.
    fn read_slot(&mut self, slot: usize) {
        loop {
            let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if entry.conn.is_dead() {
                self.cleanup_slot(slot);
                return;
            }
            if entry.read_done || entry.parked.is_some() {
                return;
            }
            match entry.reader.poll() {
                Ok(ReadOutcome::Idle) => return,
                Ok(ReadOutcome::Eof) | Err(FrameError::Io(_)) => {
                    self.finish_read(slot);
                    return;
                }
                Ok(ReadOutcome::Skipped(_)) => {
                    self.metrics.frames_skipped_total.inc();
                }
                Err(FrameError::Proto(e)) => {
                    self.metrics.protocol_errors_total.inc();
                    let msg = e.to_string();
                    let conn = Arc::clone(&entry.conn);
                    self.push_error(&conn, ErrorCode::Malformed, &msg);
                    conn.close_after_flush();
                    self.finish_read(slot);
                    return;
                }
                Ok(ReadOutcome::Frame(frame)) => {
                    if !self.handle_frame(slot, frame) {
                        return;
                    }
                }
            }
        }
    }

    fn push_error(&self, conn: &Arc<RConn>, code: ErrorCode, message: &str) {
        conn.push_control(
            Frame::Error {
                code,
                message: message.to_string(),
            },
            self.cfg.outbound_queue_frames,
            &self.metrics,
        );
    }

    /// Handle one decoded frame. Returns `false` when reading must stop
    /// (parked, protocol close, or the ingest channel is gone).
    fn handle_frame(&mut self, slot: usize, frame: Frame) -> bool {
        self.metrics.frame_in(frame.type_name());
        let entry = self.entries[slot]
            .as_mut()
            .expect("entry checked by caller");
        let conn = Arc::clone(&entry.conn);
        if !entry.greeted {
            match frame {
                Frame::Hello { version } if crate::proto::version_accepted(version) => {
                    entry.greeted = true;
                    // Echo the client's (accepted) version: the
                    // conversation proceeds at the older side's level.
                    conn.push_control(
                        Frame::HelloAck { version },
                        self.cfg.outbound_queue_frames,
                        &self.metrics,
                    );
                    return true;
                }
                Frame::Hello { version } => {
                    self.metrics.protocol_errors_total.inc();
                    self.push_error(
                        &conn,
                        ErrorCode::VersionMismatch,
                        &format!(
                            "server speaks versions {}..={PROTOCOL_VERSION}, client sent {version}",
                            crate::proto::MIN_PROTOCOL_VERSION
                        ),
                    );
                }
                _ => {
                    self.metrics.protocol_errors_total.inc();
                    self.push_error(&conn, ErrorCode::ExpectedHello, "first frame must be HELLO");
                }
            }
            conn.close_after_flush();
            self.finish_read(slot);
            return false;
        }
        let item = match frame {
            Frame::Ping { nonce } => {
                conn.push_control(
                    Frame::Pong { nonce },
                    self.cfg.outbound_queue_frames,
                    &self.metrics,
                );
                return true;
            }
            Frame::UpsertObject { id, kind, x, y } => Ingest::Upsert {
                conn: conn.id,
                id,
                kind,
                x,
                y,
            },
            Frame::RemoveObject { id } => Ingest::Remove { conn: conn.id, id },
            Frame::Subscribe {
                token,
                anchor,
                algo,
                mode,
            } => {
                // The sid is allocated here, but the SUBSCRIBED ack is
                // emitted by the tick thread at dequeue: a client that
                // has seen the ack is guaranteed part of the next tick
                // even under ingest backpressure, and the ack always
                // precedes any ERROR or deltas for the subscription.
                let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
                Ingest::Subscribe {
                    conn: conn.id,
                    sid,
                    token,
                    anchor,
                    algo,
                    mode,
                }
            }
            Frame::Unsubscribe { sid } => Ingest::Unsubscribe { conn: conn.id, sid },
            Frame::Step => Ingest::Step,
            Frame::Shutdown => Ingest::ShutdownRequested,
            _ => {
                self.metrics.protocol_errors_total.inc();
                self.push_error(
                    &conn,
                    ErrorCode::Malformed,
                    &format!("unexpected {} frame from client", frame.type_name()),
                );
                conn.close_after_flush();
                self.finish_read(slot);
                return false;
            }
        };
        match self.ingest.try_send(item) {
            Ok(()) => {
                self.metrics.ingest_enqueued_total.inc();
                true
            }
            Err(TrySendError::Full(item)) => {
                // Backpressure: park the item, pause reads, retry soon.
                let entry = self.entries[slot].as_mut().expect("entry exists");
                entry.parked = Some(item);
                self.reactor
                    .set_timer(Token(slot as u64), Instant::now() + PARK_RETRY);
                self.update_interest(slot);
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                let entry = self.entries[slot].as_mut().expect("entry exists");
                entry.read_done = true;
                entry.announced_closed = true;
                self.update_interest(slot);
                false
            }
        }
    }

    /// The receive side is finished (EOF / error / protocol close):
    /// announce `Ingest::Closed` exactly once (parking it under
    /// backpressure) and request a graceful flush, as the threaded
    /// reader does on exit.
    fn finish_read(&mut self, slot: usize) {
        let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        entry.read_done = true;
        let conn = Arc::clone(&entry.conn);
        if !entry.announced_closed && entry.parked.is_none() {
            match self.ingest.try_send(Ingest::Closed(conn.id)) {
                Ok(()) => {
                    self.metrics.ingest_enqueued_total.inc();
                    self.entries[slot]
                        .as_mut()
                        .expect("entry exists")
                        .announced_closed = true;
                }
                Err(TrySendError::Full(item)) => {
                    let entry = self.entries[slot].as_mut().expect("entry exists");
                    entry.parked = Some(item);
                    self.reactor
                        .set_timer(Token(slot as u64), Instant::now() + PARK_RETRY);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.entries[slot]
                        .as_mut()
                        .expect("entry exists")
                        .announced_closed = true;
                }
            }
        }
        if !conn.is_dead() {
            conn.close_after_flush();
        }
        self.update_interest(slot);
    }

    // ----------------------------------------------------- writing side

    fn drain_flush(&mut self) {
        loop {
            let batch: Vec<Arc<RConn>> = {
                let mut q = self
                    .shared()
                    .flush
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *q)
            };
            if batch.is_empty() {
                return;
            }
            for rc in batch {
                // Clear the dedup flag first: schedules racing this
                // flush re-queue the connection rather than being lost.
                rc.queued.store(false, Ordering::Release);
                let slot = rc.slot;
                let current = self
                    .entries
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|e| Arc::ptr_eq(&e.conn, &rc));
                if current {
                    self.flush_slot(slot);
                }
            }
        }
    }

    /// Flush the connection's outbound queue until empty or
    /// `WouldBlock`, resuming any partially written head frame.
    fn flush_slot(&mut self, slot: usize) {
        let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let conn = Arc::clone(&entry.conn);
        if conn.is_dead() {
            self.cleanup_slot(slot);
            return;
        }
        let mut killed = false;
        let mut blocked = false;
        {
            let mut q = conn.lock_out(&self.metrics);
            while let Some(head) = q.frames.front() {
                let (head_len, head_ty) = (head.bytes.len(), head.ty);
                let off = q.head_off;
                // Nonblocking write: returns immediately, so holding
                // the queue mutex across it is a bounded critical
                // section (the tick thread contends only briefly).
                match (&conn.stream).write(&head.bytes[off..]) {
                    Ok(n) => {
                        if off > 0 {
                            // This write continued a frame whose prefix
                            // left in an earlier, short write.
                            self.rmetrics.short_write_resumptions_total.inc();
                        }
                        q.head_off += n;
                        if q.head_off >= head_len {
                            self.metrics.frame_out(head_ty);
                            q.frames.pop_front();
                            q.head_off = 0;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        blocked = true;
                        break;
                    }
                    Err(_) => {
                        killed = true;
                        break;
                    }
                }
            }
        }
        if killed {
            conn.kill();
            self.cleanup_slot(slot);
            return;
        }
        if blocked {
            self.set_want_write(slot, true);
            return;
        }
        self.set_want_write(slot, false);
        // Queue fully drained: complete a graceful close.
        if conn.is_closing() {
            let _ = conn.stream.shutdown(Shutdown::Write);
            if self.entries[slot]
                .as_ref()
                .is_some_and(|e| e.read_done && e.announced_closed)
            {
                // Nothing left in either direction.
                self.cleanup_slot(slot);
            }
        }
    }

    // ------------------------------------------------- interest plumbing

    /// Reconcile kernel/transport readiness interest with the state
    /// machine: read interest only while reading is allowed, write
    /// interest only while the queue is blocked on the peer.
    fn set_want_write(&mut self, slot: usize, want: bool) {
        let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if entry.fd.is_none() {
            // Memory transport: the writable notify is install-on-demand
            // (it fires immediately if space is already available).
            if want != entry.write_notify_on {
                entry.write_notify_on = want;
                let read_cb = entry.notify_read.clone();
                let write_cb = if want {
                    entry.notify_write.clone()
                } else {
                    None
                };
                // Reinstall via the write handle; notify slots live on
                // the shared pipes, any clone reaches them.
                entry.conn.stream.set_notify(read_cb, write_cb);
            }
            return;
        }
        self.reconcile_interest(slot, Some(want));
    }

    fn update_interest(&mut self, slot: usize) {
        self.reconcile_interest(slot, None);
    }

    fn reconcile_interest(&mut self, slot: usize, want_write: Option<bool>) {
        let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let Some(fd) = entry.fd else { return };
        let reading = !entry.read_done && entry.parked.is_none() && !entry.conn.is_dead();
        let writing = want_write.unwrap_or(entry.cur_interest.writable());
        let desired = match (reading, writing) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            (false, false) => Interest::NONE,
        };
        if desired != entry.cur_interest
            && self
                .reactor
                .reregister(fd, Token(slot as u64), desired, Mode::Level)
                .is_ok()
        {
            entry.cur_interest = desired;
        }
    }

    // ----------------------------------------------------------- teardown

    /// Remove a dead connection once its close is announced; until
    /// then keep the entry so the parked `Ingest::Closed` retries.
    fn cleanup_slot(&mut self, slot: usize) {
        let Some(entry) = self.entries.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if !entry.announced_closed {
            entry.read_done = true;
            let id = entry.conn.id;
            let parked_closed = matches!(entry.parked, Some(Ingest::Closed(_)));
            if !parked_closed {
                match self.ingest.try_send(Ingest::Closed(id)) {
                    Ok(()) => {
                        self.metrics.ingest_enqueued_total.inc();
                        self.entries[slot]
                            .as_mut()
                            .expect("entry exists")
                            .announced_closed = true;
                    }
                    Err(TrySendError::Full(item)) => {
                        let entry = self.entries[slot].as_mut().expect("entry exists");
                        // Replace whatever was parked: the connection is
                        // dead, only the close announcement matters now.
                        entry.parked = Some(item);
                        self.reactor
                            .set_timer(Token(slot as u64), Instant::now() + PARK_RETRY);
                        return;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.entries[slot]
                            .as_mut()
                            .expect("entry exists")
                            .announced_closed = true;
                    }
                }
            } else {
                return; // already parked; the timer will deliver it
            }
        }
        let entry = self.entries[slot].take().expect("entry exists");
        self.free.push(slot);
        self.reactor.cancel_timer(Token(slot as u64));
        if let Some(fd) = entry.fd {
            let _ = self.reactor.deregister(fd);
        } else {
            entry.conn.stream.set_notify(None, None);
        }
        let _ = entry.conn.stream.shutdown(Shutdown::Both);
    }

    /// Every outbound queue is empty (or its connection is dead).
    fn all_flushed(&self) -> bool {
        self.entries
            .iter()
            .flatten()
            .all(|e| e.conn.is_dead() || e.conn.lock_out(&self.metrics).frames.is_empty())
    }

    /// Drop everything: deadline reached or queues drained.
    fn teardown_all(&mut self) {
        for slot in 0..self.entries.len() {
            if let Some(entry) = self.entries[slot].take() {
                let _ = entry.conn.stream.shutdown(Shutdown::Both);
                entry.conn.dead.store(true, Ordering::Release);
                if let Some(fd) = entry.fd {
                    let _ = self.reactor.deregister(fd);
                } else {
                    entry.conn.stream.set_notify(None, None);
                }
            }
        }
        if let Some(l) = &self.listener {
            l.set_accept_notify(None);
        }
    }
}
