//! The tick thread: single owner of the engine and all subscription
//! state.
//!
//! Every mutation flows through one bounded channel in arrival order
//! and is applied to the store immediately (the dirty-cell journal
//! accumulates until the tick's `step(&[])` drains it, so skip routing
//! stays sound — see `Processor::apply_update`). Ticks fire on a timer
//! (`tick_ms > 0`) or on explicit `STEP` frames (manual mode, the
//! deterministic test path). Each tick diffs every subscription's
//! answer against the previous tick and pushes only the delta; the
//! first push after subscribe — and after a slow-consumer coalesce —
//! is a full snapshot instead.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_engine::{EngineError, TickRunner};
use igern_geom::Point;
use igern_grid::ObjectId;
use igern_wal::{
    answer_digest, prune_snapshots, remove_all_segments, SnapshotData, SubEntry, WalWriter,
};

use crate::conn::PushOutcome;
use crate::proto::{ErrorCode, Frame};
use crate::rio::ConnHandle;
use crate::{ServerConfig, ServerMetrics, TickMode};

/// Connection-id sentinel for *orphan* subscriptions restored by WAL
/// recovery: they keep evaluating every tick but belong to no live
/// connection (the acceptor allocates real ids from 1). A client
/// re-subscribing with the same `(anchor, algo)` claims the orphan
/// instead of registering a second identical query.
const ORPHAN_CONN: u64 = 0;

/// One item of the ingest queue, in arrival order.
pub(crate) enum Ingest {
    /// A new accepted connection (from the acceptor thread or an I/O
    /// event loop, depending on the backend).
    NewConn(ConnHandle),
    /// `UPSERT_OBJECT`.
    Upsert {
        conn: u64,
        id: u32,
        kind: ObjectKind,
        x: f64,
        y: f64,
    },
    /// `REMOVE_OBJECT`.
    Remove { conn: u64, id: u32 },
    /// `SUBSCRIBE_QUERY`; `sid` was allocated by the I/O side, but the
    /// SUBSCRIBED ack is emitted here at dequeue — before validation —
    /// so an acked client is guaranteed part of the next tick and the
    /// ack always precedes any ERROR or deltas for the subscription.
    Subscribe {
        conn: u64,
        sid: u32,
        token: u32,
        anchor: u32,
        algo: Algorithm,
        mode: DistanceMode,
    },
    /// `UNSUBSCRIBE`.
    Unsubscribe { conn: u64, sid: u32 },
    /// `STEP` — tick right now (whatever the tick mode).
    Step,
    /// A client sent `SHUTDOWN`, or the local handle asked for it.
    ShutdownRequested,
    /// The reader thread exited; tear the connection down.
    Closed(u64),
    /// Test hook ([`crate::Server::debug_desync_sub`]): drop a sid from
    /// the sub table without touching its connection's sub list,
    /// forcing the index desync the tick loop degrades around.
    DebugDropSub(u32),
}

/// Tick-thread record of one live subscription.
struct Sub {
    conn: u64,
    /// Engine query slot.
    qid: usize,
    anchor: ObjectId,
    /// Query algorithm (orphan-claim matching and WAL snapshots).
    algo: Algorithm,
    /// Distance mode (part of the query identity alongside `algo`).
    mode: DistanceMode,
    /// Answer pushed at the previous tick (sorted by id).
    prev: Vec<ObjectId>,
    /// Next push must be a full snapshot (fresh subscription, or the
    /// delta chain was broken by a coalesce).
    needs_snapshot: bool,
}

struct ConnState {
    conn: ConnHandle,
    /// Subscriptions owned by this connection, in sid order.
    subs: Vec<u32>,
}

pub(crate) struct TickThread {
    runner: TickRunner,
    cfg: ServerConfig,
    metrics: ServerMetrics,
    shutdown: Arc<AtomicBool>,
    /// Set by [`crate::Server::crash`]: exit without the final tick,
    /// WAL flush, or clean snapshot (simulated `kill -9`).
    crashed: Arc<AtomicBool>,
    conns: BTreeMap<u64, ConnState>,
    subs: BTreeMap<u32, Sub>,
    /// Mutations applied since the last tick (batch-size metric).
    pending_mutations: u64,
    /// Durability sink (None without `--wal-dir`).
    wal: Option<WalWriter>,
    /// Logical-tick offset: the runner restarts at 0 after recovery,
    /// so every wire-visible tick is `tick_base + runner.tick()`.
    tick_base: u64,
    /// Subscription-id allocator, shared with the reader threads;
    /// snapshotted so recovery never reuses a sid.
    next_sid: Arc<AtomicU32>,
}

fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// Durable-mode state handed to the tick thread at start: the log
/// writer plus whatever recovery restored.
pub(crate) struct DurableState {
    pub wal: WalWriter,
    /// Subscriptions restored by recovery; they become orphans.
    pub recovered_subs: Vec<igern_wal::RecoveredSub>,
    /// Logical tick the recovered runner stands at minus its internal
    /// tick counter (wire ticks continue across the restart).
    pub tick_base: u64,
}

impl TickThread {
    pub fn new(
        runner: TickRunner,
        cfg: ServerConfig,
        metrics: ServerMetrics,
        shutdown: Arc<AtomicBool>,
        crashed: Arc<AtomicBool>,
        durable: Option<DurableState>,
        next_sid: Arc<AtomicU32>,
    ) -> Self {
        let (wal, tick_base, subs) = match durable {
            None => (None, 0, BTreeMap::new()),
            Some(d) => {
                let mut subs = BTreeMap::new();
                for r in d.recovered_subs {
                    subs.insert(
                        r.sid,
                        Sub {
                            conn: ORPHAN_CONN,
                            qid: r.qid,
                            anchor: r.anchor,
                            algo: r.algo,
                            mode: r.mode,
                            prev: Vec::new(),
                            needs_snapshot: true,
                        },
                    );
                }
                (Some(d.wal), d.tick_base, subs)
            }
        };
        let t = TickThread {
            runner,
            cfg,
            metrics,
            shutdown,
            crashed,
            conns: BTreeMap::new(),
            subs,
            pending_mutations: 0,
            wal,
            tick_base,
            next_sid,
        };
        t.metrics.subscriptions_active.set(t.subs.len() as f64);
        t
    }

    /// Main loop: drain the ingest queue, tick on schedule (or on
    /// `STEP`), and on shutdown run one final tick so every applied
    /// mutation is evaluated and pushed before connections close.
    pub fn run(mut self, rx: Receiver<Ingest>) {
        // A durable server snapshots its boot state before serving: the
        // store it was handed (a trace preload, a recovered state) never
        // went through the logged ingest path, so a crash before the
        // first periodic snapshot would otherwise replay the log onto an
        // empty store and silently drop the preloaded population.
        if self.wal.is_some() {
            let tick = self.tick_base + self.runner.tick();
            self.write_wal_snapshot(tick);
        }
        let mut next_deadline = match self.cfg.tick_mode {
            TickMode::Manual => None,
            TickMode::Every(period) => Some(Instant::now() + period),
        };
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break; // local handle asked to stop
            }
            // Manual mode still polls so a local shutdown() that found
            // the ingest queue full is noticed via the flag above.
            let wait = match next_deadline {
                None => Duration::from_millis(100),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        self.tick();
                        if let TickMode::Every(period) = self.cfg.tick_mode {
                            next_deadline = Some(now + period);
                        }
                        continue;
                    }
                    deadline - now
                }
            };
            let item = match rx.recv_timeout(wait) {
                Ok(item) => item,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            match item {
                Ingest::NewConn(conn) => {
                    self.metrics.ingest_dequeued_total.inc();
                    self.conns.insert(
                        conn.id(),
                        ConnState {
                            conn,
                            subs: Vec::new(),
                        },
                    );
                    self.metrics.connections_active.set(self.conns.len() as f64);
                }
                Ingest::Closed(id) => {
                    self.metrics.ingest_dequeued_total.inc();
                    self.drop_conn(id);
                }
                Ingest::Step => {
                    self.metrics.ingest_dequeued_total.inc();
                    self.tick();
                    if let TickMode::Every(period) = self.cfg.tick_mode {
                        next_deadline = Some(Instant::now() + period);
                    }
                }
                Ingest::ShutdownRequested => {
                    self.metrics.ingest_dequeued_total.inc();
                    break;
                }
                Ingest::DebugDropSub(sid) => {
                    self.metrics.ingest_dequeued_total.inc();
                    // Deliberately skips the connection's sub list and
                    // the engine slot: the next tick must hit the
                    // dangling sid and degrade instead of panicking.
                    self.subs.remove(&sid);
                }
                other => {
                    self.metrics.ingest_dequeued_total.inc();
                    self.apply(other);
                }
            }
        }
        // Graceful shutdown: evaluate and push whatever was ingested,
        // then flush and close every connection.
        self.shutdown.store(true, Ordering::Release);
        if self.crashed.load(Ordering::Acquire) {
            // Simulated `kill -9`: no final tick, no flush, no clean
            // snapshot — the next boot must recover from whatever
            // already reached the log.
            for cs in self.conns.values() {
                cs.conn.close_after_flush();
            }
            return;
        }
        self.tick();
        if self.wal.is_some() {
            // Satellite durability guarantee: a graceful exit leaves a
            // snapshot covering the whole log and zero segments to
            // replay, so restart cost is one snapshot load.
            if let Some(w) = self.wal.as_mut() {
                let _ = w.sync();
            }
            let tick = self.tick_base + self.runner.tick();
            self.write_wal_snapshot(tick);
            if let Some(opts) = &self.cfg.wal {
                let _ = remove_all_segments(&opts.dir);
            }
        }
        for cs in self.conns.values() {
            cs.conn.close_after_flush();
        }
    }

    /// Append one admitted mutation to the log (no-op without WAL).
    fn wal_append(&mut self, frame: &Frame) {
        if let Some(w) = self.wal.as_mut() {
            match w.append(frame) {
                Ok(_) => self.metrics.wal_records_total.inc(),
                Err(e) => {
                    // Durability degrades; availability does not. The
                    // error is counted and the server keeps serving.
                    self.metrics.wal_errors_total.inc();
                    eprintln!("wal: append failed: {e}");
                }
            }
        }
    }

    /// Write a compacted snapshot at `tick`, then reclaim covered
    /// segments and prune stale snapshots (no-op without WAL).
    fn write_wal_snapshot(&mut self, tick: u64) {
        let Some(w) = self.wal.as_mut() else { return };
        let covered_seq = w.next_seq();
        let store = self.runner.store();
        let data = SnapshotData {
            tick,
            covered_seq,
            next_sid: self.next_sid.load(Ordering::Relaxed),
            space: *store.space(),
            grid: store.all().cells_per_side(),
            objects: store
                .all()
                .iter()
                .map(|(id, p)| (id.0, store.kind(id), p.x, p.y))
                .collect(),
            subs: self
                .subs
                .iter()
                .map(|(&sid, s)| SubEntry {
                    sid,
                    anchor: s.anchor.0,
                    algo: s.algo,
                    mode: s.mode,
                    answer_digest: answer_digest(self.runner.answer(s.qid)),
                })
                .collect(),
        };
        // A snapshot needs the durability config for its directory; a
        // writer without one (snapshot requested with durability off)
        // is a counted no-op, not a tick-thread panic.
        let Some(opts) = self.cfg.wal.as_ref() else {
            self.metrics.wal_snapshots_skipped_total.inc();
            return;
        };
        let dir = opts.dir.clone();
        match igern_wal::write_snapshot(&dir, &data) {
            Ok(_) => {
                self.metrics.wal_snapshots_total.inc();
                // Keep the fallback snapshot recovery would use if the
                // newest one is damaged, drop anything older.
                let _ = w.reclaim_covered(covered_seq);
                let _ = prune_snapshots(&dir, 2);
            }
            Err(e) => {
                self.metrics.wal_errors_total.inc();
                eprintln!("wal: snapshot failed: {e}");
            }
        }
    }

    /// Apply one mutating command immediately, in arrival order.
    fn apply(&mut self, item: Ingest) {
        match item {
            Ingest::Upsert {
                conn,
                id,
                kind,
                x,
                y,
            } => {
                let pos = Point::new(x, y);
                if !self.cfg.space.contains(pos) {
                    self.reject(
                        conn,
                        ErrorCode::OutOfBounds,
                        &format!("object {id} position ({x}, {y}) outside the data space"),
                    );
                    return;
                }
                let oid = ObjectId(id);
                if self.runner.store().position(oid).is_some() {
                    if self.runner.store().kind(oid) != kind {
                        self.reject(
                            conn,
                            ErrorCode::KindMismatch,
                            &format!("object {id} already exists with a different kind"),
                        );
                        return;
                    }
                    self.runner.apply_update(oid, pos);
                } else {
                    self.runner.insert_object(oid, kind, pos);
                }
                self.pending_mutations += 1;
                self.wal_append(&Frame::UpsertObject { id, kind, x, y });
            }
            Ingest::Remove { conn, id } => {
                let oid = ObjectId(id);
                if self.subs.values().any(|s| s.anchor == oid) {
                    self.reject(
                        conn,
                        ErrorCode::AnchorInUse,
                        &format!("object {id} anchors a live subscription"),
                    );
                    return;
                }
                if self.runner.remove_object(oid).is_none() {
                    self.reject(conn, ErrorCode::UnknownObject, &format!("no object {id}"));
                    return;
                }
                self.pending_mutations += 1;
                self.wal_append(&Frame::RemoveObject { id });
            }
            Ingest::Subscribe {
                conn,
                sid,
                token,
                anchor,
                algo,
                mode,
            } => {
                // Ack first: the subscription is now owned by this
                // thread, so SUBSCRIBED lands before any ERROR below
                // and before the tick's deltas.
                if let Some(cs) = self.conns.get(&conn) {
                    cs.conn.push_control(
                        Frame::Subscribed { token, sid },
                        self.cfg.outbound_queue_frames,
                        &self.metrics,
                    );
                }
                // A recovered orphan with the same query identity is
                // claimed instead of registering a duplicate: the
                // existing engine slot (and its answer) transfers to
                // the new sid, logged as an unsubscribe + subscribe.
                let claim = self
                    .subs
                    .iter()
                    .find(|(_, s)| {
                        s.conn == ORPHAN_CONN
                            && s.anchor == ObjectId(anchor)
                            && s.algo == algo
                            && s.mode == mode
                    })
                    .map(|(&old_sid, _)| old_sid);
                if let Some(old_sid) = claim {
                    if let Some(mut sub) = self.subs.remove(&old_sid) {
                        sub.conn = conn;
                        sub.needs_snapshot = true;
                        sub.prev = Vec::new();
                        self.subs.insert(sid, sub);
                        if let Some(cs) = self.conns.get_mut(&conn) {
                            cs.subs.push(sid);
                        }
                        self.wal_append(&Frame::Unsubscribe { sid: old_sid });
                        self.wal_append(&Frame::Subscribe {
                            token: sid,
                            anchor,
                            algo,
                            mode,
                        });
                        self.metrics
                            .subscriptions_active
                            .set(self.subs.len() as f64);
                        return;
                    }
                    // The claim scan and the removal disagree (index
                    // desync): count it and fall through to a fresh
                    // registration instead of panicking.
                    self.metrics.sub_desync_total.inc();
                }
                match self.runner.add_query_in(ObjectId(anchor), algo, mode) {
                    Ok(qid) => {
                        self.subs.insert(
                            sid,
                            Sub {
                                conn,
                                qid,
                                anchor: ObjectId(anchor),
                                algo,
                                mode,
                                prev: Vec::new(),
                                needs_snapshot: true,
                            },
                        );
                        if let Some(cs) = self.conns.get_mut(&conn) {
                            cs.subs.push(sid);
                        }
                        // Logged with the assigned sid in the token
                        // field, so replay restores the same sid.
                        self.wal_append(&Frame::Subscribe {
                            token: sid,
                            anchor,
                            algo,
                            mode,
                        });
                        self.metrics
                            .subscriptions_active
                            .set(self.subs.len() as f64);
                    }
                    Err(e) => {
                        let code = match e {
                            EngineError::UnknownObject(_) => ErrorCode::UnknownObject,
                            EngineError::NotKindA(_) => ErrorCode::NotKindA,
                            EngineError::ZeroK => ErrorCode::ZeroK,
                            EngineError::NoNetwork => ErrorCode::NoNetwork,
                        };
                        self.reject(conn, code, &format!("subscription {sid} rejected: {e}"));
                    }
                }
            }
            Ingest::Unsubscribe { conn, sid } => {
                let owned = self.subs.get(&sid).is_some_and(|s| s.conn == conn);
                if !owned {
                    self.reject(
                        conn,
                        ErrorCode::UnknownSubscription,
                        &format!("subscription {sid} is not owned by this connection"),
                    );
                    return;
                }
                let Some(sub) = self.subs.remove(&sid) else {
                    // Ownership check and removal disagree (index
                    // desync): drop the stale sid from the connection
                    // and keep serving.
                    self.metrics.sub_desync_total.inc();
                    if let Some(cs) = self.conns.get_mut(&conn) {
                        cs.subs.retain(|&s| s != sid);
                    }
                    self.metrics
                        .subscriptions_active
                        .set(self.subs.len() as f64);
                    return;
                };
                self.runner.remove_query(sub.qid);
                self.wal_append(&Frame::Unsubscribe { sid });
                if let Some(cs) = self.conns.get_mut(&conn) {
                    cs.subs.retain(|&s| s != sid);
                    cs.conn.push_control(
                        Frame::Unsubscribed { sid },
                        self.cfg.outbound_queue_frames,
                        &self.metrics,
                    );
                }
                self.metrics
                    .subscriptions_active
                    .set(self.subs.len() as f64);
            }
            _ => unreachable!("non-mutating items handled in run()"),
        }
    }

    /// Push an `ERROR` frame at the offending connection. Semantic
    /// rejections keep the connection alive.
    fn reject(&self, conn: u64, code: ErrorCode, message: &str) {
        self.metrics.protocol_errors_total.inc();
        if let Some(cs) = self.conns.get(&conn) {
            cs.conn.push_control(
                Frame::Error {
                    code,
                    message: message.to_string(),
                },
                self.cfg.outbound_queue_frames,
                &self.metrics,
            );
        }
    }

    /// Tear down a closed connection: every subscription it owned is
    /// removed from the engine. Queued frames (a final ERROR, say) are
    /// flushed first — `kill()` here would race the writer and eat them.
    fn drop_conn(&mut self, id: u64) {
        if let Some(cs) = self.conns.remove(&id) {
            for sid in cs.subs {
                if let Some(sub) = self.subs.remove(&sid) {
                    self.runner.remove_query(sub.qid);
                    // A dead connection's queries are gone for good:
                    // log the removal or recovery would resurrect them.
                    self.wal_append(&Frame::Unsubscribe { sid });
                }
            }
            cs.conn.close_after_flush();
        }
        self.metrics.connections_active.set(self.conns.len() as f64);
        self.metrics
            .subscriptions_active
            .set(self.subs.len() as f64);
    }

    /// One tick: evaluate the accumulated batch, diff every
    /// subscription, push deltas (or snapshots where the chain broke),
    /// and close with a `TICK_END` per subscribed connection.
    fn tick(&mut self) {
        let t0 = Instant::now();
        // Simulation injection point: the runner fires `on_tick` /
        // desyncs itself inside `step`; `on_server_tick` covers the
        // serving layer (e.g. stalling the tick thread while readers
        // keep ingesting).
        if let Some(h) = &self.cfg.sim_hooks {
            h.on_server_tick(self.runner.tick() + 1);
        }
        self.runner.step(&[]);
        self.metrics
            .batch_size
            .observe(self.pending_mutations as f64);
        self.pending_mutations = 0;
        // Wire-visible tick numbers continue across recovery: the
        // rebuilt runner counts from zero again, `tick_base` bridges.
        let tick = self.tick_base + self.runner.tick();
        let stamp_nanos = now_nanos();
        // Durability barrier: the tick boundary (and, per fsync
        // policy, everything before it) is on disk before any client
        // sees this tick's deltas — a crash after a push can never
        // lose state a client already observed.
        if let Some(w) = self.wal.as_mut() {
            match w.tick_boundary(tick, stamp_nanos) {
                Ok(_) => self.metrics.wal_records_total.inc(),
                Err(e) => {
                    self.metrics.wal_errors_total.inc();
                    eprintln!("wal: tick boundary append failed: {e}");
                }
            }
        }
        let snapshot_every = self.cfg.wal.as_ref().map_or(0, |o| o.snapshot_every);
        if self.wal.is_some() && snapshot_every > 0 && tick.is_multiple_of(snapshot_every) {
            self.write_wal_snapshot(tick);
        }
        let mut dead = Vec::new();
        for (&conn_id, cs) in &mut self.conns {
            if cs.subs.is_empty() {
                continue;
            }
            if cs.conn.is_dead() {
                dead.push(conn_id);
                continue;
            }
            let mut batch = Vec::new();
            // Sids the sub table no longer knows (index desync): the
            // stale entries are dropped below and the tick completes.
            let mut stale: Vec<u32> = Vec::new();
            for &sid in &cs.subs {
                let Some(sub) = self.subs.get_mut(&sid) else {
                    self.metrics.sub_desync_total.inc();
                    stale.push(sid);
                    continue;
                };
                let answer = self.runner.answer(sub.qid);
                if sub.needs_snapshot {
                    batch.push(Frame::TickDelta {
                        tick,
                        stamp_nanos,
                        sid,
                        snapshot: true,
                        adds: answer.iter().map(|o| o.0).collect(),
                        removes: Vec::new(),
                    });
                } else {
                    let (adds, removes) = diff_sorted(&sub.prev, answer);
                    if !adds.is_empty() || !removes.is_empty() {
                        batch.push(Frame::TickDelta {
                            tick,
                            stamp_nanos,
                            sid,
                            snapshot: false,
                            adds,
                            removes,
                        });
                    }
                }
                sub.needs_snapshot = false;
                sub.prev = answer.to_vec();
            }
            if !stale.is_empty() {
                cs.subs.retain(|s| !stale.contains(s));
            }
            batch.push(Frame::TickEnd { tick, stamp_nanos });
            match cs.conn.push_tick_batch(
                batch,
                self.cfg.outbound_queue_frames,
                self.cfg.slow_consumer,
                &self.metrics,
            ) {
                PushOutcome::Delivered => {}
                PushOutcome::Dead => dead.push(conn_id),
                PushOutcome::NeedSnapshot => {
                    // The queue shed all tick traffic, including any of
                    // this tick's frames: restart the conversation with
                    // full snapshots for every sub on the connection.
                    let snap: Vec<Frame> = cs
                        .subs
                        .iter()
                        .filter_map(|&sid| {
                            // The delta loop above already purged stale
                            // sids this tick; a race is still counted
                            // and skipped rather than panicking.
                            let Some(sub) = self.subs.get_mut(&sid) else {
                                self.metrics.sub_desync_total.inc();
                                return None;
                            };
                            sub.needs_snapshot = false;
                            Some(Frame::TickDelta {
                                tick,
                                stamp_nanos,
                                sid,
                                snapshot: true,
                                adds: sub.prev.iter().map(|o| o.0).collect(),
                                removes: Vec::new(),
                            })
                        })
                        .chain(std::iter::once(Frame::TickEnd { tick, stamp_nanos }))
                        .collect();
                    if cs.conn.push_forced(snap, &self.metrics) == PushOutcome::Dead {
                        dead.push(conn_id);
                    }
                }
            }
        }
        for id in dead {
            self.drop_conn(id);
        }
        self.metrics
            .tick_push_seconds
            .observe_duration(t0.elapsed());
        self.metrics.ingest_queue_depth.set(
            (self.metrics.ingest_enqueued_total.get() as f64)
                - (self.metrics.ingest_dequeued_total.get() as f64),
        );
    }
}

/// Sorted-merge diff: `(adds, removes)` turning `prev` into `cur`.
fn diff_sorted(prev: &[ObjectId], cur: &[ObjectId]) -> (Vec<u32>, Vec<u32>) {
    let (mut adds, mut removes) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < prev.len() || j < cur.len() {
        match (prev.get(i), cur.get(j)) {
            (Some(p), Some(c)) if p == c => {
                i += 1;
                j += 1;
            }
            (Some(p), Some(c)) if p < c => {
                removes.push(p.0);
                i += 1;
            }
            (Some(_), Some(c)) => {
                adds.push(c.0);
                j += 1;
            }
            (Some(p), None) => {
                removes.push(p.0);
                i += 1;
            }
            (None, Some(c)) => {
                adds.push(c.0);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (adds, removes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ObjectId> {
        v.iter().map(|&i| ObjectId(i)).collect()
    }

    #[test]
    fn sorted_diff_covers_all_shapes() {
        assert_eq!(diff_sorted(&[], &[]), (vec![], vec![]));
        assert_eq!(diff_sorted(&[], &ids(&[1, 2])), (vec![1, 2], vec![]));
        assert_eq!(diff_sorted(&ids(&[1, 2]), &[]), (vec![], vec![1, 2]));
        assert_eq!(
            diff_sorted(&ids(&[1, 3, 5]), &ids(&[1, 4, 5, 9])),
            (vec![4, 9], vec![3])
        );
        assert_eq!(diff_sorted(&ids(&[7]), &ids(&[7])), (vec![], vec![]));
    }
}
