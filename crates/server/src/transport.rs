//! Transport abstraction: real TCP sockets or an in-process duplex pipe.
//!
//! The server core (connection threads, tick thread, client) is written
//! against [`Stream`] / [`Listener`], concrete enums over `TcpStream` /
//! `TcpListener` and the in-memory [`MemStream`] / [`MemListener`]. The
//! memory transport exists for the deterministic simulation harness
//! (`igern-sim`): it lets a whole server — acceptor, reader/writer
//! threads, tick thread — run against clients in the same process with
//! no ports, while preserving the socket semantics the server relies on:
//!
//! * **bounded buffering** — each direction is a capacity-limited byte
//!   queue, so a stalled consumer eventually blocks the producer and the
//!   slow-consumer machinery fires exactly as it would on TCP;
//! * **timeouts** — reads past the read timeout fail with `WouldBlock`
//!   (what [`FrameReader`](crate::proto::FrameReader) treats as
//!   [`Idle`](crate::proto::ReadOutcome::Idle)); writes past the write
//!   timeout fail with `TimedOut` (what the writer loop treats as a dead
//!   consumer);
//! * **half-close** — `shutdown(Write)` lets the peer drain buffered
//!   bytes and then observe EOF, which is how graceful close works on
//!   sockets.
//!
//! The memory pipe additionally supports a **write tap** — a scripted
//! transformation of each written chunk — which is how the simulation
//! harness injects dropped, duplicated, truncated, and reordered frames
//! between the server and a victim client without touching protocol
//! code. Every server write is one whole encoded frame (`write_all` of
//! `Frame::encode`), so per-chunk taps are per-frame taps.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Transformation applied to each chunk written into a [`MemStream`]
/// before it is buffered: the returned chunks are delivered instead
/// (empty = drop, two copies = duplicate, a held-back chunk emitted
/// later = reorder). Called on the writer's thread, in write order.
pub type WriteTap = Box<dyn FnMut(&[u8]) -> Vec<Vec<u8>> + Send>;

/// Readiness callback installed on a memory pipe or accept queue so an
/// event loop can be prodded without polling. Called **after** the pipe
/// mutex is released (so the callback may itself take locks), possibly
/// spuriously, from whichever thread caused the transition.
pub type ReadyNotify = Arc<dyn Fn() + Send + Sync>;

/// Default per-direction buffer capacity of a memory pipe (bytes).
pub const MEM_PIPE_CAPACITY: usize = 1 << 16;

/// One direction of a duplex memory pipe: a bounded byte queue with
/// blocking reads/writes, timeouts, and close flags for each end.
struct Pipe {
    inner: Mutex<PipeState>,
    /// Signalled when bytes (or EOF) become available to the reader.
    readable: Condvar,
    /// Signalled when space (or reader close) becomes visible to the
    /// writer.
    writable: Condvar,
    capacity: usize,
}

struct PipeState {
    buf: VecDeque<u8>,
    /// The writing end is gone: drained reads return EOF.
    tx_closed: bool,
    /// The reading end is gone: writes fail with `BrokenPipe`.
    rx_closed: bool,
    /// Scripted fault injection on this direction's writes.
    tap: Option<WriteTap>,
    /// Fired (post-unlock) whenever bytes or EOF become readable.
    notify_readable: Option<ReadyNotify>,
    /// Fired (post-unlock) whenever space or reader-close becomes
    /// visible to the writer.
    notify_writable: Option<ReadyNotify>,
}

/// Clone the readable-notify iff any bytes were buffered (`off > 0`).
fn wrote(st: &PipeState, off: usize) -> Option<ReadyNotify> {
    if off > 0 {
        st.notify_readable.clone()
    } else {
        None
    }
}

impl Pipe {
    fn new(capacity: usize) -> Self {
        Pipe {
            inner: Mutex::new(PipeState {
                buf: VecDeque::new(),
                tx_closed: false,
                rx_closed: false,
                tap: None,
                notify_readable: None,
                notify_writable: None,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    fn close_tx(&self) {
        let (cb_r, cb_w) = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.tx_closed = true;
            (st.notify_readable.clone(), st.notify_writable.clone())
        };
        self.readable.notify_all();
        self.writable.notify_all();
        if let Some(cb) = cb_r {
            cb(); // EOF is observed through the read path
        }
        if let Some(cb) = cb_w {
            cb(); // writes now fail fast — let the flusher find out
        }
    }

    fn close_rx(&self) {
        let (cb_r, cb_w) = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.rx_closed = true;
            (st.notify_readable.clone(), st.notify_writable.clone())
        };
        self.readable.notify_all();
        self.writable.notify_all();
        if let Some(cb) = cb_r {
            cb();
        }
        if let Some(cb) = cb_w {
            cb();
        }
    }

    /// Install the readable-side callback; fires immediately if the
    /// pipe is already readable so no prior transition is missed.
    fn set_notify_readable(&self, cb: Option<ReadyNotify>) {
        let fire = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let ready = !st.buf.is_empty() || st.tx_closed || st.rx_closed;
            st.notify_readable = cb.clone();
            ready
        };
        if fire {
            if let Some(cb) = cb {
                cb();
            }
        }
    }

    /// Install the writable-side callback; fires immediately if the
    /// pipe already has space (or is closed).
    fn set_notify_writable(&self, cb: Option<ReadyNotify>) {
        let fire = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let ready = st.buf.len() < self.capacity || st.tx_closed || st.rx_closed;
            st.notify_writable = cb.clone();
            ready
        };
        if fire {
            if let Some(cb) = cb {
                cb();
            }
        }
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for b in buf.iter_mut().take(n) {
                    *b = st.buf.pop_front().expect("len checked");
                }
                self.writable.notify_all();
                let cb = st.notify_writable.clone();
                drop(st);
                if let Some(cb) = cb {
                    cb();
                }
                return Ok(n);
            }
            if st.tx_closed || st.rx_closed {
                return Ok(0); // EOF (rx_closed = our own shutdown(Read))
            }
            st = match timeout {
                None => self
                    .readable
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                Some(d) => {
                    let (guard, res) = self
                        .readable
                        .wait_timeout(st, d)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if res.timed_out() && guard.buf.is_empty() && !guard.tx_closed {
                        return Err(io::ErrorKind::WouldBlock.into());
                    }
                    guard
                }
            };
        }
    }

    /// Buffer one whole chunk, blocking for space as needed. Called with
    /// post-tap chunks, so partial progress never splits a tap result.
    fn write_chunk(&self, chunk: &[u8], timeout: Option<Duration>) -> io::Result<()> {
        let (res, cb) = self.write_chunk_inner(chunk, timeout);
        // Fire even on error paths: a timed-out write may still have
        // buffered a prefix the reader-side loop must hear about.
        if let Some(cb) = cb {
            cb();
        }
        res
    }

    fn write_chunk_inner(
        &self,
        chunk: &[u8],
        timeout: Option<Duration>,
    ) -> (io::Result<()>, Option<ReadyNotify>) {
        let mut st = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut off = 0;
        while off < chunk.len() {
            if st.rx_closed {
                let cb = wrote(&st, off);
                return (Err(io::ErrorKind::BrokenPipe.into()), cb);
            }
            if st.tx_closed {
                let cb = wrote(&st, off);
                return (Err(io::ErrorKind::NotConnected.into()), cb);
            }
            let space = self.capacity.saturating_sub(st.buf.len());
            if space == 0 {
                st = match timeout {
                    None => self
                        .writable
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                    Some(d) => {
                        let (guard, res) = self
                            .writable
                            .wait_timeout(st, d)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if res.timed_out() && guard.buf.len() >= self.capacity && !guard.rx_closed {
                            let cb = wrote(&guard, off);
                            return (Err(io::ErrorKind::TimedOut.into()), cb);
                        }
                        guard
                    }
                };
                continue;
            }
            let n = space.min(chunk.len() - off);
            st.buf.extend(&chunk[off..off + n]);
            off += n;
            self.readable.notify_all();
        }
        let cb = wrote(&st, off);
        (Ok(()), cb)
    }

    /// Nonblocking chunk write with **all-or-nothing admission**: the
    /// whole (post-tap) chunk is accepted iff the buffer is below
    /// capacity, overshooting by at most one chunk. This keeps write
    /// taps per-frame — a retried frame is never re-tapped — and
    /// guarantees progress for frames larger than the pipe capacity.
    fn write_nonblocking(&self, buf: &[u8]) -> io::Result<usize> {
        let cb = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.rx_closed {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            if st.tx_closed {
                return Err(io::ErrorKind::NotConnected.into());
            }
            if st.buf.len() >= self.capacity {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let tapped = st.tap.as_mut().map(|t| t(buf));
            match tapped {
                None => st.buf.extend(buf),
                Some(chunks) => {
                    for c in chunks {
                        st.buf.extend(c.iter());
                    }
                }
            }
            self.readable.notify_all();
            st.notify_readable.clone()
        };
        if let Some(cb) = cb {
            cb();
        }
        Ok(buf.len())
    }

    /// Nonblocking read: `WouldBlock` instead of waiting.
    fn read_nonblocking(&self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let (n, cb) = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.buf.is_empty() {
                if st.tx_closed || st.rx_closed {
                    return Ok(0);
                }
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(st.buf.len());
            for b in buf.iter_mut().take(n) {
                *b = st.buf.pop_front().expect("len checked");
            }
            self.writable.notify_all();
            (n, st.notify_writable.clone())
        };
        if let Some(cb) = cb {
            cb();
        }
        Ok(n)
    }

    /// Run the tap (if any) over `buf` and buffer the resulting chunks.
    fn write(&self, buf: &[u8], timeout: Option<Duration>) -> io::Result<usize> {
        let tapped: Option<Vec<Vec<u8>>> = {
            let mut st = self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if st.rx_closed {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            st.tap.as_mut().map(|t| t(buf))
        };
        match tapped {
            None => self.write_chunk(buf, timeout)?,
            Some(chunks) => {
                for c in chunks {
                    self.write_chunk(&c, timeout)?;
                }
            }
        }
        // The caller's whole buffer is accounted for even when the tap
        // rewrote it: `write_all` must not retry tapped bytes.
        Ok(buf.len())
    }

    fn set_tap(&self, tap: Option<WriteTap>) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .tap = tap;
    }
}

/// Socket-wide state of one endpoint of a memory duplex pipe. All
/// clones of a [`MemStream`] share this (like `TcpStream::try_clone`
/// sharing one socket); when the last clone drops, both directions are
/// closed, mirroring OS socket teardown.
struct MemEndpoint {
    /// Pipe this endpoint reads from.
    rx: Arc<Pipe>,
    /// Pipe this endpoint writes into.
    tx: Arc<Pipe>,
    read_timeout: Mutex<Option<Duration>>,
    write_timeout: Mutex<Option<Duration>>,
    /// Reads/writes return `WouldBlock` instead of waiting (shared
    /// across clones, like `TcpStream::set_nonblocking`).
    nonblocking: std::sync::atomic::AtomicBool,
}

impl Drop for MemEndpoint {
    fn drop(&mut self) {
        self.tx.close_tx();
        self.rx.close_rx();
    }
}

/// One endpoint of an in-process duplex byte pipe with TCP-like
/// semantics (see the module docs). Clones share the endpoint.
#[derive(Clone)]
pub struct MemStream(Arc<MemEndpoint>);

impl MemStream {
    /// Per-endpoint timeouts, as on a socket (shared across clones).
    pub fn set_read_timeout(&self, d: Option<Duration>) {
        *self
            .0
            .read_timeout
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = d;
    }

    /// See [`MemStream::set_read_timeout`].
    pub fn set_write_timeout(&self, d: Option<Duration>) {
        *self
            .0
            .write_timeout
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = d;
    }

    /// Shut down one or both directions, as on a socket.
    pub fn shutdown(&self, how: Shutdown) {
        if matches!(how, Shutdown::Write | Shutdown::Both) {
            self.0.tx.close_tx();
        }
        if matches!(how, Shutdown::Read | Shutdown::Both) {
            self.0.rx.close_rx();
        }
    }

    /// Install (or clear) a fault-injection tap on this endpoint's
    /// writes. The peer's reads observe the tap's output.
    pub fn set_write_tap(&self, tap: Option<WriteTap>) {
        self.0.tx.set_tap(tap);
    }

    /// Nonblocking mode, as on a socket: reads/writes fail with
    /// `WouldBlock` instead of waiting. Shared across clones.
    pub fn set_nonblocking(&self, on: bool) {
        self.0
            .nonblocking
            .store(on, std::sync::atomic::Ordering::Release);
    }

    /// Install readiness callbacks for an event loop: `on_readable`
    /// fires when this endpoint has bytes/EOF to read, `on_writable`
    /// when its outbound pipe has space (or is closed). Either fires
    /// immediately if the condition already holds, so no transition
    /// before installation is lost. Pass `None` to uninstall.
    pub fn set_notify(&self, on_readable: Option<ReadyNotify>, on_writable: Option<ReadyNotify>) {
        self.0.rx.set_notify_readable(on_readable);
        self.0.tx.set_notify_writable(on_writable);
    }

    fn read_timeout(&self) -> Option<Duration> {
        *self
            .0
            .read_timeout
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_timeout(&self) -> Option<Duration> {
        *self
            .0
            .write_timeout
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Read for &MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self
            .0
            .nonblocking
            .load(std::sync::atomic::Ordering::Acquire)
        {
            return self.0.rx.read_nonblocking(buf);
        }
        let t = self.read_timeout();
        self.0.rx.read(buf, t)
    }
}

impl Write for &MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self
            .0
            .nonblocking
            .load(std::sync::atomic::Ordering::Acquire)
        {
            return self.0.tx.write_nonblocking(buf);
        }
        let t = self.write_timeout();
        self.0.tx.write(buf, t)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A connected pair of memory endpoints with the given per-direction
/// buffer capacity.
pub fn memory_pair_with_capacity(capacity: usize) -> (MemStream, MemStream) {
    let a2b = Arc::new(Pipe::new(capacity));
    let b2a = Arc::new(Pipe::new(capacity));
    let a = MemStream(Arc::new(MemEndpoint {
        rx: Arc::clone(&b2a),
        tx: Arc::clone(&a2b),
        read_timeout: Mutex::new(None),
        write_timeout: Mutex::new(None),
        nonblocking: std::sync::atomic::AtomicBool::new(false),
    }));
    let b = MemStream(Arc::new(MemEndpoint {
        rx: a2b,
        tx: b2a,
        read_timeout: Mutex::new(None),
        write_timeout: Mutex::new(None),
        nonblocking: std::sync::atomic::AtomicBool::new(false),
    }));
    (a, b)
}

/// [`memory_pair_with_capacity`] at [`MEM_PIPE_CAPACITY`].
pub fn memory_pair() -> (MemStream, MemStream) {
    memory_pair_with_capacity(MEM_PIPE_CAPACITY)
}

/// Either transport's stream, behind one concrete type so connection
/// state needs no generics.
pub enum Stream {
    /// A real socket.
    Tcp(TcpStream),
    /// An in-process pipe endpoint.
    Mem(MemStream),
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stream::Tcp(s) => f.debug_tuple("Tcp").field(s).finish(),
            Stream::Mem(_) => f.write_str("Mem"),
        }
    }
}

impl Stream {
    /// A second handle to the same underlying stream (for the split
    /// reader/writer threads).
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Mem(s) => Stream::Mem(s.clone()),
        })
    }

    /// Shut down one or both directions.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(how),
            Stream::Mem(s) => {
                s.shutdown(how);
                Ok(())
            }
        }
    }

    /// Socket read timeout (`None` = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Mem(s) => {
                s.set_read_timeout(d);
                Ok(())
            }
        }
    }

    /// Socket write timeout (`None` = block forever).
    pub fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(d),
            Stream::Mem(s) => {
                s.set_write_timeout(d);
                Ok(())
            }
        }
    }

    /// `TCP_NODELAY` on sockets; a no-op on the memory pipe (which
    /// never batches).
    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nodelay(on),
            Stream::Mem(_) => Ok(()),
        }
    }

    /// Nonblocking mode for both transports (reads/writes return
    /// `WouldBlock` instead of waiting).
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Mem(s) => {
                s.set_nonblocking(on);
                Ok(())
            }
        }
    }

    /// The OS fd for kernel-pollable streams; `None` for the memory
    /// transport (which registers as an external readiness source).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> Option<i32> {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => Some(s.as_raw_fd()),
            Stream::Mem(_) => None,
        }
    }

    /// See the unix variant; no kernel-pollable fds elsewhere.
    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Readiness callbacks for event-loop integration; a no-op on TCP
    /// (whose readiness comes from the kernel poller).
    pub fn set_notify(&self, on_readable: Option<ReadyNotify>, on_writable: Option<ReadyNotify>) {
        if let Stream::Mem(s) = self {
            s.set_notify(on_readable, on_writable);
        }
    }
}

impl Read for &Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => (&*s).read(buf),
            Stream::Mem(s) => {
                let mut r = s;
                r.read(buf)
            }
        }
    }
}

impl Write for &Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => (&*s).write(buf),
            Stream::Mem(s) => {
                let mut w = s;
                w.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => (&*s).flush(),
            Stream::Mem(_) => Ok(()),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self).read(buf)
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self).flush()
    }
}

/// Accept queue shared by a [`MemListener`] and its [`MemConnector`]s.
struct MemAcceptQueue {
    pending: Mutex<Vec<MemStream>>,
    closed: Mutex<bool>,
    /// Fired (post-unlock) when a connection is queued.
    notify: Mutex<Option<ReadyNotify>>,
}

/// In-process listener: accepts connections made through a
/// [`MemConnector`]. Nonblocking, like the server's TCP listener.
pub struct MemListener {
    queue: Arc<MemAcceptQueue>,
}

impl Drop for MemListener {
    fn drop(&mut self) {
        *self
            .queue
            .closed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
    }
}

/// Client-side handle for connecting to a [`MemListener`]. Cloneable;
/// each `connect` creates a fresh duplex pipe.
#[derive(Clone)]
pub struct MemConnector {
    queue: Arc<MemAcceptQueue>,
    capacity: usize,
}

impl MemConnector {
    /// Connect, handing the listener the server-side endpoint.
    pub fn connect(&self) -> io::Result<MemStream> {
        self.connect_with_tap(None)
    }

    /// Connect, installing `tap` on the **server-side** endpoint's
    /// writes — i.e. on the server→client direction — before the server
    /// ever sees the stream. This is the simulation harness's frame
    /// fault-injection point.
    pub fn connect_with_tap(&self, tap: Option<WriteTap>) -> io::Result<MemStream> {
        if *self
            .queue
            .closed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            return Err(io::ErrorKind::ConnectionRefused.into());
        }
        let (client, server) = memory_pair_with_capacity(self.capacity);
        server.set_write_tap(tap);
        self.queue
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(server);
        let cb = self
            .queue
            .notify
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if let Some(cb) = cb {
            cb();
        }
        Ok(client)
    }
}

/// A connected in-process listener/connector pair with the given
/// per-direction pipe capacity.
pub fn memory_listener_with_capacity(capacity: usize) -> (MemListener, MemConnector) {
    let queue = Arc::new(MemAcceptQueue {
        pending: Mutex::new(Vec::new()),
        closed: Mutex::new(false),
        notify: Mutex::new(None),
    });
    (
        MemListener {
            queue: Arc::clone(&queue),
        },
        MemConnector { queue, capacity },
    )
}

/// [`memory_listener_with_capacity`] at [`MEM_PIPE_CAPACITY`].
pub fn memory_listener() -> (MemListener, MemConnector) {
    memory_listener_with_capacity(MEM_PIPE_CAPACITY)
}

/// Either transport's listener. The accept loop polls, so both arms are
/// nonblocking (`WouldBlock` when no connection is pending).
pub enum Listener {
    /// A nonblocking TCP listener.
    Tcp(TcpListener),
    /// An in-process accept queue.
    Mem(MemListener),
}

impl Listener {
    /// Accept one pending connection, `WouldBlock` if none is queued.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Mem(l) => {
                let mut pending = l
                    .queue
                    .pending
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if pending.is_empty() {
                    Err(io::ErrorKind::WouldBlock.into())
                } else {
                    // FIFO: connections are served in connect order.
                    Ok(Stream::Mem(pending.remove(0)))
                }
            }
        }
    }

    /// The bound address; memory listeners report the TCP unspecified
    /// address (there is no port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr(),
            Listener::Mem(_) => Ok(SocketAddr::from(([127, 0, 0, 1], 0))),
        }
    }

    /// The OS fd for TCP listeners; `None` for memory listeners (the
    /// event loop uses [`Listener::set_accept_notify`] instead).
    #[cfg(unix)]
    pub fn raw_fd(&self) -> Option<i32> {
        use std::os::unix::io::AsRawFd;
        match self {
            Listener::Tcp(l) => Some(l.as_raw_fd()),
            Listener::Mem(_) => None,
        }
    }

    /// See the unix variant; no kernel-pollable fds elsewhere.
    #[cfg(not(unix))]
    pub fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Install a callback fired whenever a memory connection is queued
    /// for accept; fires immediately if one is already waiting. A no-op
    /// on TCP listeners (readiness comes from the kernel poller).
    pub fn set_accept_notify(&self, cb: Option<ReadyNotify>) {
        if let Listener::Mem(l) = self {
            let fire = {
                let mut slot = l
                    .queue
                    .notify
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *slot = cb.clone();
                !l.queue
                    .pending
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .is_empty()
            };
            if fire {
                if let Some(cb) = cb {
                    cb();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pipe_moves_bytes_both_ways() {
        let (a, b) = memory_pair();
        (&a).write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        (&b).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        (&b).write_all(b"pong").unwrap();
        (&a).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn read_timeout_is_wouldblock_and_eof_after_writer_close() {
        let (a, b) = memory_pair();
        b.set_read_timeout(Some(Duration::from_millis(5)));
        let mut buf = [0u8; 1];
        let err = (&b).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        (&a).write_all(b"x").unwrap();
        a.shutdown(Shutdown::Write);
        assert_eq!((&b).read(&mut buf).unwrap(), 1); // buffered byte first
        assert_eq!((&b).read(&mut buf).unwrap(), 0); // then EOF
    }

    #[test]
    fn full_pipe_times_out_then_drains() {
        let (a, b) = memory_pair_with_capacity(4);
        a.set_write_timeout(Some(Duration::from_millis(5)));
        (&a).write_all(b"1234").unwrap();
        let err = (&a).write_all(b"5").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let mut buf = [0u8; 4];
        (&b).read_exact(&mut buf).unwrap();
        (&a).write_all(b"5").unwrap();
        assert_eq!((&b).read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'5');
    }

    #[test]
    fn dropped_peer_breaks_writes() {
        let (a, b) = memory_pair();
        drop(b);
        let err = (&a).write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn write_tap_transforms_the_byte_stream() {
        let (a, b) = memory_pair();
        // Drop every chunk containing 'd', duplicate the rest.
        a.set_write_tap(Some(Box::new(|chunk: &[u8]| {
            if chunk.contains(&b'd') {
                vec![]
            } else {
                vec![chunk.to_vec(), chunk.to_vec()]
            }
        })));
        (&a).write_all(b"keep").unwrap();
        (&a).write_all(b"drop").unwrap();
        a.shutdown(Shutdown::Write);
        let mut out = Vec::new();
        (&b).read_to_end(&mut out).unwrap();
        assert_eq!(out, b"keepkeep");
    }

    #[test]
    fn nonblocking_mem_stream_wouldblocks_and_overshoots_once() {
        let (a, b) = memory_pair_with_capacity(4);
        a.set_nonblocking(true);
        b.set_nonblocking(true);
        let mut buf = [0u8; 16];
        assert_eq!(
            (&b).read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        // All-or-nothing admission: a chunk larger than capacity is
        // accepted whole while the buffer is below capacity...
        assert_eq!((&a).write(b"123456").unwrap(), 6);
        // ...and further writes WouldBlock until the reader drains.
        assert_eq!(
            (&a).write(b"7").unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!((&b).read(&mut buf).unwrap(), 6);
        assert_eq!((&a).write(b"7").unwrap(), 1);
        // EOF still reads as Ok(0).
        a.shutdown(Shutdown::Write);
        assert_eq!((&b).read(&mut buf).unwrap(), 1);
        assert_eq!((&b).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn notify_fires_on_data_space_and_close() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (a, b) = memory_pair_with_capacity(4);
        let reads = Arc::new(AtomicUsize::new(0));
        let writes = Arc::new(AtomicUsize::new(0));
        let (r, w) = (Arc::clone(&reads), Arc::clone(&writes));
        // Installing on an empty, spacious pipe: writable fires
        // immediately (space available), readable does not.
        b.set_notify(
            Some(Arc::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            })),
            Some(Arc::new(move || {
                w.fetch_add(1, Ordering::SeqCst);
            })),
        );
        assert_eq!(reads.load(Ordering::SeqCst), 0);
        assert_eq!(writes.load(Ordering::SeqCst), 1);

        (&a).write_all(b"hi").unwrap();
        assert_eq!(reads.load(Ordering::SeqCst), 1);
        // Peer close fires readable (EOF) again.
        a.shutdown(Shutdown::Write);
        assert!(reads.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn accept_notify_fires_on_connect_and_backlog() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (listener, connector) = memory_listener();
        let listener = Listener::Mem(listener);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        listener.set_accept_notify(Some(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        })));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        let _c = connector.connect().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Re-install with a backlog pending: fires immediately.
        let h = Arc::clone(&hits);
        listener.set_accept_notify(Some(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        })));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn listener_hands_over_connections_in_order() {
        let (listener, connector) = memory_listener();
        assert_eq!(
            Listener::Mem(listener)
                .local_addr()
                .unwrap()
                .ip()
                .to_string(),
            "127.0.0.1"
        );
        let (listener, connector2) = memory_listener();
        let listener = Listener::Mem(listener);
        assert!(matches!(
            listener.accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        ));
        let c1 = connector2.connect().unwrap();
        let _c2 = connector2.connect().unwrap();
        let s1 = listener.accept().unwrap();
        (&c1).write_all(b"a").unwrap();
        let mut buf = [0u8; 1];
        let mut r = &s1;
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], b'a');
        drop(connector);
    }
}
