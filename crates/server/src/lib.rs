//! igern-server — the network serving layer.
//!
//! A dependency-free TCP server over `std::net` that exposes the IGERN
//! continuous-evaluation pipeline to remote clients:
//!
//! * **streaming ingestion** — clients push `UPSERT_OBJECT` /
//!   `REMOVE_OBJECT` frames; mutations land in one bounded ingest queue
//!   (arrival order preserved, blocking send = backpressure) and are
//!   applied to the [`SpatialStore`]
//!   immediately, so the dirty-cell journal keeps skip routing sound;
//! * **query subscriptions** — `SUBSCRIBE_QUERY` registers any of the
//!   eight [`Algorithm`](igern_core::processor::Algorithm) variants
//!   against the shared serial [`Processor`] or [`ShardedEngine`]
//!   (behind [`TickRunner`]) — answers are bit-identical to an offline
//!   run over the same update sequence;
//! * **answer-delta push** — each tick the server diffs every
//!   subscription's answer against the previous tick and pushes only
//!   the adds/removes; the first push after subscribe (and after a
//!   slow-consumer coalesce) is a full snapshot.
//!
//! See `DESIGN.md` §12 for the frame table and threading model. The
//! in-process [`Client`] speaks the same protocol and is what the
//! equivalence tests and `exp_server` bench drive.
//!
//! [`Processor`]: igern_core::processor::Processor
//! [`ShardedEngine`]: igern_engine::ShardedEngine
//! [`TickRunner`]: igern_engine::TickRunner

use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use igern_core::hooks::SharedSimHooks;
use igern_core::obs::{
    Counter, Gauge, Histogram, MetricsRegistry, COUNT_BUCKETS, LATENCY_BUCKETS_S,
};
use igern_core::SpatialStore;
use igern_engine::{Placement, TickRunner};
use igern_geom::Aabb;

pub mod client;
mod conn;
/// The wire codec, re-exported from [`igern_proto`] (extracted so the
/// WAL crate can encode log records with the same frames without
/// depending on the server).
pub mod proto {
    pub use igern_proto::*;
}
mod rio;
mod tick;
pub mod transport;

pub use client::{Client, ClientError, Event};
pub use proto::{ErrorCode, Frame, ProtoError, PROTOCOL_VERSION};
pub use rio::ReactorMetrics;
pub use transport::{
    memory_listener, memory_listener_with_capacity, Listener, MemConnector, MemStream, Stream,
};

pub(crate) use tick::Ingest;

use conn::{reader_loop, Connection};
use rio::ConnHandle;
use tick::TickThread;

/// What to do when a connection's outbound queue overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlowConsumerPolicy {
    /// Kill the connection (default: a consumer that cannot keep up
    /// should not silently see stale data).
    #[default]
    Disconnect,
    /// Drop queued tick traffic and restart the conversation with full
    /// answer snapshots; acks, errors, and pongs are never dropped.
    Coalesce,
}

impl SlowConsumerPolicy {
    /// Parse a CLI-style name (`disconnect` | `coalesce`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "disconnect" => Some(SlowConsumerPolicy::Disconnect),
            "coalesce" => Some(SlowConsumerPolicy::Coalesce),
            _ => None,
        }
    }
}

/// Which I/O runtime serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// Two OS threads per connection (blocking reader + writer).
    /// Simple and battle-tested, but thread count scales with
    /// subscribers — fine to a few hundred connections.
    Threads,
    /// A fixed pool of event-loop threads driving non-blocking
    /// connection state machines (epoll, `poll(2)` fallback). The
    /// default: thread count is constant at 10k subscribers.
    Reactor,
}

impl IoBackend {
    /// Parse a CLI-style name (`threads` | `reactor`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(IoBackend::Threads),
            "reactor" => Some(IoBackend::Reactor),
            _ => None,
        }
    }

    /// The CLI-style name, inverse of [`IoBackend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Threads => "threads",
            IoBackend::Reactor => "reactor",
        }
    }

    /// The default backend, overridable via `IGERN_TEST_IO` so the CI
    /// matrix can run every suite against either runtime unchanged.
    pub fn default_from_env() -> Self {
        std::env::var("IGERN_TEST_IO")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(IoBackend::Reactor)
    }
}

impl Default for IoBackend {
    fn default() -> Self {
        Self::default_from_env()
    }
}

/// When ticks fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickMode {
    /// Only on client `STEP` frames (deterministic tests).
    Manual,
    /// On a fixed period; `STEP` still forces an immediate tick.
    Every(Duration),
}

/// Server construction parameters.
#[derive(Clone)]
pub struct ServerConfig {
    /// Data space all object positions must fall inside.
    pub space: Aabb,
    /// Grid resolution (`n × n` cells), as in the offline pipeline.
    pub grid: usize,
    /// Evaluation workers: 1 = serial processor, >1 = sharded engine.
    pub workers: usize,
    /// Query→shard placement for the sharded backend.
    pub placement: Placement,
    /// Shared-scan batch evaluation (anchor-cell grouping; see
    /// [`igern_core::batch`]). On by default — answers are bit-identical
    /// to per-query evaluation, batching only reduces scan work.
    pub batch: bool,
    /// Tick cadence.
    pub tick_mode: TickMode,
    /// Bound of the shared ingest queue (frames).
    pub ingest_queue_frames: usize,
    /// Bound of each connection's outbound queue (frames).
    pub outbound_queue_frames: usize,
    /// Overflow policy for slow consumers.
    pub slow_consumer: SlowConsumerPolicy,
    /// I/O runtime serving connections (default [`IoBackend::Reactor`],
    /// overridable via `IGERN_TEST_IO`).
    pub io: IoBackend,
    /// Event-loop threads for the reactor backend; `0` = auto
    /// (`min(4, cpus)`). Ignored by the threaded backend.
    pub io_threads: usize,
    /// Graceful-shutdown drain deadline for the reactor backend: after
    /// the final tick, loops keep flushing outbound queues at most this
    /// long before cutting slow consumers off.
    pub shutdown_drain: Duration,
    /// `SO_SNDBUF` for accepted TCP sockets, `None` = OS default. The
    /// partial-write tests shrink this to force short writes through
    /// the connection state machines; the kernel clamps to its minimum.
    pub tcp_send_buffer: Option<u32>,
    /// *Legacy, threaded backend only:* socket read poll interval —
    /// blocking reader threads wake this often to notice shutdown.
    /// After >1s without a frame a reader backs off to 1s polls (and
    /// restores this interval on the next frame). The reactor backend
    /// is readiness-driven and never read-polls.
    pub read_timeout: Duration,
    /// Socket write timeout (a blocked write past this kills the
    /// connection).
    pub write_timeout: Duration,
    /// Simulation fault-injection hooks, forwarded to the tick runner
    /// and fired by the tick thread (see [`igern_core::hooks::SimHooks`]).
    /// `None` in production.
    pub sim_hooks: Option<SharedSimHooks>,
    /// Durability: with `Some`, the server recovers state from the
    /// directory on boot, write-ahead-logs every admitted mutation,
    /// and snapshots periodically (see [`igern_wal`]).
    pub wal: Option<igern_wal::WalOptions>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("space", &self.space)
            .field("grid", &self.grid)
            .field("workers", &self.workers)
            .field("placement", &self.placement)
            .field("batch", &self.batch)
            .field("tick_mode", &self.tick_mode)
            .field("ingest_queue_frames", &self.ingest_queue_frames)
            .field("outbound_queue_frames", &self.outbound_queue_frames)
            .field("slow_consumer", &self.slow_consumer)
            .field("io", &self.io)
            .field("io_threads", &self.io_threads)
            .field("shutdown_drain", &self.shutdown_drain)
            .field("tcp_send_buffer", &self.tcp_send_buffer)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("sim_hooks", &self.sim_hooks.as_ref().map(|_| "<installed>"))
            .field("wal", &self.wal)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            space: Aabb::from_coords(0.0, 0.0, 1.0, 1.0),
            grid: 16,
            workers: 1,
            placement: Placement::RoundRobin,
            batch: true,
            tick_mode: TickMode::Manual,
            ingest_queue_frames: 4096,
            outbound_queue_frames: 1024,
            slow_consumer: SlowConsumerPolicy::Disconnect,
            io: IoBackend::default_from_env(),
            io_threads: 0,
            shutdown_drain: Duration::from_secs(2),
            tcp_send_buffer: None,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            sim_hooks: None,
            wal: None,
        }
    }
}

/// All server instruments, registered under the `igern_server` prefix
/// in a shared [`MetricsRegistry`].
#[derive(Clone)]
pub struct ServerMetrics {
    pub connections_total: Counter,
    pub connections_active: Gauge,
    pub subscriptions_active: Gauge,
    pub ingest_enqueued_total: Counter,
    pub ingest_dequeued_total: Counter,
    pub ingest_queue_depth: Gauge,
    /// Mutations applied per tick.
    pub batch_size: Histogram,
    /// Seconds from tick start (engine step) to every delta queued.
    pub tick_push_seconds: Histogram,
    pub slow_consumer_total: Counter,
    pub protocol_errors_total: Counter,
    /// Outbound-queue mutex poison recoveries (a thread panicked while
    /// holding the lock; the queue stays usable — see `conn.rs`).
    pub lock_poisoned_total: Counter,
    /// Unknown-frame-type payloads skipped for forward compatibility.
    pub frames_skipped_total: Counter,
    /// WAL records appended (mutations + tick boundaries).
    pub wal_records_total: Counter,
    /// WAL append/snapshot failures (durability degraded, serving
    /// continues).
    pub wal_errors_total: Counter,
    /// Compacted snapshots written.
    pub wal_snapshots_total: Counter,
    /// Snapshots requested while durability is off (guarded no-op
    /// instead of a tick-thread panic).
    pub wal_snapshots_skipped_total: Counter,
    /// Subscription-index desyncs survived: a sid listed by a
    /// connection was missing from the tick thread's sub table; the
    /// stale entry is dropped and the tick completes.
    pub sub_desync_total: Counter,
    /// Per-frame-type counters, resolved once at registration so the
    /// per-frame hot path never touches the registry lock.
    frames_in: Vec<(&'static str, Counter)>,
    frames_out: Vec<(&'static str, Counter)>,
}

impl ServerMetrics {
    /// Register every instrument in `registry` under `igern_server`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let p = "igern_server";
        let by_type = |dir: &str| -> Vec<(&'static str, Counter)> {
            proto::FRAME_TYPE_NAMES
                .iter()
                .map(|&ty| {
                    let c = registry
                        .counter_labeled(&format!("{p}_frames_{dir}_total"), &[("type", ty)]);
                    (ty, c)
                })
                .collect()
        };
        ServerMetrics {
            connections_total: registry.counter(&format!("{p}_connections_total")),
            connections_active: registry.gauge(&format!("{p}_connections_active")),
            subscriptions_active: registry.gauge(&format!("{p}_subscriptions_active")),
            ingest_enqueued_total: registry.counter(&format!("{p}_ingest_enqueued_total")),
            ingest_dequeued_total: registry.counter(&format!("{p}_ingest_dequeued_total")),
            ingest_queue_depth: registry.gauge(&format!("{p}_ingest_queue_depth")),
            batch_size: registry.histogram(&format!("{p}_tick_batch_size"), &COUNT_BUCKETS),
            tick_push_seconds: registry
                .histogram(&format!("{p}_tick_push_seconds"), &LATENCY_BUCKETS_S),
            slow_consumer_total: registry.counter(&format!("{p}_slow_consumer_events_total")),
            protocol_errors_total: registry.counter(&format!("{p}_protocol_errors_total")),
            lock_poisoned_total: registry.counter(&format!("{p}_lock_poisoned_total")),
            frames_skipped_total: registry.counter(&format!("{p}_frames_skipped_total")),
            wal_records_total: registry.counter(&format!("{p}_wal_records_total")),
            wal_errors_total: registry.counter(&format!("{p}_wal_errors_total")),
            wal_snapshots_total: registry.counter(&format!("{p}_wal_snapshots_total")),
            wal_snapshots_skipped_total: registry
                .counter(&format!("{p}_wal_snapshots_skipped_total")),
            sub_desync_total: registry.counter(&format!("{p}_sub_desync_total")),
            frames_in: by_type("in"),
            frames_out: by_type("out"),
        }
    }

    /// Count one received frame of wire type `ty`.
    pub fn frame_in(&self, ty: &str) {
        if let Some((_, c)) = self.frames_in.iter().find(|(n, _)| *n == ty) {
            c.inc();
        }
    }

    /// Count one sent frame of wire type `ty`.
    pub fn frame_out(&self, ty: &str) {
        if let Some((_, c)) = self.frames_out.iter().find(|(n, _)| *n == ty) {
            c.inc();
        }
    }
}

/// What WAL recovery restored at boot (`None` when the durability
/// directory was fresh or durability is off).
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Logical tick the server resumed at.
    pub tick: u64,
    /// Objects restored into the store.
    pub objects: usize,
    /// Standing queries restored (as claimable orphans).
    pub subs: usize,
    /// [`igern_wal::state_digest`] of the recovered answers — compare
    /// against the pre-crash digest of an equivalent offline runner.
    pub digest: u64,
    /// What recovery skipped and tolerated.
    pub report: igern_wal::RecoveryReport,
}

/// The I/O side of a running server, one arm per [`IoBackend`].
enum IoRuntime {
    /// Acceptor thread + a reader/writer thread pair per connection.
    Threads { acceptor: Option<JoinHandle<()>> },
    /// Fixed pool of event-loop threads (acceptor runs on loop 0).
    Reactor { pool: rio::ReactorPool },
}

/// A running server: the tick thread that owns the engine, plus an I/O
/// runtime — per-connection reader/writer threads (`threads`) or a
/// fixed event-loop pool (`reactor`, the default).
pub struct Server {
    addr: std::net::SocketAddr,
    ingest: SyncSender<Ingest>,
    shutdown: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    recovery: Option<RecoveryInfo>,
    registry: MetricsRegistry,
    metrics: ServerMetrics,
    io: IoRuntime,
    ticker: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start serving `store` under `cfg`. Engine
    /// metrics attach under `igern_pipeline`, server metrics under
    /// `igern_server`, all in the returned server's registry.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        store: SpatialStore,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let registry = MetricsRegistry::new();
        Self::start_with_registry(addr, store, cfg, registry)
    }

    /// As [`Server::start`], registering instruments in `registry`.
    pub fn start_with_registry<A: ToSocketAddrs>(
        addr: A,
        store: SpatialStore,
        cfg: ServerConfig,
        registry: MetricsRegistry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Self::start_on(Listener::Tcp(listener), store, cfg, registry)
    }

    /// Serve on an already-bound [`Listener`] — the transport-generic
    /// entry point. The simulation harness passes the in-process memory
    /// listener here to run the whole server (acceptor, connection
    /// threads, tick thread) without any ports.
    pub fn start_on(
        listener: Listener,
        store: SpatialStore,
        cfg: ServerConfig,
        registry: MetricsRegistry,
    ) -> std::io::Result<Server> {
        let local = listener.local_addr()?;
        let metrics = ServerMetrics::register(&registry);

        // With durability on, recovered state replaces the passed
        // store unless the directory is fresh (no snapshot, no
        // records) — a fresh directory starts from `store` as usual.
        // The store's road network (if any) travels into recovery so
        // restored network-mode subscriptions keep evaluating.
        let network = store.network().cloned();
        let mut runner = TickRunner::new(store, cfg.workers, cfg.placement);
        let mut recovery = None;
        let mut durable = None;
        let mut first_sid = 1u32;
        if let Some(opts) = &cfg.wal {
            let rec = igern_wal::recover(
                &opts.dir,
                cfg.workers,
                cfg.placement,
                cfg.space,
                cfg.grid,
                network,
            )?;
            let fresh = rec.report.snapshot.is_none() && rec.next_seq == 0;
            let tick_base = rec.tick - rec.runner.tick();
            if !fresh {
                recovery = Some(RecoveryInfo {
                    tick: rec.tick,
                    objects: rec.runner.store().len(),
                    subs: rec.subs.len(),
                    digest: rec.digest,
                    report: rec.report.clone(),
                });
                runner = rec.runner;
                first_sid = rec.next_sid;
            }
            durable = Some(tick::DurableState {
                wal: igern_wal::WalWriter::open(opts)?,
                recovered_subs: if fresh { Vec::new() } else { rec.subs },
                tick_base: if fresh { 0 } else { tick_base },
            });
        }
        runner.attach_metrics(&registry, "igern_pipeline");
        runner.set_sim_hooks(cfg.sim_hooks.clone());
        runner.set_batch(cfg.batch);

        let shutdown = Arc::new(AtomicBool::new(false));
        let crashed = Arc::new(AtomicBool::new(false));
        let next_sid = Arc::new(AtomicU32::new(first_sid));
        let (tx, rx) = sync_channel::<Ingest>(cfg.ingest_queue_frames);

        let ticker = {
            let t = TickThread::new(
                runner,
                cfg.clone(),
                metrics.clone(),
                Arc::clone(&shutdown),
                Arc::clone(&crashed),
                durable,
                Arc::clone(&next_sid),
            );
            std::thread::Builder::new()
                .name("igern-tick".into())
                .spawn(move || t.run(rx))
                .expect("spawn tick thread")
        };

        let io = match cfg.io {
            IoBackend::Threads => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let metrics = metrics.clone();
                let cfg = cfg.clone();
                let acceptor = std::thread::Builder::new()
                    .name("igern-accept".into())
                    .spawn(move || {
                        accept_loop(listener, tx, next_sid, shutdown, cfg, metrics);
                    })
                    .expect("spawn acceptor thread");
                IoRuntime::Threads {
                    acceptor: Some(acceptor),
                }
            }
            IoBackend::Reactor => {
                let pool = rio::start_pool(
                    listener,
                    tx.clone(),
                    next_sid,
                    Arc::clone(&shutdown),
                    cfg.clone(),
                    metrics.clone(),
                    &registry,
                )?;
                IoRuntime::Reactor { pool }
            }
        };

        Ok(Server {
            addr: local,
            ingest: tx,
            shutdown,
            crashed,
            recovery,
            registry,
            metrics,
            io,
            ticker: Some(ticker),
        })
    }

    /// What WAL recovery restored at boot, if anything.
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_ref()
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The registry holding server + pipeline instruments.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The server's own instruments.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Test hook: drop `sid` from the tick thread's subscription table
    /// while leaving it on its connection's sub list — the index desync
    /// the tick loop must survive (counted in
    /// `igern_server_sub_desync_total`). Never called in production.
    #[doc(hidden)]
    pub fn debug_desync_sub(&self, sid: u32) {
        let _ = self.ingest.try_send(Ingest::DebugDropSub(sid));
    }

    /// Ask the server to stop: in-flight ingested mutations are
    /// evaluated in one final tick and pushed before connections close.
    pub fn shutdown(&self) {
        // Queue the request; if the queue is full or the tick thread is
        // already gone, fall back to the flag (the acceptor and readers
        // watch it, and the tick loop exits when every sender is gone).
        let _ = self.ingest.try_send(Ingest::ShutdownRequested);
        self.shutdown.store(true, Ordering::Release);
        if let IoRuntime::Reactor { pool } = &self.io {
            // Loops only observe the flag when awake: stop accepting now.
            pool.wake_all();
        }
    }

    /// Block until the server has fully stopped (all threads joined).
    pub fn wait(&mut self) {
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        self.shutdown.store(true, Ordering::Release);
        match &mut self.io {
            IoRuntime::Threads { acceptor } => {
                if let Some(h) = acceptor.take() {
                    let _ = h.join();
                }
            }
            IoRuntime::Reactor { pool } => {
                // The final tick has queued its pushes; drain them under
                // the bounded deadline, then join the loops.
                pool.begin_drain();
                pool.join();
            }
        }
    }

    /// [`shutdown`](Server::shutdown) then [`wait`](Server::wait).
    pub fn stop(&mut self) {
        self.shutdown();
        self.wait();
    }

    /// Tear down abruptly, simulating `kill -9` for crash-recovery
    /// testing: no final tick, no WAL flush beyond what `write(2)`
    /// already delivered, no clean snapshot. The next boot over the
    /// same WAL directory must *recover*, not resume.
    pub fn crash(&mut self) {
        self.crashed.store(true, Ordering::Release);
        self.shutdown();
        self.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: Listener,
    ingest: SyncSender<Ingest>,
    next_sid: Arc<AtomicU32>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
    metrics: ServerMetrics,
) {
    let next_conn = AtomicU64::new(1);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Per-socket deadlines: reads poll (readers must notice
        // shutdown), writes hard-timeout (a wedged peer cannot pin a
        // writer thread forever).
        let _ = stream.set_read_timeout(Some(cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(cfg.write_timeout));
        let _ = stream.set_nodelay(true);
        if let (Some(bytes), Some(fd)) = (cfg.tcp_send_buffer, stream.raw_fd()) {
            let _ = igern_reactor::sys::set_send_buffer(fd, bytes as std::ffi::c_int);
        }

        let id = next_conn.fetch_add(1, Ordering::Relaxed);
        metrics.connections_total.inc();
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn = Arc::new(Connection::new(id, stream));
        if ingest
            .send(Ingest::NewConn(ConnHandle::Thread(Arc::clone(&conn))))
            .is_err()
        {
            return; // tick thread gone: shutting down
        }
        metrics.ingest_enqueued_total.inc();

        {
            let conn = Arc::clone(&conn);
            let metrics = metrics.clone();
            let _ = std::thread::Builder::new()
                .name(format!("igern-write-{id}"))
                .spawn(move || conn.writer_loop(&metrics));
        }
        {
            let ingest = ingest.clone();
            let next_sid = Arc::clone(&next_sid);
            let shutdown = Arc::clone(&shutdown);
            let cfg = cfg.clone();
            let metrics = metrics.clone();
            let _ = std::thread::Builder::new()
                .name(format!("igern-read-{id}"))
                .spawn(move || {
                    reader_loop(conn, read_half, ingest, next_sid, shutdown, &cfg, &metrics)
                });
        }
    }
}
