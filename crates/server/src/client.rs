//! A blocking protocol client.
//!
//! [`Client`] speaks the igern-server wire protocol over one
//! `TcpStream` and maintains the materialised answer of every
//! subscription by applying pushed snapshots and deltas — after any
//! [`Event::TickEnd`], [`Client::answer`] equals the server-side
//! `TickRunner::answer` for that tick, bit for bit. The equivalence
//! tests and the `exp_server` bench both drive this type.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};

use crate::proto::{
    ErrorCode, Frame, FrameError, FrameReader, ProtoError, ReadOutcome, PROTOCOL_VERSION,
};
use crate::transport::Stream;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Proto(ProtoError),
    /// The server rejected the `HELLO` handshake.
    Handshake(String),
    /// A blocking wait ran out of time.
    TimedOut,
    /// The server closed the connection.
    Closed,
    /// The server answered a command wait with an `ERROR` frame (a
    /// semantic rejection; the connection stays usable).
    Server { code: ErrorCode, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Handshake(m) => write!(f, "handshake rejected: {m}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Proto(e) => ClientError::Proto(e),
        }
    }
}

/// One server push, after the client applied it to its local state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Handshake accepted (only seen during [`Client::connect`]).
    HelloAck { version: u16 },
    /// Subscription acknowledged.
    Subscribed { token: u32, sid: u32 },
    /// Unsubscribe acknowledged; the local answer was dropped.
    Unsubscribed { sid: u32 },
    /// An answer change (already folded into [`Client::answer`]).
    Delta {
        tick: u64,
        stamp_nanos: u64,
        sid: u32,
        snapshot: bool,
        adds: Vec<u32>,
        removes: Vec<u32>,
    },
    /// All of a tick's deltas for this connection have been delivered.
    TickEnd { tick: u64, stamp_nanos: u64 },
    /// Ping reply.
    Pong { nonce: u64 },
    /// A server-side rejection; semantic errors leave the connection
    /// usable.
    Error { code: ErrorCode, message: String },
}

/// Blocking client over one connection. Not thread-safe; clone the
/// answers out if another thread needs them.
pub struct Client {
    stream: Stream,
    reader: FrameReader<Stream>,
    next_token: u32,
    answers: BTreeMap<u32, BTreeSet<u32>>,
    last_tick_end: Option<(u64, u64)>,
}

impl Client {
    /// Connect over TCP and complete the `HELLO` handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(Stream::Tcp(stream))
    }

    /// Speak the protocol over an already-connected [`Stream`] (TCP or
    /// the in-process memory transport) and complete the `HELLO`
    /// handshake.
    pub fn from_stream(stream: Stream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        let reader = FrameReader::new(stream.try_clone()?);
        let mut c = Client {
            stream,
            reader,
            next_token: 1,
            answers: BTreeMap::new(),
            last_tick_end: None,
        };
        c.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match c.wait_event(Duration::from_secs(10))? {
            Event::Error { message, .. } => Err(ClientError::Handshake(message)),
            _ => Ok(c), // HelloAck (the only other pre-subscribe frame)
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }

    /// Insert or move an object.
    pub fn upsert(&mut self, id: u32, kind: ObjectKind, x: f64, y: f64) -> Result<(), ClientError> {
        self.send(&Frame::UpsertObject { id, kind, x, y })
    }

    /// Remove an object.
    pub fn remove_object(&mut self, id: u32) -> Result<(), ClientError> {
        self.send(&Frame::RemoveObject { id })
    }

    /// Subscribe a continuous query anchored at `anchor`; blocks for
    /// the `SUBSCRIBED` ack and returns the subscription id.
    ///
    /// A semantically invalid subscription (unknown anchor, wrong kind,
    /// `k == 0`) is still acknowledged — the rejection arrives
    /// afterwards as an [`Event::Error`] and the sid never produces
    /// deltas.
    ///
    /// # Errors
    /// [`ClientError::Server`] when the server pushes an `ERROR` frame
    /// while the ack is awaited (e.g. the connection is being rejected),
    /// instead of spinning until a generic [`ClientError::TimedOut`].
    pub fn subscribe(&mut self, anchor: u32, algo: Algorithm) -> Result<u32, ClientError> {
        self.subscribe_in(anchor, algo, DistanceMode::Euclidean)
    }

    /// [`Client::subscribe`] with an explicit distance mode (protocol
    /// v2; Euclidean encodes identically to v1).
    ///
    /// # Errors
    /// As [`Client::subscribe`].
    pub fn subscribe_in(
        &mut self,
        anchor: u32,
        algo: Algorithm,
        mode: DistanceMode,
    ) -> Result<u32, ClientError> {
        let token = self.next_token;
        self.next_token += 1;
        self.send(&Frame::Subscribe {
            token,
            anchor,
            algo,
            mode,
        })?;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let remain = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ClientError::TimedOut)?;
            match self.wait_event(remain)? {
                Event::Subscribed { token: t, sid } if t == token => {
                    self.answers.entry(sid).or_default();
                    return Ok(sid);
                }
                Event::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => continue,
            }
        }
    }

    /// Drop a subscription (fire-and-forget; the `UNSUBSCRIBED` ack
    /// arrives as an event).
    pub fn unsubscribe(&mut self, sid: u32) -> Result<(), ClientError> {
        self.send(&Frame::Unsubscribe { sid })
    }

    /// Force an immediate tick (the manual-mode driver).
    pub fn step(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Step)
    }

    /// Round-trip a `PING`; returns when the matching `PONG` arrives.
    ///
    /// # Errors
    /// [`ClientError::Server`] when an `ERROR` frame arrives while the
    /// `PONG` is awaited (the failure, not a generic timeout).
    pub fn ping(&mut self, nonce: u64) -> Result<(), ClientError> {
        self.send(&Frame::Ping { nonce })?;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let remain = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ClientError::TimedOut)?;
            match self.wait_event(remain)? {
                Event::Pong { nonce: n } if n == nonce => return Ok(()),
                Event::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => continue,
            }
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)
    }

    /// Current materialised answer of `sid`, sorted by object id.
    pub fn answer(&self, sid: u32) -> Vec<u32> {
        self.answers
            .get(&sid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// `(tick, stamp_nanos)` of the last `TICK_END` seen.
    pub fn last_tick_end(&self) -> Option<(u64, u64)> {
        self.last_tick_end
    }

    /// Read the next pushed frame, folding answer deltas into the local
    /// state; `Ok(None)` when `timeout` elapses with no frame.
    pub fn poll_event(&mut self, timeout: Duration) -> Result<Option<Event>, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.reader.poll() {
                Ok(ReadOutcome::Frame(frame)) => return Ok(Some(self.apply(frame))),
                // Forward compatibility: skip frame types newer than
                // this client.
                Ok(ReadOutcome::Skipped(_)) => {}
                Ok(ReadOutcome::Idle) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Ok(ReadOutcome::Eof) => return Err(ClientError::Closed),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// As [`poll_event`](Client::poll_event) but a missing frame is an
    /// error.
    pub fn wait_event(&mut self, timeout: Duration) -> Result<Event, ClientError> {
        self.poll_event(timeout)?.ok_or(ClientError::TimedOut)
    }

    /// Consume events until the `TICK_END` of a tick `>= min_tick`;
    /// returns its `(tick, stamp_nanos)`.
    pub fn wait_tick_end(
        &mut self,
        min_tick: u64,
        timeout: Duration,
    ) -> Result<(u64, u64), ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remain = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ClientError::TimedOut)?;
            if let Event::TickEnd { tick, stamp_nanos } = self.wait_event(remain)? {
                if tick >= min_tick {
                    return Ok((tick, stamp_nanos));
                }
            }
        }
    }

    fn apply(&mut self, frame: Frame) -> Event {
        match frame {
            Frame::HelloAck { version } => Event::HelloAck { version },
            Frame::Subscribed { token, sid } => Event::Subscribed { token, sid },
            Frame::Unsubscribed { sid } => {
                self.answers.remove(&sid);
                Event::Unsubscribed { sid }
            }
            Frame::TickDelta {
                tick,
                stamp_nanos,
                sid,
                snapshot,
                adds,
                removes,
            } => {
                let entry = self.answers.entry(sid).or_default();
                if snapshot {
                    entry.clear();
                }
                for id in &removes {
                    entry.remove(id);
                }
                entry.extend(adds.iter().copied());
                Event::Delta {
                    tick,
                    stamp_nanos,
                    sid,
                    snapshot,
                    adds,
                    removes,
                }
            }
            Frame::TickEnd { tick, stamp_nanos } => {
                self.last_tick_end = Some((tick, stamp_nanos));
                Event::TickEnd { tick, stamp_nanos }
            }
            Frame::Pong { nonce } => Event::Pong { nonce },
            Frame::Error { code, message } => Event::Error { code, message },
            // Client→server frame types can only appear here if the
            // server is broken; surface them as an error event instead
            // of panicking.
            other => Event::Error {
                code: ErrorCode::Malformed,
                message: format!("unexpected {} frame from server", other.type_name()),
            },
        }
    }

    /// Send raw bytes on the wire — test hook for malformed-frame
    /// injection.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Tune how long an empty [`poll_event`](Client::poll_event) blocks
    /// on the socket (default 25ms). Throughput-sensitive drivers that
    /// interleave sends with opportunistic drains want this near zero.
    pub fn set_read_timeout(&mut self, d: Duration) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(Some(d))?;
        Ok(())
    }
}
