//! End-to-end durability tests over the in-memory transport: a served
//! workload is crash-killed (no final tick, no clean snapshot) and the
//! restarted server must recover to the exact pre-kill state digest,
//! re-attach re-subscribed clients to their recovered queries, and —
//! after a *graceful* stop — restart by replaying zero log records.

use std::path::{Path, PathBuf};
use std::time::Duration;

use igern_core::obs::MetricsRegistry;
use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_core::SpatialStore;
use igern_geom::Aabb;
use igern_mobgen::rng::Rng64;
use igern_server::{memory_listener, Client, Listener, MemConnector, Server, ServerConfig, Stream};
use igern_wal::{state_digest, SubSpec, WalOptions};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igern-srv-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn boot(dir: &Path, snapshot_every: u64) -> (Server, MemConnector) {
    let mut wal = WalOptions::new(dir);
    wal.snapshot_every = snapshot_every;
    let cfg = ServerConfig {
        space: Aabb::from_coords(0.0, 0.0, 100.0, 100.0),
        grid: 8,
        wal: Some(wal),
        ..ServerConfig::default()
    };
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    let (listener, connector) = memory_listener();
    let srv = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
        .expect("server boots");
    (srv, connector)
}

fn connect(connector: &MemConnector) -> Client {
    Client::from_stream(Stream::Mem(connector.connect().unwrap())).expect("handshake")
}

/// Drive `ticks` manual ticks, jittering object positions in between,
/// and return the tick the server last closed.
fn churn(c: &mut Client, rng: &mut Rng64, ids: &[u32], from_tick: u64, ticks: u64) -> u64 {
    let mut last = from_tick;
    for _ in 0..ticks {
        for &id in ids {
            if rng.next_u64().is_multiple_of(3) {
                let x = rng.f64() * 100.0;
                let y = rng.f64() * 100.0;
                c.upsert(id, ObjectKind::A, x, y).unwrap();
            }
        }
        c.step().unwrap();
        last = c
            .wait_tick_end(last + 1, Duration::from_secs(10))
            .unwrap()
            .0;
    }
    last
}

#[test]
fn crash_recovers_to_pre_kill_digest_and_reattaches_subs() {
    let dir = tmp_dir("crash");
    let (mut srv, connector) = boot(&dir, 4);
    assert!(srv.recovery().is_none(), "fresh directory recovers nothing");

    let mut c = connect(&connector);
    let ids: Vec<u32> = (1..=20).collect();
    let mut rng = Rng64::seed_from_u64(0xD00D);
    for &id in &ids {
        let x = rng.f64() * 100.0;
        let y = rng.f64() * 100.0;
        c.upsert(id, ObjectKind::A, x, y).unwrap();
    }
    let sid1 = c.subscribe(5, Algorithm::IgernMono).unwrap();
    let sid2 = c.subscribe(12, Algorithm::Knn(3)).unwrap();

    // Snapshot cadence of 4 over 10 ticks: recovery must combine the
    // newest snapshot (tick 8) with a replayed segment tail.
    let tick = churn(&mut c, &mut rng, &ids, 0, 10);
    assert_eq!(tick, 10);
    let a1 = c.answer(sid1);
    let a2 = c.answer(sid2);
    let subs = [
        SubSpec {
            sid: sid1,
            anchor: 5,
            algo: Algorithm::IgernMono,
            mode: DistanceMode::Euclidean,
        },
        SubSpec {
            sid: sid2,
            anchor: 12,
            algo: Algorithm::Knn(3),
            mode: DistanceMode::Euclidean,
        },
    ];
    let answers: Vec<Vec<igern_grid::ObjectId>> = [&a1, &a2]
        .iter()
        .map(|a| a.iter().map(|&id| igern_grid::ObjectId(id)).collect())
        .collect();
    let expected = state_digest(tick, &subs, |s| {
        if s.sid == sid1 {
            &answers[0]
        } else {
            &answers[1]
        }
    });

    srv.crash();
    drop(connector);

    let (mut srv2, connector2) = boot(&dir, 4);
    let rec = srv2.recovery().expect("state was recovered").clone();
    assert_eq!(rec.tick, tick, "recovered to the last closed tick");
    assert_eq!(rec.objects, ids.len());
    assert_eq!(rec.subs, 2);
    assert_eq!(
        rec.digest, expected,
        "recovered digest matches the pre-kill client view"
    );
    assert!(rec.report.clean(), "in-process crash loses nothing");
    assert!(
        rec.report.snapshot.is_some(),
        "recovery started from the periodic snapshot"
    );
    assert!(rec.report.replayed_records > 0, "a tail was replayed");

    // Re-subscribing the same (anchor, algo) claims the recovered
    // orphan: the first pushed snapshot delta must reproduce the
    // pre-kill answer exactly, without re-sending history.
    let mut c2 = connect(&connector2);
    let nsid1 = c2.subscribe(5, Algorithm::IgernMono).unwrap();
    let nsid2 = c2.subscribe(12, Algorithm::Knn(3)).unwrap();
    c2.step().unwrap();
    let (t2, _) = c2.wait_tick_end(tick + 1, Duration::from_secs(10)).unwrap();
    assert_eq!(t2, tick + 1, "logical tick continues past the crash");
    assert_eq!(c2.answer(nsid1), a1);
    assert_eq!(c2.answer(nsid2), a2);

    // The claimed queries keep evolving: more churn works normally.
    let mut rng2 = Rng64::seed_from_u64(0xBEEF);
    churn(&mut c2, &mut rng2, &ids, t2, 3);

    srv2.stop();
    drop(c2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graceful_stop_then_restart_replays_zero_records() {
    let dir = tmp_dir("graceful");
    let (mut srv, connector) = boot(&dir, 0); // no periodic snapshots
    let mut c = connect(&connector);
    let ids: Vec<u32> = (1..=12).collect();
    let mut rng = Rng64::seed_from_u64(7);
    for &id in &ids {
        let x = rng.f64() * 100.0;
        let y = rng.f64() * 100.0;
        c.upsert(id, ObjectKind::A, x, y).unwrap();
    }
    let sid = c.subscribe(3, Algorithm::IgernMonoK(2)).unwrap();
    let tick = churn(&mut c, &mut rng, &ids, 0, 5);
    let answer = c.answer(sid);

    srv.stop(); // graceful: final tick + clean snapshot + segment reclaim
    drop(c);
    drop(connector);

    let segs = igern_wal::segment_paths(&dir).unwrap();
    assert!(segs.is_empty(), "clean shutdown reclaims every segment");

    let (mut srv2, connector2) = boot(&dir, 0);
    let rec = srv2.recovery().expect("clean snapshot recovered").clone();
    assert_eq!(
        rec.report.replayed_records, 0,
        "graceful restart replays nothing"
    );
    assert_eq!(rec.report.replayed_ticks, 0);
    assert!(rec.report.clean());
    assert_eq!(rec.subs, 1);
    // The graceful path runs one final (empty) tick after the last
    // client-observed one.
    assert_eq!(rec.tick, tick + 1);

    let mut c2 = connect(&connector2);
    let nsid = c2.subscribe(3, Algorithm::IgernMonoK(2)).unwrap();
    c2.step().unwrap();
    c2.wait_tick_end(rec.tick + 1, Duration::from_secs(10))
        .unwrap();
    assert_eq!(c2.answer(nsid), answer, "answer survives a clean restart");

    srv2.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unclaimed_orphans_keep_evaluating_and_can_be_unsubscribed_later() {
    let dir = tmp_dir("orphan");
    let (mut srv, connector) = boot(&dir, 0);
    let mut c = connect(&connector);
    for id in 1..=8u32 {
        c.upsert(id, ObjectKind::A, id as f64 * 3.0, 50.0).unwrap();
    }
    c.subscribe(4, Algorithm::IgernMono).unwrap();
    c.subscribe(6, Algorithm::Knn(2)).unwrap();
    c.step().unwrap();
    c.wait_tick_end(1, Duration::from_secs(10)).unwrap();
    srv.crash();
    drop(c);
    drop(connector);

    let (mut srv2, connector2) = boot(&dir, 0);
    assert_eq!(srv2.recovery().unwrap().subs, 2);

    // Claim only ONE of the two orphans; the other keeps running
    // headless (no connection) without blocking ticks.
    let mut c2 = connect(&connector2);
    let sid = c2.subscribe(4, Algorithm::IgernMono).unwrap();
    c2.step().unwrap();
    c2.wait_tick_end(2, Duration::from_secs(10)).unwrap();
    assert!(!c2.answer(sid).is_empty() || c2.answer(sid).is_empty()); // reachable

    // A *different* algo on the same anchor must NOT claim the orphan:
    // it registers a brand-new query.
    let other = c2.subscribe(4, Algorithm::Knn(1)).unwrap();
    assert_ne!(other, sid);

    srv2.stop();
    drop(c2);
    std::fs::remove_dir_all(&dir).unwrap();
}
