//! Decode-edge tests for the wire protocol, driven through the public
//! [`igern_server::proto`] surface: length prefixes split across
//! reads, hostile length prefixes, forward-compatible skipping of
//! unknown frame types, and a seeded byte-mangling fuzz loop over
//! whole streams.

use std::io::{self, Read};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_mobgen::rng::Rng64;
use igern_server::proto::{Frame, FrameError, FrameReader, ProtoError, ReadOutcome, MAX_FRAME_LEN};

/// A representative frame per wire shape, shared by the table-driven
/// tests below.
fn frame_table() -> Vec<Frame> {
    vec![
        Frame::Hello { version: 1 },
        Frame::HelloAck { version: 1 },
        Frame::UpsertObject {
            id: 7,
            kind: ObjectKind::B,
            x: -3.25,
            y: 1e9,
        },
        Frame::RemoveObject { id: 42 },
        Frame::Subscribe {
            token: 9,
            anchor: 3,
            algo: Algorithm::IgernBiK(5),
            mode: DistanceMode::Euclidean,
        },
        Frame::Unsubscribe { sid: 2 },
        Frame::Ping { nonce: u64::MAX },
        Frame::Step,
        Frame::Shutdown,
        Frame::Subscribed { token: 9, sid: 2 },
        Frame::Unsubscribed { sid: 2 },
        Frame::TickDelta {
            tick: 11,
            stamp_nanos: 17,
            sid: 2,
            snapshot: false,
            adds: vec![1, 2, 3],
            removes: vec![4],
        },
        Frame::TickEnd {
            tick: 11,
            stamp_nanos: 17,
        },
        Frame::Pong { nonce: 0 },
    ]
}

/// Feeds a byte script `chunk` bytes per read, returning `WouldBlock`
/// before every burst — a socket whose read timeout keeps firing
/// mid-frame.
struct Trickle {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
    blocked: bool,
}

impl Trickle {
    fn new(data: Vec<u8>, chunk: usize) -> Self {
        Trickle {
            data,
            pos: 0,
            chunk,
            blocked: false,
        }
    }
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        if !self.blocked {
            self.blocked = true;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        self.blocked = false;
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Poll until something other than `Idle` comes out, counting the
/// idles along the way.
fn poll_through<R: Read>(r: &mut FrameReader<R>) -> (ReadOutcome, u32) {
    let mut idles = 0;
    loop {
        match r.poll().expect("stream is well-formed") {
            ReadOutcome::Idle => idles += 1,
            other => return (other, idles),
        }
    }
}

#[test]
fn length_prefix_split_across_reads_resumes_without_desync() {
    // Every frame shape, delivered one byte per read with a timeout
    // before each byte: the reader must surface Idle (not error, not a
    // partial frame) and keep all accumulated state, including a
    // length prefix split at every possible point.
    for frame in frame_table() {
        let wire = frame.encode();
        let wire_len = wire.len();
        let mut r = FrameReader::new(Trickle::new(wire, 1));
        let (out, idles) = poll_through(&mut r);
        match out {
            ReadOutcome::Frame(got) => assert_eq!(got, frame),
            other => panic!("{frame:?}: wrong outcome {other:?}"),
        }
        assert_eq!(
            idles as usize, wire_len,
            "{frame:?}: one WouldBlock per byte must surface as Idle"
        );
        assert!(matches!(poll_through(&mut r).0, ReadOutcome::Eof));
    }

    // Two frames back to back through a 3-byte trickle: the tail of
    // one read never bleeds into or truncates the next frame.
    let mut wire = Frame::Step.encode();
    wire.extend(Frame::Ping { nonce: 5 }.encode());
    let mut r = FrameReader::new(Trickle::new(wire, 3));
    assert!(matches!(
        poll_through(&mut r).0,
        ReadOutcome::Frame(Frame::Step)
    ));
    assert!(matches!(
        poll_through(&mut r).0,
        ReadOutcome::Frame(Frame::Ping { nonce: 5 })
    ));
    assert!(matches!(poll_through(&mut r).0, ReadOutcome::Eof));
}

#[test]
fn hostile_length_prefixes_are_rejected_at_the_boundary() {
    // Table of (length prefix, expected outcome). The cap is
    // inclusive: exactly MAX_FRAME_LEN is still a legal envelope.
    let over = (MAX_FRAME_LEN + 1) as u32;
    for (len, ok) in [
        (0u32, false),
        (over, false),
        (u32::MAX, false),
        (MAX_FRAME_LEN as u32, true),
    ] {
        let mut wire = len.to_le_bytes().to_vec();
        if ok {
            // Fill the payload with an unknown type so the envelope is
            // consumed without needing a valid body of that size.
            wire.resize(4 + len as usize, 0);
            wire[4] = 0xEE;
        }
        let mut r = FrameReader::new(&wire[..]);
        match r.poll() {
            Err(FrameError::Proto(ProtoError::BadLength(l))) => {
                assert!(!ok, "length {len} wrongly rejected");
                assert_eq!(l, len);
            }
            Ok(ReadOutcome::Skipped(0xEE)) => assert!(ok, "length {len} wrongly accepted"),
            other => panic!("length {len}: unexpected {other:?}"),
        }
    }
}

#[test]
fn unknown_frame_types_are_skipped_not_fatal() {
    // A newer peer interleaves frame types this build has never heard
    // of; the length prefix delimits them, so known traffic on either
    // side must decode untouched. Type bytes 9–15 and 23+ are outside
    // both the request and push ranges today.
    let mut wire = Frame::Ping { nonce: 1 }.encode();
    for (ty, body) in [(9u8, vec![]), (15, vec![1, 2, 3]), (0xEE, vec![0; 40])] {
        let mut unknown = vec![0u8; 4];
        unknown[0] = (1 + body.len()) as u8; // little-endian length
        unknown.push(ty);
        unknown.extend(body);
        wire.extend(unknown);
    }
    wire.extend(Frame::Step.encode());

    // Whole-buffer and byte-trickled delivery agree on the outcome
    // sequence.
    for chunk in [usize::MAX, 1] {
        let mut r = FrameReader::new(Trickle::new(wire.clone(), chunk));
        assert!(matches!(
            poll_through(&mut r).0,
            ReadOutcome::Frame(Frame::Ping { nonce: 1 })
        ));
        for want in [9u8, 15, 0xEE] {
            match poll_through(&mut r).0 {
                ReadOutcome::Skipped(ty) => assert_eq!(ty, want),
                other => panic!("expected Skipped({want}), got {other:?}"),
            }
        }
        assert!(matches!(
            poll_through(&mut r).0,
            ReadOutcome::Frame(Frame::Step)
        ));
        assert!(matches!(poll_through(&mut r).0, ReadOutcome::Eof));
    }

    // A genuinely malformed *known* type is still fatal: same envelope,
    // type byte 2 (UPSERT_OBJECT) with a truncated body.
    let mut r = FrameReader::new(&[3u8, 0, 0, 0, 2, 1, 2][..]);
    assert!(matches!(r.poll(), Err(FrameError::Proto(_))));
}

#[test]
fn fuzz_mangled_streams_never_desync_the_frames_before_the_damage() {
    let mut rng = Rng64::seed_from_u64(0x9e3d);
    let table = frame_table();
    for _ in 0..300 {
        // A stream of random known frames...
        let picks: Vec<&Frame> = (0..rng.gen_range(2..6))
            .map(|_| &table[rng.gen_range(0..table.len())])
            .collect();
        let mut wire = Vec::new();
        let mut starts = Vec::new();
        for f in &picks {
            starts.push(wire.len());
            wire.extend(f.encode());
        }
        // ...with one byte mangled somewhere.
        let at = rng.gen_range(0..wire.len());
        let delta = rng.gen_range(1..256) as u8;
        wire[at] ^= delta;

        // Every frame that ends at or before the damaged byte must
        // come out untouched (the reader never over-reads past the
        // frame it is assembling); from the damage on, anything
        // non-panicking goes — an error, a skip, EOF, or even a
        // differently-decoded frame.
        let mut r = FrameReader::new(Trickle::new(wire.clone(), rng.gen_range(1..9)));
        for (&start, f) in starts.iter().zip(&picks) {
            if start + f.encode().len() > at {
                break;
            }
            match poll_through(&mut r).0 {
                ReadOutcome::Frame(got) => assert_eq!(&got, *f),
                other => panic!("pre-damage frame became {other:?}"),
            }
        }
        // Drain the rest; nothing may panic and errors terminate.
        loop {
            match r.poll() {
                Ok(ReadOutcome::Eof) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }
}
