//! Reactor-backend I/O edge tests: frames trickled byte-by-byte over a
//! real TCP socket, forced short writes through a tiny in-memory pipe,
//! byte-identical push streams against the threaded backend for the
//! same client script, a 1k-connection subscribe/churn smoke test, and
//! the graceful-shutdown drain deadline for consumers that stop
//! reading.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use igern_core::obs::MetricsRegistry;
use igern_core::processor::Algorithm;
use igern_core::types::DistanceMode;
use igern_core::types::ObjectKind;
use igern_core::SpatialStore;
use igern_geom::Aabb;
use igern_mobgen::rng::Rng64;
use igern_server::proto::{Frame, FrameReader, ReadOutcome};
use igern_server::{
    memory_listener, memory_listener_with_capacity, Client, IoBackend, Listener, MemConnector,
    Server, ServerConfig, SlowConsumerPolicy, Stream, PROTOCOL_VERSION,
};

fn base_cfg(io: IoBackend) -> ServerConfig {
    ServerConfig {
        space: Aabb::from_coords(0.0, 0.0, 100.0, 100.0),
        grid: 8,
        io,
        ..ServerConfig::default()
    }
}

fn boot_mem(cfg: ServerConfig) -> (Server, MemConnector) {
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    let (listener, connector) = memory_listener();
    let srv = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
        .expect("server boots");
    (srv, connector)
}

/// Pull the next decoded frame out of `r`, tolerating `Idle` (read
/// timeouts) up to `deadline`.
fn next_frame<R: Read>(r: &mut FrameReader<R>, deadline: Duration) -> Frame {
    let t0 = Instant::now();
    loop {
        match r.poll().expect("stream is well-formed") {
            ReadOutcome::Frame(f) => return f,
            ReadOutcome::Eof => panic!("unexpected EOF while waiting for a frame"),
            _ => {
                assert!(
                    t0.elapsed() < deadline,
                    "timed out waiting for a frame after {deadline:?}"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// A wall-clock stamp is the one field allowed to differ between two
/// otherwise identical runs; zero it before comparing streams.
fn zero_stamp(f: Frame) -> Frame {
    match f {
        Frame::TickDelta {
            tick,
            sid,
            snapshot,
            adds,
            removes,
            ..
        } => Frame::TickDelta {
            tick,
            stamp_nanos: 0,
            sid,
            snapshot,
            adds,
            removes,
        },
        Frame::TickEnd { tick, .. } => Frame::TickEnd {
            tick,
            stamp_nanos: 0,
        },
        other => other,
    }
}

/// Frames dribbled into a TCP socket in tiny random bursts must
/// reassemble exactly: the reactor's resumable reader may see a length
/// prefix split anywhere and a readiness wakeup per byte.
#[test]
fn trickled_tcp_bytes_reassemble_without_desync() {
    let cfg = base_cfg(IoBackend::Reactor);
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    let srv = Server::start(("127.0.0.1", 0), store, cfg).expect("server boots");
    let mut rng = Rng64::seed_from_u64(0x7121C);

    for round in 0u64..6 {
        let sock = TcpStream::connect(srv.local_addr()).unwrap();
        sock.set_nodelay(true).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();

        let mut script = Frame::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode();
        for id in 1..=20u32 {
            script.extend(
                Frame::UpsertObject {
                    id,
                    kind: ObjectKind::A,
                    x: rng.f64() * 100.0,
                    y: rng.f64() * 100.0,
                }
                .encode(),
            );
        }
        script.extend(
            Frame::Subscribe {
                token: 7,
                anchor: 3,
                algo: Algorithm::IgernMono,
                mode: DistanceMode::Euclidean,
            }
            .encode(),
        );
        script.extend(Frame::Ping { nonce: round }.encode());
        script.extend(Frame::Step.encode());

        // Dribble the whole script in 1–3 byte bursts with occasional
        // pauses, so mid-frame wakeups are the common case.
        let mut w = sock.try_clone().unwrap();
        let mut pos = 0;
        while pos < script.len() {
            let n = rng.gen_range(1..4).min(script.len() - pos);
            w.write_all(&script[pos..pos + n]).unwrap();
            pos += n;
            if rng.next_u64().is_multiple_of(8) {
                std::thread::sleep(Duration::from_micros(200));
            }
        }

        let wait = Duration::from_secs(10);
        let mut r = FrameReader::new(sock);
        assert_eq!(
            next_frame(&mut r, wait),
            Frame::HelloAck {
                version: PROTOCOL_VERSION
            }
        );
        // PONG is answered inline by the event loop while SUBSCRIBED
        // rides the tick thread, so the pair may arrive in either
        // order — but the ack must still precede the first delta.
        let mut sid = None;
        let mut ponged = false;
        for _ in 0..2 {
            match next_frame(&mut r, wait) {
                Frame::Subscribed { token: 7, sid: s } => sid = Some(s),
                Frame::Pong { nonce } if nonce == round => ponged = true,
                other => panic!("expected Subscribed or Pong, got {other:?}"),
            }
        }
        let sid = sid.expect("Subscribed ack arrived");
        assert!(ponged, "Pong arrived");
        match next_frame(&mut r, wait) {
            Frame::TickDelta {
                tick,
                sid: got,
                snapshot,
                ..
            } => {
                assert_eq!(tick, round + 1);
                assert_eq!(got, sid);
                assert!(snapshot, "first push after subscribe is a snapshot");
            }
            other => panic!("expected the snapshot delta, got {other:?}"),
        }
        match next_frame(&mut r, wait) {
            Frame::TickEnd { tick, .. } => assert_eq!(tick, round + 1),
            other => panic!("expected TickEnd, got {other:?}"),
        }
    }
}

/// Push frames far larger than the transport's whole buffer: the
/// memory pipe admits whole frames but blocks between them, so every
/// flush stalls repeatedly and must resume via write readiness. The
/// stream must stay intact throughout.
#[test]
fn blocked_flushes_resume_through_a_tiny_pipe() {
    let cfg = ServerConfig {
        outbound_queue_frames: 1 << 14,
        ..base_cfg(IoBackend::Reactor)
    };
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    // 48-byte pipes: a modest TickDelta overshoots the whole buffer,
    // so the next flush always finds the pipe full and must wait for
    // the write-readiness callback.
    let (listener, connector) = memory_listener_with_capacity(48);
    let mut srv = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
        .expect("server boots");

    let mut c = Client::from_stream(Stream::Mem(connector.connect().unwrap())).unwrap();
    let mut rng = Rng64::seed_from_u64(0x5807);
    for id in 1..=120u32 {
        c.upsert(id, ObjectKind::A, rng.f64() * 100.0, rng.f64() * 100.0)
            .unwrap();
    }
    let sid = c.subscribe(1, Algorithm::Knn(64)).unwrap();
    for tick in 1..=3u64 {
        for _ in 0..30 {
            let id = rng.gen_range(1..121) as u32;
            c.upsert(id, ObjectKind::A, rng.f64() * 100.0, rng.f64() * 100.0)
                .unwrap();
        }
        c.step().unwrap();
        c.wait_tick_end(tick, Duration::from_secs(10)).unwrap();
    }
    assert_eq!(c.answer(sid).len(), 64, "64-NN answer arrived complete");
    srv.shutdown();
    srv.wait();
}

/// Genuine short writes over TCP: a minimum-size `SO_SNDBUF` on the
/// accepted socket cannot hold one ~100KB snapshot frame, so the
/// kernel accepts a prefix and the state machine must resume
/// mid-frame. The answer must arrive byte-exact and the resumption
/// counter must move.
#[test]
fn tcp_short_writes_resume_mid_frame() {
    let cfg = ServerConfig {
        tcp_send_buffer: Some(1), // kernel clamps to its minimum
        outbound_queue_frames: 1 << 14,
        ..base_cfg(IoBackend::Reactor)
    };
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    let mut srv = Server::start(("127.0.0.1", 0), store, cfg).expect("server boots");

    let mut c = Client::connect(srv.local_addr()).unwrap();
    let mut rng = Rng64::seed_from_u64(0x5808);
    for id in 1..=30_000u32 {
        c.upsert(id, ObjectKind::A, rng.f64() * 100.0, rng.f64() * 100.0)
            .unwrap();
    }
    // k = 25000 → a ~100KB snapshot TickDelta. That exceeds both the
    // clamped send buffer and a single loopback skb, so the kernel can
    // only take a prefix per write and the flush must resume mid-frame.
    let sid = c.subscribe(1, Algorithm::Knn(25_000)).unwrap();
    c.step().unwrap();
    c.wait_tick_end(1, Duration::from_secs(30)).unwrap();
    assert_eq!(
        c.answer(sid).len(),
        25_000,
        "25000-NN answer arrived complete"
    );

    let resumed = srv
        .registry()
        .counter("igern_server_reactor_short_write_resumptions_total")
        .get();
    assert!(
        resumed > 0,
        "a 100KB frame through a minimum send buffer must short-write at least once"
    );
    srv.shutdown();
    srv.wait();
}

/// Run one deterministic client script against a backend and return
/// every pushed frame, in order, with wall-clock stamps zeroed.
fn scripted_stream(io: IoBackend) -> Vec<u8> {
    let (mut srv, connector) = boot_mem(base_cfg(io));
    let stream = Stream::Mem(connector.connect().unwrap());
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = FrameReader::new(stream);
    let wait = Duration::from_secs(10);
    let mut got: Vec<Frame> = Vec::new();

    let send = |w: &mut Stream, f: Frame| w.write_all(&f.encode()).unwrap();
    send(
        &mut w,
        Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    );
    got.push(next_frame(&mut r, wait));

    let mut rng = Rng64::seed_from_u64(0xB17E);
    for id in 1..=40u32 {
        send(
            &mut w,
            Frame::UpsertObject {
                id,
                kind: ObjectKind::A,
                x: rng.f64() * 100.0,
                y: rng.f64() * 100.0,
            },
        );
    }
    for (token, anchor, algo) in [
        (1u32, 5u32, Algorithm::IgernMono),
        (2, 12, Algorithm::Knn(4)),
    ] {
        send(
            &mut w,
            Frame::Subscribe {
                token,
                anchor,
                algo,
                mode: DistanceMode::Euclidean,
            },
        );
        got.push(next_frame(&mut r, wait));
    }

    for tick in 1..=5u64 {
        for _ in 0..12 {
            let id = rng.gen_range(1..41) as u32;
            if rng.next_u64().is_multiple_of(5) {
                send(&mut w, Frame::RemoveObject { id });
            } else {
                send(
                    &mut w,
                    Frame::UpsertObject {
                        id,
                        kind: ObjectKind::A,
                        x: rng.f64() * 100.0,
                        y: rng.f64() * 100.0,
                    },
                );
            }
        }
        send(&mut w, Frame::Step);
        loop {
            let f = next_frame(&mut r, wait);
            let done = matches!(f, Frame::TickEnd { tick: t, .. } if t == tick);
            got.push(f);
            if done {
                break;
            }
        }
    }

    send(&mut w, Frame::Shutdown);
    loop {
        match r.poll().expect("stream is well-formed") {
            ReadOutcome::Frame(f) => got.push(f),
            ReadOutcome::Eof => break,
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    srv.wait();

    got.into_iter()
        .flat_map(|f| zero_stamp(f).encode())
        .collect()
}

/// The same lockstep script against both backends must produce
/// byte-identical server→client streams (modulo wall-clock stamps):
/// the reactor is a transport change, not a protocol change.
#[test]
fn reactor_and_threads_push_byte_identical_streams() {
    let reactor = scripted_stream(IoBackend::Reactor);
    let threads = scripted_stream(IoBackend::Threads);
    assert_eq!(
        reactor, threads,
        "backends diverged on the same client script"
    );
}

/// 1000 concurrent subscribers on the fixed loop pool: all ack, all
/// see every tick, and closing half is noticed and survived.
#[test]
fn a_thousand_subscribers_tick_and_churn() {
    let (mut srv, connector) = boot_mem(base_cfg(IoBackend::Reactor));
    let mut rng = Rng64::seed_from_u64(0x1000);

    let mut clients: Vec<Client> = (0..1000)
        .map(|_| Client::from_stream(Stream::Mem(connector.connect().unwrap())).expect("handshake"))
        .collect();
    for id in 1..=50u32 {
        clients[0]
            .upsert(id, ObjectKind::A, rng.f64() * 100.0, rng.f64() * 100.0)
            .unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let anchor = (i % 50 + 1) as u32;
        c.subscribe(anchor, Algorithm::IgernMono)
            .expect("subscribe acks");
    }
    assert_eq!(srv.metrics().connections_active.get(), 1000.0);

    clients[0].step().unwrap();
    for c in clients.iter_mut() {
        c.wait_tick_end(1, Duration::from_secs(30))
            .expect("tick 1 reaches every subscriber");
    }

    // Churn: close every odd connection, keep the evens.
    let mut keep = Vec::with_capacity(500);
    for (i, c) in clients.into_iter().enumerate() {
        if i % 2 == 0 {
            keep.push(c);
        }
    }
    let t0 = Instant::now();
    while srv.metrics().connections_active.get() > 500.0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "server failed to notice 500 closed connections"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    keep[0].step().unwrap();
    for c in keep.iter_mut() {
        c.wait_tick_end(2, Duration::from_secs(30))
            .expect("tick 2 reaches every survivor");
    }
    drop(keep);
    srv.shutdown();
    srv.wait();
}

/// A subscriber that stops reading cannot stall graceful shutdown past
/// the configured drain deadline.
#[test]
fn shutdown_drain_deadline_cuts_slow_consumers() {
    let cfg = ServerConfig {
        shutdown_drain: Duration::from_millis(300),
        slow_consumer: SlowConsumerPolicy::Coalesce,
        outbound_queue_frames: 1 << 14,
        ..base_cfg(IoBackend::Reactor)
    };
    let store = SpatialStore::new(cfg.space, cfg.grid, Vec::new());
    let (listener, connector) = memory_listener_with_capacity(48);
    let mut srv = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
        .expect("server boots");

    let mut driver = Client::from_stream(Stream::Mem(connector.connect().unwrap())).unwrap();
    let mut rng = Rng64::seed_from_u64(0xDEAD);
    for id in 1..=100u32 {
        driver
            .upsert(id, ObjectKind::A, rng.f64() * 100.0, rng.f64() * 100.0)
            .unwrap();
    }
    // TickEnd is only pushed to subscribed connections; the driver
    // needs a (cheap) sub of its own to observe tick boundaries.
    driver.subscribe(2, Algorithm::Knn(1)).unwrap();

    // The slow consumer handshakes and subscribes, then never reads
    // again: its snapshot wedges mid-frame in the 48-byte pipe.
    let lazy = Stream::Mem(connector.connect().unwrap());
    lazy.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut lw = lazy.try_clone().unwrap();
    let mut lr = FrameReader::new(lazy);
    lw.write_all(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .unwrap();
    assert!(matches!(
        next_frame(&mut lr, Duration::from_secs(10)),
        Frame::HelloAck { .. }
    ));
    lw.write_all(
        &Frame::Subscribe {
            token: 1,
            anchor: 1,
            algo: Algorithm::Knn(64),
            mode: DistanceMode::Euclidean,
        }
        .encode(),
    )
    .unwrap();

    driver.step().unwrap();
    driver.wait_tick_end(1, Duration::from_secs(10)).unwrap();

    srv.shutdown();
    let t0 = Instant::now();
    srv.wait();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "drain deadline (300ms) must bound shutdown; took {elapsed:?}"
    );
}
