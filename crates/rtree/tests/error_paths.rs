//! Error-path tests for the R-tree's fallible mutations: rejected
//! operations must return the typed error, leave the tree byte-for-byte
//! functional, and never corrupt the structural invariants.

use igern_geom::Point;
use igern_grid::{ObjectId, OpCounters};
use igern_rtree::{nearest, RTree, RTreeError};

/// Deterministic pseudo-random point from an index (splitmix-style
/// mixing; no RNG dependency needed for these paths).
fn point(i: u64) -> Point {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let x = (z & 0xffff) as f64 / 65.536;
    let y = ((z >> 16) & 0xffff) as f64 / 65.536;
    Point::new(x, y)
}

fn populated(n: u64) -> RTree {
    let mut t = RTree::new();
    for i in 0..n {
        t.insert(ObjectId(i as u32), point(i)).unwrap();
    }
    t
}

#[test]
fn duplicate_insert_is_rejected_and_harmless() {
    let mut t = populated(50);
    let before_len = t.len();
    let before_pos = t.position(ObjectId(7)).unwrap();

    let err = t.insert(ObjectId(7), Point::new(-1.0, -1.0)).unwrap_err();
    assert_eq!(err, RTreeError::DuplicateObject(ObjectId(7)));
    assert!(err.to_string().contains("already in tree"), "{err}");

    // Nothing moved: same length, same position, invariants intact.
    assert_eq!(t.len(), before_len);
    assert_eq!(t.position(ObjectId(7)), Some(before_pos));
    t.check_invariants();

    // The tree stays fully usable after the rejection.
    t.insert(ObjectId(100), Point::new(500.0, 500.0)).unwrap();
    assert_eq!(t.len(), before_len + 1);
    let mut ops = OpCounters::new();
    let hit = nearest(&t, Point::new(500.0, 500.0), None, &mut ops).unwrap();
    assert_eq!(hit.id, ObjectId(100));
}

#[test]
fn update_of_unknown_ids_is_rejected() {
    let mut t = populated(10);

    // Never-seen id, beyond the position table.
    let err = t.update(ObjectId(999), Point::ORIGIN).unwrap_err();
    assert_eq!(err, RTreeError::UnknownObject(ObjectId(999)));
    assert!(err.to_string().contains("not in tree"), "{err}");

    // An id inside the table range but already removed is just as
    // unknown.
    assert!(t.remove(ObjectId(3)).is_some());
    let err = t.update(ObjectId(3), Point::ORIGIN).unwrap_err();
    assert_eq!(err, RTreeError::UnknownObject(ObjectId(3)));

    assert_eq!(t.len(), 9);
    t.check_invariants();

    // Re-inserting the removed id is legal again (the slot was freed).
    t.insert(ObjectId(3), Point::new(1.0, 2.0)).unwrap();
    t.update(ObjectId(3), Point::new(2.0, 1.0)).unwrap();
    assert_eq!(t.position(ObjectId(3)), Some(Point::new(2.0, 1.0)));
}

#[test]
fn remove_of_missing_ids_returns_none() {
    let mut t = populated(5);
    assert_eq!(t.remove(ObjectId(42)), None);
    assert_eq!(t.remove(ObjectId(2)), Some(point(2)));
    // Double remove: the second call finds nothing.
    assert_eq!(t.remove(ObjectId(2)), None);
    assert_eq!(t.len(), 4);
    t.check_invariants();
}

#[test]
fn empty_tree_rejects_everything_gracefully() {
    let mut t = RTree::new();
    assert!(t.is_empty());
    assert_eq!(t.remove(ObjectId(0)), None);
    assert_eq!(
        t.update(ObjectId(0), Point::ORIGIN),
        Err(RTreeError::UnknownObject(ObjectId(0)))
    );
    assert_eq!(t.position(ObjectId(0)), None);
    let mut ops = OpCounters::new();
    assert!(nearest(&t, Point::ORIGIN, None, &mut ops).is_none());
    // Draining a tree to empty and erroring on it keeps it reusable.
    t.insert(ObjectId(0), Point::ORIGIN).unwrap();
    t.remove(ObjectId(0)).unwrap();
    t.insert(ObjectId(0), Point::new(3.0, 4.0)).unwrap();
    assert_eq!(t.len(), 1);
}

#[test]
fn rejected_operations_during_heavy_churn_never_corrupt_the_tree() {
    // Interleave valid churn with systematic invalid calls; the typed
    // errors must be the only observable difference from a clean run.
    let mut t = RTree::new();
    let mut live = std::collections::BTreeSet::new();
    for round in 0u64..400 {
        let id = ObjectId((round % 97) as u32);
        match round % 5 {
            0 | 1 => {
                let r = t.insert(id, point(round));
                assert_eq!(r.is_err(), !live.insert(id), "round {round}");
            }
            2 => {
                let r = t.update(id, point(round + 1000));
                assert_eq!(r.is_err(), !live.contains(&id), "round {round}");
            }
            3 => {
                let r = t.remove(id);
                assert_eq!(r.is_none(), !live.remove(&id), "round {round}");
            }
            _ => {
                // A guaranteed-invalid pair on every pass.
                assert!(t.update(ObjectId(5000), Point::ORIGIN).is_err());
                if let Some(&any) = live.iter().next() {
                    assert!(t.insert(any, Point::ORIGIN).is_err());
                }
            }
        }
        assert_eq!(t.len(), live.len(), "round {round}");
    }
    t.check_invariants();
    // The survivors answer queries exactly.
    let mut ops = OpCounters::new();
    for &id in &live {
        let p = t.position(id).unwrap();
        assert_eq!(nearest(&t, p, None, &mut ops).unwrap().id, id);
    }
}
