//! Native TPL over the R-tree (Tao, Papadias, Lian; VLDB 2004): the
//! filter step repeatedly takes the nearest *unpruned* object, where a
//! whole subtree is pruned as soon as its bounding box lies entirely
//! beyond the perpendicular bisector of any already-found candidate —
//! branch-and-bound exactly as in the original algorithm. The refinement
//! step verifies each candidate with an emptiness test.

use igern_geom::{HalfPlane, Point, RegionSide};
use igern_grid::{ObjectId, OpCounters};

use crate::query::exists_closer_than;
use crate::tree::{Node, RTree};

/// Result of one snapshot evaluation (mirror of the grid-based
/// `igern_core::baselines::TplAnswer`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtreeTplAnswer {
    /// Verified reverse nearest neighbors, sorted by id.
    pub rnn: Vec<ObjectId>,
    /// Filter-step candidates.
    pub candidates: Vec<ObjectId>,
}

/// One snapshot TPL evaluation on the R-tree.
pub fn tpl_snapshot_rtree(
    tree: &RTree,
    q: Point,
    q_id: Option<ObjectId>,
    ops: &mut OpCounters,
) -> RtreeTplAnswer {
    let mut cand: Vec<(ObjectId, Point)> = Vec::new();
    let mut bisectors: Vec<HalfPlane> = Vec::new();
    loop {
        ops.nn_c += 1;
        let found = nearest_unpruned(tree, q, q_id, &cand, &bisectors, ops);
        let Some((id, pos)) = found else { break };
        if let Some(h) = HalfPlane::bisector(q, pos) {
            bisectors.push(h);
        }
        cand.push((id, pos));
    }
    let mut rnn: Vec<ObjectId> = cand
        .iter()
        .filter(|&&(id, pos)| {
            ops.verifications += 1;
            let exclude = match q_id {
                Some(qid) => vec![id, qid],
                None => vec![id],
            };
            !exists_closer_than(tree, pos, pos.dist_sq(q), &exclude, ops)
        })
        .map(|&(id, _)| id)
        .collect();
    rnn.sort_unstable();
    RtreeTplAnswer {
        rnn,
        candidates: cand.into_iter().map(|(id, _)| id).collect(),
    }
}

/// Best-first search for the nearest object not yet a candidate and not
/// pruned by any bisector; subtrees fully beyond a bisector are skipped
/// without descending.
fn nearest_unpruned(
    tree: &RTree,
    q: Point,
    q_id: Option<ObjectId>,
    cand: &[(ObjectId, Point)],
    bisectors: &[HalfPlane],
    ops: &mut OpCounters,
) -> Option<(ObjectId, Point)> {
    // Depth-first branch-and-bound with a best-so-far pruning radius; the
    // tree is shallow, so this beats heap overhead for the small answer
    // sets TPL produces.
    let mut best: Option<(f64, ObjectId, Point)> = None;
    fn walk(
        node: &Node,
        q: Point,
        q_id: Option<ObjectId>,
        cand: &[(ObjectId, Point)],
        bisectors: &[HalfPlane],
        best: &mut Option<(f64, ObjectId, Point)>,
        ops: &mut OpCounters,
    ) {
        ops.cells_visited += 1;
        match node {
            Node::Leaf(es) => {
                for e in es {
                    if Some(e.id) == q_id || cand.iter().any(|&(c, _)| c == e.id) {
                        continue;
                    }
                    ops.objects_visited += 1;
                    let d = q.dist_sq(e.pos);
                    if best.map(|(bd, _, _)| d >= bd).unwrap_or(false) {
                        continue;
                    }
                    // Object-level bisector pruning.
                    if bisectors.iter().any(|h| !h.contains(e.pos)) {
                        continue;
                    }
                    *best = Some((d, e.id, e.pos));
                }
            }
            Node::Internal(cs) => {
                // Visit children in mindist order for tighter bounds.
                let mut order: Vec<(f64, usize)> = cs
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.bbox.mindist_sq(q), i))
                    .collect();
                order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                for (md, i) in order {
                    if best.map(|(bd, _, _)| md >= bd).unwrap_or(false) {
                        break;
                    }
                    let c = &cs[i];
                    // Subtree-level bisector pruning: fully beyond any
                    // candidate bisector ⇒ nothing inside can be an RNN
                    // or a further candidate.
                    if bisectors
                        .iter()
                        .any(|h| h.classify(&c.bbox) == RegionSide::Outside)
                    {
                        continue;
                    }
                    walk(&c.node, q, q_id, cand, bisectors, best, ops);
                }
            }
        }
    }
    walk(&tree.root, q, q_id, cand, bisectors, &mut best, ops);
    best.map(|(_, id, pos)| (id, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(points: &[(f64, f64)]) -> RTree {
        let mut t = RTree::new();
        for (i, &(x, y)) in points.iter().enumerate() {
            t.insert(ObjectId(i as u32), Point::new(x, y)).unwrap();
        }
        t
    }

    /// O(n²) oracle (duplicated from igern-core to avoid a dependency
    /// cycle; the formulas are three lines).
    fn oracle(points: &[(f64, f64)], q: Point, q_id: Option<ObjectId>) -> Vec<ObjectId> {
        let objs: Vec<(ObjectId, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (ObjectId(i as u32), Point::new(x, y)))
            .collect();
        let mut out = Vec::new();
        for &(id, pos) in &objs {
            if Some(id) == q_id {
                continue;
            }
            let d_q = pos.dist_sq(q);
            let blocked = objs
                .iter()
                .any(|&(oid, op)| oid != id && Some(oid) != q_id && pos.dist_sq(op) < d_q);
            if !blocked {
                out.push(id);
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_oracle_on_pseudorandom_data() {
        let mut state = 21u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64
        };
        for round in 0..25 {
            let pts: Vec<(f64, f64)> = (0..80).map(|_| (rnd(), rnd())).collect();
            let t = tree_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let got = tpl_snapshot_rtree(&t, q, None, &mut ops);
            assert_eq!(got.rnn, oracle(&pts, q, None), "round {round}");
            assert!(got.candidates.len() <= 6, "TPL filter bound");
        }
    }

    #[test]
    fn empty_tree_and_query_exclusion() {
        let t = RTree::new();
        let mut ops = OpCounters::new();
        let got = tpl_snapshot_rtree(&t, Point::new(1.0, 1.0), None, &mut ops);
        assert!(got.rnn.is_empty());
        let t2 = tree_with(&[(5.0, 5.0), (4.0, 5.0)]);
        let got2 = tpl_snapshot_rtree(&t2, Point::new(5.0, 5.0), Some(ObjectId(0)), &mut ops);
        assert_eq!(got2.rnn, vec![ObjectId(1)]);
    }

    #[test]
    fn subtree_pruning_reduces_visits() {
        // A big cluster far behind the nearest candidate must be skipped
        // at subtree level.
        let mut pts = vec![(500.0, 500.0), (510.0, 500.0)];
        for i in 0..200 {
            pts.push((900.0 + (i % 20) as f64, 900.0 + (i / 20) as f64));
        }
        let t = tree_with(&pts);
        let mut ops = OpCounters::new();
        let got = tpl_snapshot_rtree(&t, Point::new(495.0, 500.0), None, &mut ops);
        assert_eq!(got.rnn, vec![ObjectId(0)]);
        assert!(
            (ops.objects_visited as usize) < pts.len(),
            "bisector pruning must skip the far cluster ({} visits)",
            ops.objects_visited
        );
    }
}
