//! Best-first search over the R-tree: NN, k-NN, circular range, and the
//! emptiness test (Hjaltason & Samet's incremental-distance browsing).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use igern_geom::{Circle, Point};
use igern_grid::{Neighbor, ObjectId, OpCounters};

use crate::tree::{Node, RTree};

/// Min-heap item: either a subtree (by bbox mindist) or a data entry.
enum HeapItem<'t> {
    Node(f64, &'t Node),
    Entry(f64, ObjectId, Point),
}

impl HeapItem<'_> {
    fn key(&self) -> f64 {
        match self {
            HeapItem::Node(d, _) | HeapItem::Entry(d, _, _) => *d,
        }
    }
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapItem<'_> {}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().total_cmp(&self.key()) // reversed: min-heap
    }
}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Expand a node into the heap.
fn push_node<'t>(
    heap: &mut BinaryHeap<HeapItem<'t>>,
    node: &'t Node,
    q: Point,
    ops: &mut OpCounters,
) {
    ops.cells_visited += 1; // node visits share the grid's cell counter
    match node {
        Node::Leaf(es) => {
            for e in es {
                ops.objects_visited += 1;
                heap.push(HeapItem::Entry(q.dist_sq(e.pos), e.id, e.pos));
            }
        }
        Node::Internal(cs) => {
            for c in cs {
                heap.push(HeapItem::Node(c.bbox.mindist_sq(q), &c.node));
            }
        }
    }
}

/// Nearest neighbor of `q`, optionally excluding one object.
pub fn nearest(
    tree: &RTree,
    q: Point,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Option<Neighbor> {
    k_nearest(tree, q, 1, exclude, ops).into_iter().next()
}

/// The `k` nearest neighbors of `q`, ascending.
pub fn k_nearest(
    tree: &RTree,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Vec<Neighbor> {
    if k == 0 || tree.is_empty() {
        return Vec::new();
    }
    let mut heap = BinaryHeap::new();
    push_node(&mut heap, &tree.root, q, ops);
    let mut out = Vec::with_capacity(k);
    while let Some(item) = heap.pop() {
        match item {
            HeapItem::Node(_, n) => push_node(&mut heap, n, q, ops),
            HeapItem::Entry(d, id, pos) => {
                if Some(id) == exclude {
                    continue;
                }
                out.push(Neighbor {
                    id,
                    pos,
                    dist_sq: d,
                });
                if out.len() == k {
                    break;
                }
            }
        }
    }
    out
}

/// All objects inside the closed disk, in arbitrary order.
pub fn objects_in_circle(
    tree: &RTree,
    circle: &Circle,
    ops: &mut OpCounters,
) -> Vec<(ObjectId, Point)> {
    let r_sq = circle.radius * circle.radius;
    let mut out = Vec::new();
    let mut stack = vec![&tree.root];
    while let Some(node) = stack.pop() {
        ops.cells_visited += 1;
        match node {
            Node::Leaf(es) => {
                for e in es {
                    ops.objects_visited += 1;
                    if circle.center.dist_sq(e.pos) <= r_sq {
                        out.push((e.id, e.pos));
                    }
                }
            }
            Node::Internal(cs) => {
                for c in cs {
                    if c.bbox.mindist_sq(circle.center) <= r_sq {
                        stack.push(&c.node);
                    }
                }
            }
        }
    }
    out
}

/// Whether any object not in `exclude` lies strictly closer than
/// `sqrt(dist_sq)` to `center` (early-exit emptiness test).
pub fn exists_closer_than(
    tree: &RTree,
    center: Point,
    dist_sq: f64,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> bool {
    let mut stack = vec![&tree.root];
    while let Some(node) = stack.pop() {
        ops.cells_visited += 1;
        match node {
            Node::Leaf(es) => {
                for e in es {
                    if exclude.contains(&e.id) {
                        continue;
                    }
                    ops.objects_visited += 1;
                    if center.dist_sq(e.pos) < dist_sq {
                        return true;
                    }
                }
            }
            Node::Internal(cs) => {
                for c in cs {
                    if c.bbox.mindist_sq(center) < dist_sq {
                        stack.push(&c.node);
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(points: &[(f64, f64)]) -> RTree {
        let mut t = RTree::new();
        for (i, &(x, y)) in points.iter().enumerate() {
            t.insert(ObjectId(i as u32), Point::new(x, y)).unwrap();
        }
        t
    }

    fn scatter(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = ((state >> 33) % 1000) as f64;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = ((state >> 33) % 1000) as f64;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = scatter(400, 9);
        let t = tree_with(&pts);
        let mut ops = OpCounters::new();
        for qi in 0..30 {
            let q = Point::new((qi * 37 % 1000) as f64, (qi * 73 % 1000) as f64);
            let got = nearest(&t, q, None, &mut ops).unwrap();
            let want = pts
                .iter()
                .map(|&(x, y)| q.dist_sq(Point::new(x, y)))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(got.dist_sq, want, "query {q}");
        }
    }

    #[test]
    fn k_nearest_sorted_and_exact() {
        let pts = scatter(300, 4);
        let t = tree_with(&pts);
        let q = Point::new(500.0, 500.0);
        let mut ops = OpCounters::new();
        for k in [1usize, 7, 50, 400] {
            let got = k_nearest(&t, q, k, None, &mut ops);
            assert_eq!(got.len(), k.min(300));
            assert!(got.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
            let mut all: Vec<f64> = pts
                .iter()
                .map(|&(x, y)| q.dist_sq(Point::new(x, y)))
                .collect();
            all.sort_by(f64::total_cmp);
            for (i, n) in got.iter().enumerate() {
                assert_eq!(n.dist_sq, all[i], "k={k} rank {i}");
            }
        }
    }

    #[test]
    fn exclusion_and_empty_tree() {
        let t = tree_with(&[(5.0, 5.0), (6.0, 5.0)]);
        let mut ops = OpCounters::new();
        let n = nearest(&t, Point::new(5.0, 5.0), Some(ObjectId(0)), &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(1));
        let empty = RTree::new();
        assert!(nearest(&empty, Point::new(1.0, 1.0), None, &mut ops).is_none());
        assert!(!exists_closer_than(
            &empty,
            Point::new(1.0, 1.0),
            1e9,
            &[],
            &mut ops
        ));
    }

    #[test]
    fn circle_range_matches_filter() {
        let pts = scatter(300, 77);
        let t = tree_with(&pts);
        let c = Circle::new(Point::new(400.0, 600.0), 150.0);
        let mut ops = OpCounters::new();
        let mut got: Vec<u32> = objects_in_circle(&t, &c, &mut ops)
            .into_iter()
            .map(|(id, _)| id.0)
            .collect();
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|&(_, &(x, y))| c.contains(Point::new(x, y)))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn emptiness_test_is_strict() {
        let t = tree_with(&[(5.0, 5.0)]);
        let mut ops = OpCounters::new();
        let c = Point::new(6.0, 5.0);
        assert!(!exists_closer_than(&t, c, 1.0, &[], &mut ops));
        assert!(exists_closer_than(&t, c, 1.0 + 1e-9, &[], &mut ops));
        assert!(!exists_closer_than(&t, c, 1e9, &[ObjectId(0)], &mut ops));
    }

    #[test]
    fn queries_survive_churn() {
        let mut t = RTree::new();
        let pts = scatter(200, 3);
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(ObjectId(i as u32), Point::new(x, y)).unwrap();
        }
        // Move half the points, remove a quarter.
        for i in (0..200u32).step_by(2) {
            let (x, y) = pts[(i as usize + 100) % 200];
            t.update(ObjectId(i), Point::new(x, y)).unwrap();
        }
        for i in (0..200u32).step_by(4) {
            t.remove(ObjectId(i));
        }
        t.check_invariants();
        let q = Point::new(321.0, 654.0);
        let mut ops = OpCounters::new();
        let got = nearest(&t, q, None, &mut ops).unwrap();
        let want = t
            .iter()
            .map(|(_, p)| q.dist_sq(p))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(got.dist_sq, want);
    }
}
