//! A point R-tree (Guttman, with quadratic split) — the index family the
//! original TPL algorithm (Tao et al., VLDB 2004) was designed for.
//!
//! The grid of `igern-grid` is the paper's index; this crate exists for
//! the substrate ablation (DESIGN.md A5): it hosts moving points under
//! insert/delete/update, answers the same NN / k-NN / range / emptiness
//! queries, and implements the *native* TPL snapshot RNN algorithm —
//! branch-and-bound over the tree with perpendicular-bisector pruning of
//! whole subtrees — so TPL can be compared on its home index.
//!
//! Operation counts are charged to the same [`igern_grid::OpCounters`]
//! used by the grid searches (`cells_visited` counts visited tree nodes).
//!
//! # Example
//!
//! ```
//! use igern_geom::Point;
//! use igern_grid::{ObjectId, OpCounters};
//! use igern_rtree::{nearest, RTree};
//!
//! let mut tree = RTree::new();
//! for i in 0..100u32 {
//!     tree.insert(ObjectId(i), Point::new(i as f64, (i * 7 % 100) as f64))?;
//! }
//! tree.update(ObjectId(3), Point::new(50.5, 50.5))?;
//! let mut ops = OpCounters::new();
//! let n = nearest(&tree, Point::new(50.4, 50.4), None, &mut ops).unwrap();
//! assert_eq!(n.id, ObjectId(3));
//! # Ok::<(), igern_rtree::RTreeError>(())
//! ```

pub mod query;
pub mod tpl;
pub mod tree;

pub use query::{exists_closer_than, k_nearest, nearest, objects_in_circle};
pub use tpl::tpl_snapshot_rtree;
pub use tree::{RTree, RTreeError};
