//! The R-tree structure: insertion with least-enlargement descent and
//! quadratic split, deletion with condense-and-reinsert, and updates.

use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;

/// Maximum entries per node before splitting.
pub(crate) const MAX_ENTRIES: usize = 16;
/// Minimum entries per node (underflow threshold), ⌈M·0.4⌉.
pub(crate) const MIN_ENTRIES: usize = 6;

/// Rejected [`RTree`] mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RTreeError {
    /// [`RTree::insert`] was given an id that is already stored.
    DuplicateObject(ObjectId),
    /// [`RTree::update`] was given an id that is not stored.
    UnknownObject(ObjectId),
}

impl std::fmt::Display for RTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTreeError::DuplicateObject(id) => write!(f, "object {id} already in tree"),
            RTreeError::UnknownObject(id) => write!(f, "object {id} not in tree"),
        }
    }
}

impl std::error::Error for RTreeError {}

/// A leaf data entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub id: ObjectId,
    pub pos: Point,
}

/// Tree node.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf(Vec<Entry>),
    Internal(Vec<Child>),
}

/// An internal-node slot: child subtree plus its bounding box.
#[derive(Debug, Clone)]
pub(crate) struct Child {
    pub bbox: Aabb,
    pub node: Box<Node>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Internal(cs) => cs.len(),
        }
    }

    /// Tight bounding box of the node's contents (`None` when empty).
    pub(crate) fn bbox(&self) -> Option<Aabb> {
        match self {
            Node::Leaf(es) => bbox_of_points(es.iter().map(|e| e.pos)),
            Node::Internal(cs) => bbox_of_boxes(cs.iter().map(|c| c.bbox)),
        }
    }
}

fn bbox_of_points(mut points: impl Iterator<Item = Point>) -> Option<Aabb> {
    let first = points.next()?;
    let mut min = first;
    let mut max = first;
    for p in points {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    Some(Aabb::new(min, max))
}

fn bbox_of_boxes(mut boxes: impl Iterator<Item = Aabb>) -> Option<Aabb> {
    let first = boxes.next()?;
    let mut out = first;
    for b in boxes {
        out.min.x = out.min.x.min(b.min.x);
        out.min.y = out.min.y.min(b.min.y);
        out.max.x = out.max.x.max(b.max.x);
        out.max.y = out.max.y.max(b.max.y);
    }
    Some(out)
}

/// Union of a box and a point.
fn extend(b: &Aabb, p: Point) -> Aabb {
    Aabb::from_coords(
        b.min.x.min(p.x),
        b.min.y.min(p.y),
        b.max.x.max(p.x),
        b.max.y.max(p.y),
    )
}

/// Union of two boxes.
fn union(a: &Aabb, b: &Aabb) -> Aabb {
    Aabb::from_coords(
        a.min.x.min(b.min.x),
        a.min.y.min(b.min.y),
        a.max.x.max(b.max.x),
        a.max.y.max(b.max.y),
    )
}

/// A dynamic point R-tree over `(ObjectId, Point)` entries.
///
/// Positions are also tracked in a dense side table (ids are expected to
/// be small integers, as produced by the workload generators), so
/// [`RTree::update`] and [`RTree::position`] need no search.
#[derive(Debug, Clone)]
pub struct RTree {
    pub(crate) root: Node,
    positions: Vec<Option<Point>>,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            positions: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Position of `id`, if stored.
    pub fn position(&self, id: ObjectId) -> Option<Point> {
        self.positions.get(id.index()).and_then(|p| *p)
    }

    /// Insert a new point; rejects an `id` that is already stored.
    pub fn insert(&mut self, id: ObjectId, pos: Point) -> Result<(), RTreeError> {
        if self.positions.len() <= id.index() {
            self.positions.resize(id.index() + 1, None);
        }
        if self.positions[id.index()].is_some() {
            return Err(RTreeError::DuplicateObject(id));
        }
        self.positions[id.index()] = Some(pos);
        self.len += 1;
        if let Some((a, b)) = insert_rec(&mut self.root, Entry { id, pos }) {
            // Root split: grow the tree by one level.
            self.root = Node::Internal(vec![a, b]);
        }
        Ok(())
    }

    /// Remove a point, returning its last position.
    pub fn remove(&mut self, id: ObjectId) -> Option<Point> {
        let pos = self.positions.get_mut(id.index())?.take()?;
        self.len -= 1;
        let mut orphans = Vec::new();
        let removed = remove_rec(&mut self.root, id, pos, &mut orphans);
        debug_assert!(removed, "position table desynced from tree");
        // Shrink a root with a single internal child.
        loop {
            let replace = match &mut self.root {
                Node::Internal(cs) if cs.len() == 1 => {
                    Some(std::mem::replace(&mut *cs[0].node, Node::Leaf(Vec::new())))
                }
                _ => None,
            };
            match replace {
                Some(n) => self.root = n,
                None => break,
            }
        }
        // Reinsert entries orphaned by condensation.
        for e in orphans {
            if let Some((a, b)) = insert_rec(&mut self.root, e) {
                self.root = Node::Internal(vec![a, b]);
            }
        }
        Some(pos)
    }

    /// Move a point (delete + insert); rejects an `id` that is not
    /// stored.
    pub fn update(&mut self, id: ObjectId, pos: Point) -> Result<(), RTreeError> {
        self.remove(id).ok_or(RTreeError::UnknownObject(id))?;
        // The slot was just vacated, so the re-insert cannot collide.
        self.insert(id, pos)
    }

    /// Iterate over all `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (ObjectId(i as u32), p)))
    }

    /// Structural invariant checks for tests: bbox tightness, fanout
    /// bounds, and uniform leaf depth. Returns the tree height.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        fn walk(node: &Node, is_root: bool) -> usize {
            match node {
                Node::Leaf(es) => {
                    assert!(es.len() <= MAX_ENTRIES, "leaf overflow");
                    1
                }
                Node::Internal(cs) => {
                    assert!(cs.len() <= MAX_ENTRIES, "internal overflow");
                    assert!(
                        is_root || cs.len() >= MIN_ENTRIES,
                        "internal underflow ({})",
                        cs.len()
                    );
                    assert!(!cs.is_empty(), "empty internal node");
                    let mut depth = None;
                    for c in cs {
                        let tight = c.node.bbox().expect("child must be non-empty");
                        assert!(
                            (tight.min.x - c.bbox.min.x).abs() < 1e-9
                                && (tight.max.x - c.bbox.max.x).abs() < 1e-9
                                && (tight.min.y - c.bbox.min.y).abs() < 1e-9
                                && (tight.max.y - c.bbox.max.y).abs() < 1e-9,
                            "stale child bbox"
                        );
                        let d = walk(&c.node, false);
                        match depth {
                            None => depth = Some(d),
                            Some(prev) => assert_eq!(prev, d, "unbalanced tree"),
                        }
                    }
                    depth.unwrap() + 1
                }
            }
        }
        walk(&self.root, true)
    }
}

/// Recursive insert; returns two replacement children when the node split.
fn insert_rec(node: &mut Node, entry: Entry) -> Option<(Child, Child)> {
    match node {
        Node::Leaf(es) => {
            es.push(entry);
            if es.len() <= MAX_ENTRIES {
                return None;
            }
            // Quadratic split of leaf entries.
            let items = std::mem::take(es);
            let (l, r) = quadratic_split(items, |e| Aabb::new(e.pos, e.pos));
            Some((
                Child {
                    bbox: bbox_of_points(l.iter().map(|e| e.pos)).unwrap(),
                    node: Box::new(Node::Leaf(l)),
                },
                Child {
                    bbox: bbox_of_points(r.iter().map(|e| e.pos)).unwrap(),
                    node: Box::new(Node::Leaf(r)),
                },
            ))
        }
        Node::Internal(cs) => {
            // Choose the child needing least enlargement (ties: smaller area).
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, c) in cs.iter().enumerate() {
                let grown = extend(&c.bbox, entry.pos);
                let key = (grown.area() - c.bbox.area(), c.bbox.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            cs[best].bbox = extend(&cs[best].bbox, entry.pos);
            if let Some((a, b)) = insert_rec(&mut cs[best].node, entry) {
                cs.swap_remove(best);
                cs.push(a);
                cs.push(b);
                if cs.len() > MAX_ENTRIES {
                    let items = std::mem::take(cs);
                    let (l, r) = quadratic_split(items, |c| c.bbox);
                    return Some((
                        Child {
                            bbox: bbox_of_boxes(l.iter().map(|c| c.bbox)).unwrap(),
                            node: Box::new(Node::Internal(l)),
                        },
                        Child {
                            bbox: bbox_of_boxes(r.iter().map(|c| c.bbox)).unwrap(),
                            node: Box::new(Node::Internal(r)),
                        },
                    ));
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split: pick the pair wasting the most area as
/// seeds, then assign each remaining item to the group whose bbox grows
/// least (forcing assignment when a group must absorb the rest to reach
/// the minimum).
fn quadratic_split<T, F: Fn(&T) -> Aabb>(items: Vec<T>, bbox: F) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let u = union(&bbox(&items[i]), &bbox(&items[j]));
            let waste = u.area() - bbox(&items[i]).area() - bbox(&items[j]).area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut left: Vec<T> = Vec::new();
    let mut right: Vec<T> = Vec::new();
    let mut lbox = bbox(&items[s1]);
    let mut rbox = bbox(&items[s2]);
    let mut rest: Vec<T> = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        if i == s1 {
            left.push(item);
        } else if i == s2 {
            right.push(item);
        } else {
            rest.push(item);
        }
    }
    let mut pending = rest;
    while let Some(item) = pending.pop() {
        // Force assignment when a group needs every remaining item
        // (current one included) to reach the minimum fill.
        let remaining_incl = pending.len() + 1;
        if MIN_ENTRIES.saturating_sub(left.len()) >= remaining_incl {
            lbox = union(&lbox, &bbox(&item));
            left.push(item);
            continue;
        }
        if MIN_ENTRIES.saturating_sub(right.len()) >= remaining_incl {
            rbox = union(&rbox, &bbox(&item));
            right.push(item);
            continue;
        }
        // Otherwise: least enlargement, ties to the smaller group.
        let lg = union(&lbox, &bbox(&item)).area() - lbox.area();
        let rg = union(&rbox, &bbox(&item)).area() - rbox.area();
        if lg < rg || (lg == rg && left.len() <= right.len()) {
            lbox = union(&lbox, &bbox(&item));
            left.push(item);
        } else {
            rbox = union(&rbox, &bbox(&item));
            right.push(item);
        }
    }
    (left, right)
}

/// Recursive removal; pushes entries of condensed (underflowed) subtrees
/// into `orphans`. Returns whether the entry was found.
fn remove_rec(node: &mut Node, id: ObjectId, pos: Point, orphans: &mut Vec<Entry>) -> bool {
    match node {
        Node::Leaf(es) => {
            if let Some(at) = es.iter().position(|e| e.id == id) {
                es.swap_remove(at);
                true
            } else {
                false
            }
        }
        Node::Internal(cs) => {
            for i in 0..cs.len() {
                if !cs[i].bbox.contains(pos) {
                    continue;
                }
                if remove_rec(&mut cs[i].node, id, pos, orphans) {
                    if cs[i].node.len() < MIN_ENTRIES && !cs[i].node.is_leaf() {
                        // Condense: dissolve the underflowed internal child.
                        let child = cs.swap_remove(i);
                        collect_entries(*child.node, orphans);
                    } else if cs[i].node.len() == 0 {
                        cs.swap_remove(i);
                    } else {
                        cs[i].bbox = cs[i].node.bbox().expect("non-empty");
                    }
                    return true;
                }
            }
            false
        }
    }
}

/// Flatten a subtree into leaf entries.
fn collect_entries(node: Node, out: &mut Vec<Entry>) {
    match node {
        Node::Leaf(es) => out.extend(es),
        Node::Internal(cs) => {
            for c in cs {
                collect_entries(*c.node, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(i: u64) -> Point {
        // Deterministic scatter.
        let x = ((i.wrapping_mul(2654435761)) % 1000) as f64;
        let y = ((i.wrapping_mul(40503)) % 1000) as f64;
        Point::new(x, y)
    }

    #[test]
    fn insert_lookup_len() {
        let mut t = RTree::new();
        for i in 0..100u32 {
            t.insert(ObjectId(i), pt(i as u64)).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.position(ObjectId(7)), Some(pt(7)));
        assert_eq!(t.position(ObjectId(100)), None);
        t.check_invariants();
    }

    #[test]
    fn split_produces_balanced_tree() {
        let mut t = RTree::new();
        for i in 0..500u32 {
            t.insert(ObjectId(i), pt(i as u64)).unwrap();
        }
        let height = t.check_invariants();
        assert!(height >= 2, "500 points must split the root");
        assert_eq!(t.iter().count(), 500);
    }

    #[test]
    fn remove_roundtrip() {
        let mut t = RTree::new();
        for i in 0..200u32 {
            t.insert(ObjectId(i), pt(i as u64)).unwrap();
        }
        for i in (0..200u32).step_by(2) {
            assert_eq!(t.remove(ObjectId(i)), Some(pt(i as u64)));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.remove(ObjectId(0)), None);
        t.check_invariants();
        // Remaining odd ids are all present.
        for i in (1..200u32).step_by(2) {
            assert_eq!(t.position(ObjectId(i)), Some(pt(i as u64)));
        }
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut t = RTree::new();
        for i in 0..150u32 {
            t.insert(ObjectId(i), pt(i as u64)).unwrap();
        }
        for i in 0..150u32 {
            assert!(t.remove(ObjectId(i)).is_some(), "remove {i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn update_moves_points() {
        let mut t = RTree::new();
        for i in 0..64u32 {
            t.insert(ObjectId(i), pt(i as u64)).unwrap();
        }
        t.update(ObjectId(5), Point::new(999.0, 999.0)).unwrap();
        assert_eq!(t.position(ObjectId(5)), Some(Point::new(999.0, 999.0)));
        assert_eq!(t.len(), 64);
        t.check_invariants();
    }

    #[test]
    fn double_insert_is_rejected() {
        let mut t = RTree::new();
        t.insert(ObjectId(0), Point::new(1.0, 1.0)).unwrap();
        assert_eq!(
            t.insert(ObjectId(0), Point::new(2.0, 2.0)),
            Err(RTreeError::DuplicateObject(ObjectId(0)))
        );
        // The rejected insert left the tree untouched.
        assert_eq!(t.len(), 1);
        assert_eq!(t.position(ObjectId(0)), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn update_of_missing_object_is_rejected() {
        let mut t = RTree::new();
        t.insert(ObjectId(0), Point::new(1.0, 1.0)).unwrap();
        assert_eq!(
            t.update(ObjectId(9), Point::new(2.0, 2.0)),
            Err(RTreeError::UnknownObject(ObjectId(9)))
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_positions_are_fine() {
        let mut t = RTree::new();
        for i in 0..40u32 {
            t.insert(ObjectId(i), Point::new(5.0, 5.0)).unwrap();
        }
        assert_eq!(t.len(), 40);
        t.check_invariants();
        for i in 0..40u32 {
            assert!(t.remove(ObjectId(i)).is_some());
        }
        assert!(t.is_empty());
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut t = RTree::new();
        let mut live = Vec::new();
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut next_id = 0u32;
        for round in 0..2000 {
            let coin = rnd() % 3;
            if coin != 0 || live.is_empty() {
                let id = ObjectId(next_id);
                next_id += 1;
                t.insert(id, pt(rnd())).unwrap();
                live.push(id);
            } else {
                let at = (rnd() as usize) % live.len();
                let id = live.swap_remove(at);
                assert!(t.remove(id).is_some(), "round {round}");
            }
            if round % 250 == 0 {
                t.check_invariants();
                assert_eq!(t.len(), live.len());
            }
        }
        t.check_invariants();
    }
}
