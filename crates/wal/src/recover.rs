//! Replay-on-boot: newest valid snapshot + segment tail → a rebuilt
//! [`TickRunner`] holding bit-identical answers.
//!
//! Recovery leans on the workspace's central determinism invariant
//! (routed evaluation ≡ forced evaluation ≡ brute force, fuzzed across
//! the equivalence suites): answers are a pure function of the store
//! and the standing-query set, so restoring those and re-evaluating
//! reconverges exactly — the log never needs to carry answers.
//!
//! Everything untrustworthy is skipped **and counted**, never
//! panicked on: invalid snapshots fall back to older ones, torn
//! segment tails are dropped, CRC-failed records are passed over, and
//! replay applies each surviving record leniently (an upsert of an
//! unknown id inserts, a remove of a missing id is a no-op) so that a
//! skipped record never wedges the records after it.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use igern_core::types::DistanceMode;
use igern_core::{NetworkSpace, SpatialStore};
use igern_engine::{Placement, TickRunner};
use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;
use igern_proto::Frame;

use crate::segment::{scan_segment, segment_paths};
use crate::snapshot::load_newest_snapshot;
use crate::{answer_digest, state_digest, SubSpec};

/// One standing query restored by recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveredSub {
    /// Subscription id (stable across the crash).
    pub sid: u32,
    /// Anchor object.
    pub anchor: ObjectId,
    /// Query algorithm.
    pub algo: igern_core::processor::Algorithm,
    /// Distance mode the query evaluates under.
    pub mode: DistanceMode,
    /// Query index in the rebuilt runner.
    pub qid: usize,
}

/// Counters describing what recovery found and tolerated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Snapshot the state was seeded from, if any.
    pub snapshot: Option<PathBuf>,
    /// Newer snapshot candidates skipped as invalid.
    pub skipped_snapshots: u64,
    /// Per-sub answer digests that did not match after re-evaluation
    /// (0 unless the snapshot itself was silently damaged).
    pub digest_mismatches: u64,
    /// Log records replayed.
    pub replayed_records: u64,
    /// Tick boundaries replayed.
    pub replayed_ticks: u64,
    /// CRC/decode-failed records skipped inside segments.
    pub skipped_records: u64,
    /// Bytes dropped at torn segment tails.
    pub torn_tail_bytes: u64,
    /// Segments skipped wholesale (unreadable header).
    pub skipped_segments: u64,
    /// Records that decoded but could not apply (unknown remove,
    /// duplicate subscribe, out-of-space upsert, …).
    pub lenient_skips: u64,
}

impl RecoveryReport {
    /// Whether recovery saw any damage at all.
    pub fn clean(&self) -> bool {
        self.skipped_snapshots == 0
            && self.digest_mismatches == 0
            && self.skipped_records == 0
            && self.torn_tail_bytes == 0
            && self.skipped_segments == 0
            && self.lenient_skips == 0
    }
}

/// A rebuilt server state.
pub struct Recovered {
    /// Runner holding the restored store and queries, evaluated up to
    /// the last replayed tick boundary.
    pub runner: TickRunner,
    /// Standing queries, ascending by `sid`.
    pub subs: Vec<RecoveredSub>,
    /// Subscription-id allocator watermark (max seen + 1).
    pub next_sid: u32,
    /// Logical tick (snapshot tick + replayed boundaries).
    pub tick: u64,
    /// [`state_digest`] over the recovered answers at `tick`.
    pub digest: u64,
    /// Sequence number the next log append should use.
    pub next_seq: u64,
    /// What was tolerated along the way.
    pub report: RecoveryReport,
}

/// Rebuild state from `dir`. With no snapshot and no segments this
/// returns a fresh empty runner over `fallback_space`/`fallback_grid`
/// (the server's configured geometry); a snapshot's stored geometry
/// wins otherwise. `network` is the road network the serving store had
/// attached (if any): it is re-attached to the rebuilt store *before*
/// queries re-register, so recovered network-mode subscriptions keep
/// evaluating (without it they are counted as lenient skips).
pub fn recover(
    dir: &Path,
    workers: usize,
    placement: Placement,
    fallback_space: Aabb,
    fallback_grid: usize,
    network: Option<Arc<NetworkSpace>>,
) -> io::Result<Recovered> {
    let mut report = RecoveryReport::default();

    // 1. Seed from the newest valid snapshot, if any.
    let (found, skipped_snapshots) = load_newest_snapshot(dir)?;
    report.skipped_snapshots = skipped_snapshots;
    let (space, grid, snap) = match &found {
        Some((path, data)) => {
            report.snapshot = Some(path.clone());
            (data.space, data.grid, Some(data))
        }
        None => (fallback_space, fallback_grid, None),
    };
    let mut store = SpatialStore::new(space, grid, Vec::new());
    if let Some(ns) = network {
        store.set_network(ns);
    }
    if let Some(data) = snap {
        for &(id, kind, x, y) in &data.objects {
            store.insert(ObjectId(id), kind, Point::new(x, y));
        }
    }
    let mut runner = TickRunner::new(store, workers, placement);
    let mut subs: Vec<RecoveredSub> = Vec::new();
    let mut next_sid = 1u32;
    let mut tick = 0u64;
    let mut covered_seq = 0u64;
    if let Some(data) = snap {
        next_sid = next_sid.max(data.next_sid);
        tick = data.tick;
        covered_seq = data.covered_seq;
        let mut entries = data.subs.clone();
        // Ascending sid keeps qid assignment deterministic regardless
        // of the order the snapshot listed them in.
        entries.sort_by_key(|s| s.sid);
        for entry in entries {
            match runner.add_query_in(ObjectId(entry.anchor), entry.algo, entry.mode) {
                Ok(qid) => {
                    subs.push(RecoveredSub {
                        sid: entry.sid,
                        anchor: ObjectId(entry.anchor),
                        algo: entry.algo,
                        mode: entry.mode,
                        qid,
                    });
                    next_sid = next_sid.max(entry.sid + 1);
                }
                Err(_) => report.lenient_skips += 1,
            }
        }
        // Re-derive every answer from the restored store, then check
        // them against the digests the live server recorded.
        runner.evaluate_all();
        for sub in &subs {
            let want = data
                .subs
                .iter()
                .find(|e| e.sid == sub.sid)
                .map(|e| e.answer_digest);
            if want != Some(answer_digest(runner.answer(sub.qid))) {
                report.digest_mismatches += 1;
            }
        }
    }

    // 2. Replay the segment tail in sequence order.
    let mut next_seq = covered_seq;
    for (_, path) in segment_paths(dir)? {
        let scan = match scan_segment(&path) {
            Ok(s) => s,
            Err(_) => {
                report.skipped_segments += 1;
                continue;
            }
        };
        report.skipped_records += scan.skipped_records;
        report.torn_tail_bytes += scan.torn_tail_bytes;
        next_seq = next_seq.max(scan.end_seq);
        for rec in &scan.records {
            if rec.seq < covered_seq {
                continue; // already reflected in the snapshot
            }
            report.replayed_records += 1;
            apply_record(
                &rec.frame,
                &mut runner,
                &mut subs,
                &mut next_sid,
                &mut tick,
                &mut report,
            );
        }
    }

    subs.sort_by_key(|s| s.sid);
    let specs: Vec<SubSpec> = subs
        .iter()
        .map(|s| SubSpec {
            sid: s.sid,
            anchor: s.anchor.0,
            algo: s.algo,
            mode: s.mode,
        })
        .collect();
    let digest = state_digest(tick, &specs, |spec| {
        let sub = subs.iter().find(|s| s.sid == spec.sid).unwrap();
        runner.answer(sub.qid)
    });
    Ok(Recovered {
        runner,
        subs,
        next_sid,
        tick,
        digest,
        next_seq,
        report,
    })
}

/// Apply one replayed record leniently. The log only ever holds
/// *admitted* operations, so failures here mean earlier records were
/// corrupted away — each failure is counted, none aborts replay.
fn apply_record(
    frame: &Frame,
    runner: &mut TickRunner,
    subs: &mut Vec<RecoveredSub>,
    next_sid: &mut u32,
    tick: &mut u64,
    report: &mut RecoveryReport,
) {
    match frame {
        Frame::UpsertObject { id, kind, x, y } => {
            let p = Point::new(*x, *y);
            if !runner.store().space().contains(p) {
                report.lenient_skips += 1;
                return;
            }
            let oid = ObjectId(*id);
            match runner.store().position(oid) {
                Some(_) => {
                    if runner.store().kind(oid) == *kind {
                        runner.apply_update(oid, p);
                    } else {
                        report.lenient_skips += 1;
                    }
                }
                None => runner.insert_object(oid, *kind, p),
            }
        }
        Frame::RemoveObject { id } => {
            let oid = ObjectId(*id);
            // An anchored or unknown object cannot be removed (the live
            // server rejects both before admission).
            if subs.iter().any(|s| s.anchor == oid) || runner.store().position(oid).is_none() {
                report.lenient_skips += 1;
                return;
            }
            runner.remove_object(oid);
        }
        Frame::Subscribe {
            token,
            anchor,
            algo,
            mode,
        } => {
            // The tick thread logs the assigned sid in the token field.
            let sid = *token;
            if subs.iter().any(|s| s.sid == sid) {
                report.lenient_skips += 1;
                return;
            }
            match runner.add_query_in(ObjectId(*anchor), *algo, *mode) {
                Ok(qid) => {
                    subs.push(RecoveredSub {
                        sid,
                        anchor: ObjectId(*anchor),
                        algo: *algo,
                        mode: *mode,
                        qid,
                    });
                    *next_sid = (*next_sid).max(sid + 1);
                }
                Err(_) => report.lenient_skips += 1,
            }
        }
        Frame::Unsubscribe { sid } => match subs.iter().position(|s| s.sid == *sid) {
            Some(i) => {
                let sub = subs.remove(i);
                runner.remove_query(sub.qid);
            }
            None => report.lenient_skips += 1,
        },
        Frame::TickEnd { tick: t, .. } => {
            // Mutations were already applied on arrival (exactly like
            // the live tick thread); the boundary just evaluates.
            runner.step(&[]);
            *tick = *t;
            report.replayed_ticks += 1;
        }
        // No other frame type is ever appended; seeing one means a
        // record's bytes decayed into a different valid frame.
        _ => report.lenient_skips += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::WalWriter;
    use crate::snapshot::{write_snapshot, SnapshotData, SubEntry};
    use crate::WalOptions;
    use igern_core::processor::Algorithm;
    use igern_core::types::ObjectKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("igern-wal-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn space() -> Aabb {
        Aabb::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    fn upsert(id: u32, x: f64, y: f64) -> Frame {
        Frame::UpsertObject {
            id,
            kind: ObjectKind::A,
            x,
            y,
        }
    }

    #[test]
    fn empty_dir_recovers_fresh() {
        let dir = tmp_dir("fresh");
        let r = recover(&dir, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        assert_eq!(r.tick, 0);
        assert_eq!(r.next_sid, 1);
        assert_eq!(r.next_seq, 0);
        assert!(r.subs.is_empty());
        assert_eq!(r.runner.store().len(), 0);
        assert!(r.report.clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Build state by live calls, log the same ops, recover, compare.
    #[test]
    fn log_only_replay_matches_live_runner() {
        let dir = tmp_dir("log-only");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        let mut live = TickRunner::new(
            SpatialStore::new(space(), 8, Vec::new()),
            1,
            Placement::RoundRobin,
        );
        let mut rng = igern_mobgen::rng::Rng64::seed_from_u64(7);
        for id in 0..30u32 {
            let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
            let kind = if id % 3 == 0 {
                ObjectKind::B
            } else {
                ObjectKind::A
            };
            live.insert_object(ObjectId(id), kind, Point::new(x, y));
            w.append(&Frame::UpsertObject { id, kind, x, y }).unwrap();
        }
        let q0 = live.add_query(ObjectId(1), Algorithm::IgernMono).unwrap();
        w.append(&Frame::Subscribe {
            token: 1,
            anchor: 1,
            algo: Algorithm::IgernMono,
            mode: DistanceMode::Euclidean,
        })
        .unwrap();
        let q1 = live.add_query(ObjectId(2), Algorithm::Knn(3)).unwrap();
        w.append(&Frame::Subscribe {
            token: 2,
            anchor: 2,
            algo: Algorithm::Knn(3),
            mode: DistanceMode::Euclidean,
        })
        .unwrap();
        for t in 1..=5u64 {
            for _ in 0..10 {
                let id = rng.gen_range(0..30) as u32;
                let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
                if live.store().position(ObjectId(id)).is_some()
                    && live.store().kind(ObjectId(id)) == ObjectKind::A
                {
                    live.apply_update(ObjectId(id), Point::new(x, y));
                    w.append(&upsert(id, x, y)).unwrap();
                }
            }
            live.step(&[]);
            w.tick_boundary(t, 0).unwrap();
        }
        drop(w);
        let r = recover(&dir, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        assert!(r.report.clean(), "{:?}", r.report);
        assert_eq!(r.tick, 5);
        assert_eq!(r.subs.len(), 2);
        assert_eq!(r.next_sid, 3);
        assert_eq!(r.runner.store().len(), live.store().len());
        assert_eq!(r.runner.answer(r.subs[0].qid), live.answer(q0));
        assert_eq!(r.runner.answer(r.subs[1].qid), live.answer(q1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshot + tail replay equals pure-log replay (same digest).
    #[test]
    fn snapshot_plus_tail_matches_full_log() {
        let dir_full = tmp_dir("full");
        let dir_snap = tmp_dir("snapped");
        let opts_full = WalOptions::new(&dir_full);
        let opts_snap = WalOptions::new(&dir_snap);
        let mut wf = WalWriter::open(&opts_full).unwrap();
        let mut ws = WalWriter::open(&opts_snap).unwrap();
        let mut rng = igern_mobgen::rng::Rng64::seed_from_u64(11);
        fn log_both(wf: &mut WalWriter, ws: &mut WalWriter, f: &Frame) {
            wf.append(f).unwrap();
            ws.append(f).unwrap();
        }
        for id in 0..20u32 {
            let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
            log_both(&mut wf, &mut ws, &upsert(id, x, y));
        }
        log_both(
            &mut wf,
            &mut ws,
            &Frame::Subscribe {
                token: 1,
                anchor: 3,
                algo: Algorithm::IgernMono,
                mode: DistanceMode::Euclidean,
            },
        );
        for t in 1..=3u64 {
            for _ in 0..5 {
                let id = rng.gen_range(0..20) as u32;
                let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
                log_both(&mut wf, &mut ws, &upsert(id, x, y));
            }
            wf.tick_boundary(t, 0).unwrap();
            ws.tick_boundary(t, 0).unwrap();
        }
        // Snapshot the snapped dir at tick 3 from a recovery of it.
        let mid = recover(&dir_snap, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        let data = SnapshotData {
            tick: mid.tick,
            covered_seq: ws.next_seq(),
            next_sid: mid.next_sid,
            space: space(),
            grid: 8,
            objects: mid
                .runner
                .store()
                .all()
                .iter()
                .map(|(id, p)| (id.0, mid.runner.store().kind(id), p.x, p.y))
                .collect(),
            subs: mid
                .subs
                .iter()
                .map(|s| SubEntry {
                    sid: s.sid,
                    anchor: s.anchor.0,
                    algo: s.algo,
                    mode: s.mode,
                    answer_digest: answer_digest(mid.runner.answer(s.qid)),
                })
                .collect(),
        };
        write_snapshot(&dir_snap, &data).unwrap();
        ws.reclaim_covered(data.covered_seq).unwrap();
        // More traffic after the snapshot.
        for t in 4..=6u64 {
            for _ in 0..5 {
                let id = rng.gen_range(0..20) as u32;
                let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
                log_both(&mut wf, &mut ws, &upsert(id, x, y));
            }
            wf.tick_boundary(t, 0).unwrap();
            ws.tick_boundary(t, 0).unwrap();
        }
        drop(wf);
        drop(ws);
        let full = recover(&dir_full, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        let snapped = recover(&dir_snap, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        assert!(full.report.clean(), "{:?}", full.report);
        assert!(snapped.report.clean(), "{:?}", snapped.report);
        assert_eq!(full.digest, snapped.digest);
        assert_eq!(full.tick, snapped.tick);
        assert!(snapped.report.snapshot.is_some());
        std::fs::remove_dir_all(&dir_full).unwrap();
        std::fs::remove_dir_all(&dir_snap).unwrap();
    }

    /// Recovery across worker counts yields the same digest (the
    /// engine equivalence invariant carries over to replay).
    #[test]
    fn digest_is_worker_count_invariant() {
        let dir = tmp_dir("workers");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        let mut rng = igern_mobgen::rng::Rng64::seed_from_u64(3);
        for id in 0..25u32 {
            let (x, y) = (rng.f64() * 100.0, rng.f64() * 100.0);
            w.append(&upsert(id, x, y)).unwrap();
        }
        w.append(&Frame::Subscribe {
            token: 1,
            anchor: 0,
            algo: Algorithm::IgernMono,
            mode: DistanceMode::Euclidean,
        })
        .unwrap();
        w.append(&Frame::Subscribe {
            token: 2,
            anchor: 5,
            algo: Algorithm::Knn(2),
            mode: DistanceMode::Euclidean,
        })
        .unwrap();
        w.tick_boundary(1, 0).unwrap();
        drop(w);
        let serial = recover(&dir, 1, Placement::RoundRobin, space(), 8, None).unwrap();
        let sharded = recover(&dir, 4, Placement::AnchorCell, space(), 8, None).unwrap();
        assert_eq!(serial.digest, sharded.digest);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
