//! Segmented append-only log of admitted updates.
//!
//! A segment file is a 16-byte header — magic `IGWALSG1` plus the
//! little-endian global sequence number of its first record — followed
//! by records laid out as `[u32 len][u32 crc][payload]`, where
//! `payload` is exactly a [`Frame`] wire payload (`[type][body]`, the
//! part the wire's length prefix counts) and `crc` is
//! [`crc32`](crate::crc::crc32()) over the payload. Records never split
//! across segments; the writer rotates to `seg-<first_seq>.wal` once
//! the current file passes the size threshold.
//!
//! Scanning is forgiving in exactly two counted ways: an implausible
//! length (zero, over [`MAX_FRAME_LEN`], or overrunning the file) ends
//! the segment as a torn tail, dropping the remaining bytes; a CRC or
//! decode failure on a plausibly-framed record skips just that record
//! and keeps going. Neither panics.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use igern_proto::{Frame, MAX_FRAME_LEN};

use crate::crc::crc32;
use crate::{FsyncPolicy, WalOptions};

/// Segment header magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"IGWALSG1";
/// Header length: magic + first record sequence number.
pub const SEGMENT_HEADER_LEN: u64 = 16;

/// List segment files in `dir`, sorted by first sequence number
/// (parsed from the `seg-<hex>.wal` name).
pub fn segment_paths(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
        {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// One record recovered by [`scan_segment`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedRecord {
    /// Global sequence number (header first_seq + ordinal; skipped
    /// slots still consume a number).
    pub seq: u64,
    /// The decoded frame.
    pub frame: Frame,
}

/// What a segment scan found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Records that passed framing, CRC, and decode.
    pub records: Vec<ScannedRecord>,
    /// Plausibly-framed records dropped for CRC or decode failure.
    pub skipped_records: u64,
    /// Bytes dropped at a torn/truncated tail (0 for a clean segment).
    pub torn_tail_bytes: u64,
    /// Sequence number the segment's *next* record would have used
    /// (first_seq + total slots seen, valid or skipped).
    pub end_seq: u64,
}

/// Scan one segment file, returning everything salvageable. A bad or
/// missing header yields `InvalidData` — the caller counts the whole
/// segment as skipped.
pub fn scan_segment(path: &Path) -> io::Result<ScanOutcome> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < SEGMENT_HEADER_LEN as usize || &buf[..8] != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: bad segment header", path.display()),
        ));
    }
    let first_seq = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    // The filename carries the same number (`seg-<first_seq>.wal`). A
    // disagreement means the header field took damage the per-record
    // CRCs cannot see — and every seq derived from it would be wrong,
    // silently replaying covered records or skipping live ones. Refuse
    // the whole segment instead.
    if let Some(name_seq) = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("seg-"))
        .and_then(|n| n.strip_suffix(".wal"))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
    {
        if name_seq != first_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: header first_seq {first_seq} disagrees with filename",
                    path.display()
                ),
            ));
        }
    }
    let mut out = ScanOutcome {
        end_seq: first_seq,
        ..ScanOutcome::default()
    };
    let mut pos = SEGMENT_HEADER_LEN as usize;
    while pos < buf.len() {
        if buf.len() - pos < 8 {
            out.torn_tail_bytes = (buf.len() - pos) as u64;
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_LEN || buf.len() - pos - 8 < len {
            // Implausible or overrunning length: a torn tail, not a
            // skippable record — there is no trustworthy next offset.
            out.torn_tail_bytes = (buf.len() - pos) as u64;
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        pos += 8 + len;
        let seq = out.end_seq;
        out.end_seq += 1;
        if crc32(payload) != crc {
            out.skipped_records += 1;
            continue;
        }
        match Frame::decode(payload) {
            Ok(frame) => out.records.push(ScannedRecord { seq, frame }),
            Err(_) => out.skipped_records += 1,
        }
    }
    Ok(out)
}

/// The append side of the log.
///
/// Opening always starts a *fresh* segment at the next unused sequence
/// number (scanning existing segments to find it), so the writer never
/// appends after a possibly-torn tail left by a crash.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    file: File,
    seg_len: u64,
    next_seq: u64,
    /// Records appended since the last sync (any policy).
    unsynced: u64,
}

impl WalWriter {
    /// Open `opts.dir` (creating it) and start a new segment after any
    /// existing ones. Snapshot names carry their covered sequence
    /// number, so a clean shutdown that reclaimed every segment still
    /// anchors the next boot past the covered prefix — sequence
    /// numbers are never reused.
    pub fn open(opts: &WalOptions) -> io::Result<Self> {
        fs::create_dir_all(&opts.dir)?;
        let mut next_seq = 0;
        for (covered, _, _) in crate::snapshot::snapshot_paths(&opts.dir)? {
            next_seq = next_seq.max(covered);
        }
        if let Some((_, path)) = segment_paths(&opts.dir)?.last() {
            // Only the newest segment's end matters; a bad header means
            // its records are unrecoverable anyway, so restart at its
            // first_seq would risk reuse — scan errors fall back to 0
            // only when no segment parses at all.
            match scan_segment(path) {
                Ok(scan) => next_seq = next_seq.max(scan.end_seq),
                Err(_) => {
                    // Unreadable newest segment: place the new segment
                    // after every name-derived start we can see.
                    for (seq, _) in segment_paths(&opts.dir)? {
                        next_seq = next_seq.max(seq + 1);
                    }
                }
            }
        }
        let (file, seg_len) = Self::new_segment(&opts.dir, next_seq)?;
        Ok(WalWriter {
            dir: opts.dir.clone(),
            fsync: opts.fsync,
            segment_bytes: opts.segment_bytes,
            file,
            seg_len,
            next_seq,
            unsynced: 0,
        })
    }

    fn new_segment(dir: &Path, first_seq: u64) -> io::Result<(File, u64)> {
        let path = dir.join(format!("seg-{first_seq:016x}.wal"));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        header[..8].copy_from_slice(SEGMENT_MAGIC);
        header[8..].copy_from_slice(&first_seq.to_le_bytes());
        file.write_all(&header)?;
        Ok((file, SEGMENT_HEADER_LEN))
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one record; returns its sequence number. Rotates first
    /// when the current segment is at or past the size threshold.
    /// Under [`FsyncPolicy::Always`] the record is fsynced before
    /// returning.
    pub fn append(&mut self, frame: &Frame) -> io::Result<u64> {
        if self.seg_len >= self.segment_bytes {
            self.rotate()?;
        }
        let wire = frame.encode();
        let payload = &wire[4..];
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        // One unbuffered write per record: an in-process crash after
        // this call loses nothing (fsync policy only matters for OS
        // and power failures).
        self.file.write_all(&rec)?;
        self.seg_len += rec.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unsynced += 1;
        if self.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Append the tick-boundary record for `tick` and apply the
    /// boundary fsync (under `always` and `tick` policies the log is
    /// durable up to and including this boundary when this returns).
    pub fn tick_boundary(&mut self, tick: u64, stamp_nanos: u64) -> io::Result<u64> {
        let seq = self.append(&Frame::TickEnd { tick, stamp_nanos })?;
        if self.fsync == FsyncPolicy::Tick {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Fsync the current segment regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Close the current segment and start a new one at `next_seq`.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let (file, seg_len) = Self::new_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.seg_len = seg_len;
        Ok(())
    }

    /// Rotate, then delete every older segment whose records are all
    /// `< covered_seq` (called after a snapshot covering that prefix).
    /// Returns how many segments were reclaimed.
    pub fn reclaim_covered(&mut self, covered_seq: u64) -> io::Result<u64> {
        self.rotate()?;
        reclaim_covered_segments(&self.dir, covered_seq)
    }
}

/// Delete segments fully covered by a snapshot at `covered_seq`
/// (every record sequence `< covered_seq`). The newest segment is
/// judged by scanning it like recovery would, so a torn tail does not
/// protect already-covered records from reclamation.
pub fn reclaim_covered_segments(dir: &Path, covered_seq: u64) -> io::Result<u64> {
    let mut reclaimed = 0;
    for (first_seq, path) in segment_paths(dir)? {
        if first_seq >= covered_seq {
            continue;
        }
        let fully_covered = match scan_segment(&path) {
            // Torn-tail bytes hold no recoverable records, so end_seq
            // is the segment's true reach.
            Ok(scan) => scan.end_seq <= covered_seq && scan.torn_tail_bytes == 0,
            // An unreadable segment under the covered prefix carries
            // nothing recovery would use.
            Err(_) => true,
        };
        if fully_covered {
            fs::remove_file(&path)?;
            reclaimed += 1;
        }
    }
    Ok(reclaimed)
}

/// Delete every segment (clean-shutdown compaction: the final
/// snapshot covers everything, so the next boot replays zero
/// segments). Returns how many were removed.
pub fn remove_all_segments(dir: &Path) -> io::Result<u64> {
    let mut removed = 0;
    for (_, path) in segment_paths(dir)? {
        fs::remove_file(&path)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_core::types::ObjectKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("igern-wal-seg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn upsert(id: u32) -> Frame {
        Frame::UpsertObject {
            id,
            kind: ObjectKind::A,
            x: 1.5,
            y: 2.5,
        }
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp_dir("round-trip");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        for i in 0..10 {
            assert_eq!(w.append(&upsert(i)).unwrap(), i as u64);
        }
        w.tick_boundary(1, 42).unwrap();
        let segs = segment_paths(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        let scan = scan_segment(&segs[0].1).unwrap();
        assert_eq!(scan.records.len(), 11);
        assert_eq!(scan.skipped_records, 0);
        assert_eq!(scan.torn_tail_bytes, 0);
        assert_eq!(scan.end_seq, 11);
        assert_eq!(scan.records[3].frame, upsert(3));
        assert_eq!(scan.records[3].seq, 3);
        assert!(matches!(
            scan.records[10].frame,
            Frame::TickEnd { tick: 1, .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_preserves_global_seq() {
        let dir = tmp_dir("rotate");
        let mut opts = WalOptions::new(&dir);
        opts.segment_bytes = 64; // force frequent rotation
        let mut w = WalWriter::open(&opts).unwrap();
        for i in 0..20 {
            w.append(&upsert(i)).unwrap();
        }
        let segs = segment_paths(&dir).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {segs:?}");
        let mut seqs = Vec::new();
        for (first, path) in &segs {
            let scan = scan_segment(path).unwrap();
            assert_eq!(scan.records.first().map(|r| r.seq), Some(*first));
            seqs.extend(scan.records.iter().map(|r| r.seq));
        }
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_sequence_in_new_segment() {
        let dir = tmp_dir("reopen");
        let opts = WalOptions::new(&dir);
        let mut w = WalWriter::open(&opts).unwrap();
        w.append(&upsert(1)).unwrap();
        w.append(&upsert(2)).unwrap();
        drop(w);
        let mut w = WalWriter::open(&opts).unwrap();
        assert_eq!(w.next_seq(), 2);
        assert_eq!(w.append(&upsert(3)).unwrap(), 2);
        assert_eq!(segment_paths(&dir).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reclaim_keeps_uncovered_segments() {
        let dir = tmp_dir("reclaim");
        let mut opts = WalOptions::new(&dir);
        opts.segment_bytes = 64;
        let mut w = WalWriter::open(&opts).unwrap();
        for i in 0..20 {
            w.append(&upsert(i)).unwrap();
        }
        let before = segment_paths(&dir).unwrap().len();
        let reclaimed = w.reclaim_covered(10).unwrap();
        assert!(reclaimed > 0);
        let after = segment_paths(&dir).unwrap();
        assert_eq!(after.len() as u64, before as u64 - reclaimed + 1);
        // Records >= 10 all survive.
        let mut live = Vec::new();
        for (_, path) in &after {
            live.extend(scan_segment(path).unwrap().records);
        }
        assert!(live.iter().any(|r| r.seq == 10));
        assert!(live.iter().all(|r| r.seq >= 10));
        // Full compaction removes everything.
        drop(w);
        assert!(remove_all_segments(&dir).unwrap() > 0);
        assert!(segment_paths(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        for i in 0..5 {
            w.append(&upsert(i)).unwrap();
        }
        drop(w);
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let cut = bytes.len() - 7;
        bytes.truncate(cut);
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.torn_tail_bytes > 0);
        assert_eq!(scan.skipped_records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_flip_skips_only_that_record() {
        let dir = tmp_dir("crcflip");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        for i in 0..5 {
            w.append(&upsert(i)).unwrap();
        }
        drop(w);
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the middle record: header 16, each
        // record is 8 + 22 bytes (upsert payload = 1+4+1+8+8).
        let rec_len = 8 + 22;
        let target = 16 + 2 * rec_len + 8 + 3;
        bytes[target] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.skipped_records, 1);
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 3, 4]
        );
        assert_eq!(scan.end_seq, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_seq_disagreeing_with_filename_rejects_the_segment() {
        let dir = tmp_dir("hdrflip");
        let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
        for i in 0..3 {
            w.append(&upsert(i)).unwrap();
        }
        drop(w);
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit of the header's first_seq (bytes 8..16): no
        // record CRC covers it, but the filename does — the scan must
        // refuse the segment rather than trust shifted sequence
        // numbers.
        bytes[8] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = scan_segment(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
