//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The workspace is dependency-free, so the checksum guarding WAL
//! records and snapshot bodies is implemented here. The reflected
//! table algorithm matches zlib's `crc32` — handy when inspecting
//! segments with external tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (zlib-compatible: init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"igern wal record");
        let mut mangled = b"igern wal record".to_vec();
        for i in 0..mangled.len() * 8 {
            mangled[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&mangled), base, "bit {i} collided");
            mangled[i / 8] ^= 1 << (i % 8);
        }
    }
}
