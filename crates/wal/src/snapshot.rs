//! Compacted snapshots: the full store + standing-query set at a tick
//! boundary, written atomically (temp file + rename) and CRC-guarded.
//!
//! Layout: 8-byte magic `IGSNAP01`, `u32` body length, `u32` CRC-32 of
//! the body, then the body —
//!
//! ```text
//! u64 tick            logical tick the snapshot was taken at
//! u64 covered_seq     log records with seq < this are reflected
//! u32 next_sid        subscription-id allocator watermark
//! f64×4 space         min x, min y, max x, max y
//! u32 grid            cells per side
//! u32 object count    then per object: u32 id, u8 kind, f64 x, f64 y
//! u32 sub count       then per sub: u32 sid, u32 anchor, u8 algo
//!                     code, u16 k, u8 distance mode, u64 answer digest
//! ```
//!
//! The per-sub digests ([`crate::answer_digest`]) are verification
//! data, not state: recovery re-evaluates every query from the
//! restored store and counts (never trusts away) any mismatch.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_geom::Aabb;
use igern_proto::{algo_from_wire, algo_to_wire, mode_from_wire, mode_to_wire};

use crate::crc::crc32;

/// Snapshot header magic. `02` added the per-sub distance-mode byte;
/// older `01` snapshots are rejected and recovery falls back to the log.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"IGSNAP02";

/// One standing query in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubEntry {
    /// Server-assigned subscription id.
    pub sid: u32,
    /// Anchor object id.
    pub anchor: u32,
    /// Query algorithm.
    pub algo: Algorithm,
    /// Distance mode the query evaluates under.
    pub mode: DistanceMode,
    /// [`crate::answer_digest`] of the answer at snapshot time.
    pub answer_digest: u64,
}

/// Everything a snapshot stores.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Logical tick at capture (always a tick boundary).
    pub tick: u64,
    /// Log records with `seq < covered_seq` are reflected here.
    pub covered_seq: u64,
    /// Subscription-id allocator watermark.
    pub next_sid: u32,
    /// Data space.
    pub space: Aabb,
    /// Grid cells per side.
    pub grid: usize,
    /// Live objects: `(id, kind, x, y)`.
    pub objects: Vec<(u32, ObjectKind, f64, f64)>,
    /// Standing queries.
    pub subs: Vec<SubEntry>,
}

impl SnapshotData {
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + self.objects.len() * 21 + self.subs.len() * 20);
        b.extend_from_slice(&self.tick.to_le_bytes());
        b.extend_from_slice(&self.covered_seq.to_le_bytes());
        b.extend_from_slice(&self.next_sid.to_le_bytes());
        for v in [
            self.space.min.x,
            self.space.min.y,
            self.space.max.x,
            self.space.max.y,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b.extend_from_slice(&(self.grid as u32).to_le_bytes());
        b.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for &(id, kind, x, y) in &self.objects {
            b.extend_from_slice(&id.to_le_bytes());
            b.push(match kind {
                ObjectKind::A => 0,
                ObjectKind::B => 1,
            });
            b.extend_from_slice(&x.to_le_bytes());
            b.extend_from_slice(&y.to_le_bytes());
        }
        b.extend_from_slice(&(self.subs.len() as u32).to_le_bytes());
        for s in &self.subs {
            let (code, k) = algo_to_wire(s.algo);
            b.extend_from_slice(&s.sid.to_le_bytes());
            b.extend_from_slice(&s.anchor.to_le_bytes());
            b.push(code);
            b.extend_from_slice(&k.to_le_bytes());
            b.push(mode_to_wire(s.mode));
            b.extend_from_slice(&s.answer_digest.to_le_bytes());
        }
        b
    }

    fn decode_body(body: &[u8]) -> Option<SnapshotData> {
        struct C<'a>(&'a [u8], usize);
        impl C<'_> {
            fn take(&mut self, n: usize) -> Option<&[u8]> {
                if self.0.len() - self.1 < n {
                    return None;
                }
                let s = &self.0[self.1..self.1 + n];
                self.1 += n;
                Some(s)
            }
            fn u8(&mut self) -> Option<u8> {
                Some(self.take(1)?[0])
            }
            fn u16(&mut self) -> Option<u16> {
                Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
            }
            fn u64(&mut self) -> Option<u64> {
                Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
            }
            fn f64(&mut self) -> Option<f64> {
                Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
            }
        }
        let mut c = C(body, 0);
        let tick = c.u64()?;
        let covered_seq = c.u64()?;
        let next_sid = c.u32()?;
        let (x0, y0, x1, y1) = (c.f64()?, c.f64()?, c.f64()?, c.f64()?);
        if !(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite())
            || x1 < x0
            || y1 < y0
        {
            return None;
        }
        let grid = c.u32()? as usize;
        if grid == 0 {
            return None;
        }
        let n_obj = c.u32()? as usize;
        // Bound counts by the bytes actually present.
        if body.len() - c.1 < n_obj * 21 {
            return None;
        }
        let mut objects = Vec::with_capacity(n_obj);
        for _ in 0..n_obj {
            let id = c.u32()?;
            let kind = match c.u8()? {
                0 => ObjectKind::A,
                1 => ObjectKind::B,
                _ => return None,
            };
            objects.push((id, kind, c.f64()?, c.f64()?));
        }
        let n_sub = c.u32()? as usize;
        if body.len() - c.1 < n_sub * 20 {
            return None;
        }
        let mut subs = Vec::with_capacity(n_sub);
        for _ in 0..n_sub {
            let sid = c.u32()?;
            let anchor = c.u32()?;
            let algo = algo_from_wire(c.u8()?, c.u16()?).ok()?;
            let mode = mode_from_wire(c.u8()?).ok()?;
            subs.push(SubEntry {
                sid,
                anchor,
                algo,
                mode,
                answer_digest: c.u64()?,
            });
        }
        if c.1 != body.len() {
            return None; // trailing bytes: not a snapshot we wrote
        }
        Some(SnapshotData {
            tick,
            covered_seq,
            next_sid,
            space: Aabb::from_coords(x0, y0, x1, y1),
            grid,
            objects,
            subs,
        })
    }
}

/// List snapshot files in `dir`, sorted ascending by `(covered_seq,
/// tick)` parsed from the `snap-<seq hex>-<tick hex>.snap` name — the
/// last entry is the newest candidate.
pub fn snapshot_paths(dir: &Path) -> io::Result<Vec<(u64, u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
        else {
            continue;
        };
        let Some((seq_hex, tick_hex)) = stem.split_once('-') else {
            continue;
        };
        if let (Ok(seq), Ok(tick)) = (
            u64::from_str_radix(seq_hex, 16),
            u64::from_str_radix(tick_hex, 16),
        ) {
            out.push((seq, tick, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, tick, _)| (seq, tick));
    Ok(out)
}

/// Write a snapshot atomically (temp + rename + fsync) into `dir`.
/// Returns the final path.
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let body = data.encode_body();
    let mut bytes = Vec::with_capacity(16 + body.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    let final_path = dir.join(format!(
        "snap-{:016x}-{:016x}.snap",
        data.covered_seq, data.tick
    ));
    let tmp_path = dir.join(format!(
        "snap-{:016x}-{:016x}.tmp",
        data.covered_seq, data.tick
    ));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename durable too; failure to fsync the directory is
    // not fatal to the running server.
    let _ = File::open(dir).and_then(|d| d.sync_all());
    Ok(final_path)
}

/// Load and validate one snapshot file. `None` means the file is
/// unreadable, truncated, or fails its CRC — the caller falls back to
/// an older snapshot.
pub fn load_snapshot(path: &Path) -> Option<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() - 16 != body_len {
        return None;
    }
    let body = &bytes[16..];
    if crc32(body) != crc {
        return None;
    }
    SnapshotData::decode_body(body)
}

/// Find the newest *valid* snapshot in `dir`, trying candidates
/// newest-first. Returns the winner (if any) and how many newer
/// candidates were skipped as invalid.
pub fn load_newest_snapshot(dir: &Path) -> io::Result<(Option<(PathBuf, SnapshotData)>, u64)> {
    let mut skipped = 0;
    for (_, _, path) in snapshot_paths(dir)?.into_iter().rev() {
        match load_snapshot(&path) {
            Some(data) => return Ok((Some((path, data)), skipped)),
            None => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// Delete snapshots older than the newest `keep` (by name order).
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<u64> {
    let paths = snapshot_paths(dir)?;
    let mut removed = 0;
    if paths.len() > keep {
        for (_, _, path) in &paths[..paths.len() - keep] {
            fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        SnapshotData {
            tick: 42,
            covered_seq: 1000,
            next_sid: 7,
            space: Aabb::from_coords(0.0, 0.0, 100.0, 50.0),
            grid: 16,
            objects: vec![
                (1, ObjectKind::A, 1.25, 2.5),
                (9, ObjectKind::B, 99.0, 49.0),
            ],
            subs: vec![
                SubEntry {
                    sid: 1,
                    anchor: 1,
                    algo: Algorithm::IgernMono,
                    mode: DistanceMode::Euclidean,
                    answer_digest: 0xdead_beef,
                },
                SubEntry {
                    sid: 3,
                    anchor: 9,
                    algo: Algorithm::Knn(4),
                    mode: DistanceMode::Network,
                    answer_digest: 77,
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("igern-wal-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let dir = tmp_dir("rt");
        let data = sample();
        let path = write_snapshot(&dir, &data).unwrap();
        assert_eq!(load_snapshot(&path), Some(data.clone()));
        let (found, skipped) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(found.unwrap().1, data);
        assert_eq!(skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let older = sample();
        write_snapshot(&dir, &older).unwrap();
        let mut newer = sample();
        newer.covered_seq = 2000;
        newer.tick = 84;
        let newer_path = write_snapshot(&dir, &newer).unwrap();
        // Flip a body byte: CRC must reject it.
        let mut bytes = fs::read(&newer_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newer_path, &bytes).unwrap();
        let (found, skipped) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(found.unwrap().1, older);
        assert_eq!(skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let dir = tmp_dir("garbage");
        let path = write_snapshot(&dir, &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 4, 15, bytes.len() - 3] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_snapshot(&path).is_none(), "cut {cut} accepted");
        }
        fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(load_snapshot(&path).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        for seq in [100u64, 200, 300] {
            let mut d = sample();
            d.covered_seq = seq;
            write_snapshot(&dir, &d).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 1);
        let left = snapshot_paths(&dir).unwrap();
        assert_eq!(
            left.iter().map(|&(s, _, _)| s).collect::<Vec<_>>(),
            vec![200, 300]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
