//! Durability layer: segmented write-ahead log, compacted snapshots,
//! and crash recovery (DESIGN.md §15).
//!
//! The durable unit is the *admitted update stream plus per-query
//! bookkeeping*, not raw answers: every mutation the server's tick
//! thread admits (object upserts/removes, subscription add/drops) is
//! appended to an append-only segmented log as a CRC-protected record
//! reusing the [`igern_proto`] frame payload encoding, and every tick
//! closes with a `TICK_END` boundary record. Because answers are a
//! deterministic function of the store and the standing-query set
//! (the routed-vs-forced equivalence the test suite fuzzes), replaying
//! the log into a fresh [`igern_engine::TickRunner`] reconverges to bit-identical
//! answers — no answer sets are ever logged.
//!
//! Periodic [`snapshot`]s compact the log: the full store and query
//! set (plus per-query FNV-1a answer digests for verification) are
//! serialized atomically, after which fully-covered segments are
//! reclaimed. [`recover()`] rebuilds a runner from the newest valid
//! snapshot plus the segment tail, tolerating torn tails, bit flips,
//! and missing snapshots by skipping-and-counting, never panicking.

use igern_core::processor::Algorithm;
use igern_core::types::DistanceMode;
use igern_grid::ObjectId;

pub mod crc;
pub mod recover;
pub mod segment;
pub mod snapshot;

pub use recover::{recover, Recovered, RecoveredSub, RecoveryReport};
pub use segment::{
    reclaim_covered_segments, remove_all_segments, scan_segment, segment_paths, ScanOutcome,
    ScannedRecord, WalWriter,
};
pub use snapshot::{
    load_newest_snapshot, load_snapshot, prune_snapshots, snapshot_paths, write_snapshot,
    SnapshotData, SubEntry,
};

/// When the log file is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// After every appended record: no admitted update is ever lost,
    /// at the cost of one fsync per mutation.
    Always,
    /// At each tick boundary (default): a crash can lose at most the
    /// current in-progress tick, which no client has seen pushed.
    #[default]
    Tick,
    /// Never: the OS flushes whenever it likes. Survives process
    /// crashes (the records left the process on `write`), not power
    /// loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI-style name (`always` | `tick` | `never`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "tick" => Some(FsyncPolicy::Tick),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Tick => "tick",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Durability configuration, carried by the server when `--wal-dir`
/// is set.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Directory holding segments and snapshots.
    pub dir: std::path::PathBuf,
    /// Fsync policy for the log.
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes (records never split
    /// across segments; a segment may exceed this by one record).
    pub segment_bytes: u64,
    /// Write a compacted snapshot every N ticks (0 = never).
    pub snapshot_every: u64,
}

impl WalOptions {
    /// Defaults: tick fsync, 1 MiB segments, snapshot every 256 ticks.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        WalOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::Tick,
            segment_bytes: 1 << 20,
            snapshot_every: 256,
        }
    }
}

/// FNV-1a offset basis (the same constants `crates/sim` digests with).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator.
#[inline]
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of one query's answer set (ids in their stored, sorted
/// order). Stored per sub in snapshots so recovery can verify the
/// rebuilt runner reproduces the exact answers the live one held.
pub fn answer_digest(ids: &[ObjectId]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(ids.len() as u64).to_le_bytes());
    for id in ids {
        h = fnv1a(h, &id.0.to_le_bytes());
    }
    h
}

/// One standing query as the durability layer sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubSpec {
    /// Server-assigned subscription id (stable across recovery).
    pub sid: u32,
    /// Anchor object id.
    pub anchor: u32,
    /// The query algorithm.
    pub algo: Algorithm,
    /// Distance mode the query evaluates under.
    pub mode: DistanceMode,
}

/// Whole-server answer digest: FNV-1a over the logical tick then, per
/// sub in ascending `sid` order, the sub identity and its full answer.
/// `answer_of` maps a [`SubSpec`] to its current sorted answer. Both
/// the recovery banner and the CI crash smoke compare this value.
pub fn state_digest<'a>(
    tick: u64,
    subs: &[SubSpec],
    mut answer_of: impl FnMut(&SubSpec) -> &'a [ObjectId],
) -> u64 {
    let mut order: Vec<usize> = (0..subs.len()).collect();
    order.sort_by_key(|&i| subs[i].sid);
    let mut h = fnv1a(FNV_OFFSET, &tick.to_le_bytes());
    for i in order {
        let s = &subs[i];
        let (code, k) = igern_proto::algo_to_wire(s.algo);
        h = fnv1a(h, &s.sid.to_le_bytes());
        h = fnv1a(h, &s.anchor.to_le_bytes());
        h = fnv1a(h, &[code]);
        h = fnv1a(h, &k.to_le_bytes());
        h = fnv1a(h, &[igern_proto::mode_to_wire(s.mode)]);
        let ids = answer_of(s);
        h = fnv1a(h, &(ids.len() as u64).to_le_bytes());
        for id in ids {
            h = fnv1a(h, &id.0.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_digest_is_sid_order_invariant() {
        let a = SubSpec {
            sid: 1,
            anchor: 10,
            algo: Algorithm::IgernMono,
            mode: DistanceMode::Euclidean,
        };
        let b = SubSpec {
            sid: 2,
            anchor: 11,
            algo: Algorithm::Knn(3),
            mode: DistanceMode::Euclidean,
        };
        let ans_a = [ObjectId(3), ObjectId(7)];
        let ans_b = [ObjectId(1)];
        let of = |s: &SubSpec| -> &[ObjectId] {
            if s.sid == 1 {
                &ans_a
            } else {
                &ans_b
            }
        };
        let d1 = state_digest(5, &[a, b], of);
        let d2 = state_digest(5, &[b, a], of);
        assert_eq!(d1, d2);
        // Any ingredient changes the digest.
        assert_ne!(d1, state_digest(6, &[a, b], of));
        let b2 = SubSpec {
            algo: Algorithm::Knn(4),
            ..b
        };
        assert_ne!(d1, state_digest(5, &[a, b2], of));
        let b3 = SubSpec {
            mode: DistanceMode::Network,
            ..b
        };
        assert_ne!(d1, state_digest(5, &[a, b3], of));
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("tick"), Some(FsyncPolicy::Tick));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Tick.name(), "tick");
    }
}
