//! Recovery under deliberate on-disk damage, driven through the public
//! crate surface: a truncated tail record, a bit-flipped record
//! mid-segment, destroyed or missing snapshots, and a seeded
//! byte-mangling fuzz loop over whole durability directories (the same
//! style the wire protocol's `proto_edges.rs` uses for streams).
//!
//! The contract under test is *counted, not panicking*: every kind of
//! damage shows up in [`RecoveryReport`]'s counters, recovery always
//! returns `Ok`, and — as long as the log itself is intact — the
//! recovered digest does not depend on snapshots at all, because an
//! uncompacted log replays to the same state from scratch.

use std::path::{Path, PathBuf};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};
use igern_engine::Placement;
use igern_geom::Aabb;
use igern_grid::ObjectId;
use igern_mobgen::rng::Rng64;
use igern_proto::Frame;
use igern_wal::{
    answer_digest, recover, segment_paths, snapshot_paths, write_snapshot, Recovered, SnapshotData,
    SubEntry, WalOptions, WalWriter,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igern-wal-corr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn space() -> Aabb {
    Aabb::from_coords(0.0, 0.0, 100.0, 100.0)
}

fn rec(dir: &Path) -> Recovered {
    recover(dir, 1, Placement::RoundRobin, space(), 8, None).unwrap()
}

/// Write a realistic durability directory: 20 objects, two standing
/// queries, `ticks` boundaries of churn. With `snapshots` true, a
/// snapshot is taken after ticks 2 and 4 — *without* reclaiming any
/// segment, so the full log survives alongside them.
fn build_dir(tag: &str, ticks: u64, snapshots: bool) -> PathBuf {
    let dir = tmp_dir(tag);
    let mut w = WalWriter::open(&WalOptions::new(&dir)).unwrap();
    let mut rng = Rng64::seed_from_u64(0xC0FFEE);
    for id in 0..20u32 {
        let kind = if id.is_multiple_of(4) {
            ObjectKind::B
        } else {
            ObjectKind::A
        };
        w.append(&Frame::UpsertObject {
            id,
            kind,
            x: rng.f64() * 100.0,
            y: rng.f64() * 100.0,
        })
        .unwrap();
    }
    for (token, anchor, algo) in [
        (1u32, 1u32, Algorithm::IgernMono),
        (2, 2, Algorithm::Knn(3)),
    ] {
        w.append(&Frame::Subscribe {
            token,
            anchor,
            algo,
            mode: DistanceMode::Euclidean,
        })
        .unwrap();
    }
    for t in 1..=ticks {
        for _ in 0..8 {
            let id = rng.gen_range(0..20) as u32;
            if !id.is_multiple_of(4) {
                w.append(&Frame::UpsertObject {
                    id,
                    kind: ObjectKind::A,
                    x: rng.f64() * 100.0,
                    y: rng.f64() * 100.0,
                })
                .unwrap();
            }
        }
        w.tick_boundary(t, 0).unwrap();
        if snapshots && (t == 2 || t == 4) {
            // Snapshot the state a recovery of the current log reaches
            // (exactly what the live tick thread records), but keep
            // every segment so the log remains self-sufficient.
            let covered_seq = w.next_seq();
            let mid = rec(&dir);
            let data = SnapshotData {
                tick: mid.tick,
                covered_seq,
                next_sid: mid.next_sid,
                space: space(),
                grid: 8,
                objects: mid
                    .runner
                    .store()
                    .all()
                    .iter()
                    .map(|(id, p)| (id.0, mid.runner.store().kind(id), p.x, p.y))
                    .collect(),
                subs: mid
                    .subs
                    .iter()
                    .map(|s| SubEntry {
                        sid: s.sid,
                        anchor: s.anchor.0,
                        algo: s.algo,
                        mode: s.mode,
                        answer_digest: answer_digest(mid.runner.answer(s.qid)),
                    })
                    .collect(),
            };
            write_snapshot(&dir, &data).unwrap();
        }
    }
    drop(w);
    dir
}

#[test]
fn truncated_tail_record_recovers_to_the_previous_boundary() {
    let dir = build_dir("torn", 5, false);
    let clean = rec(&dir);
    assert!(clean.report.clean());
    assert_eq!(clean.tick, 5);

    // Chop into the final record (the tick-5 boundary, 25 bytes on
    // disk): a torn write the crash left behind.
    let (_, seg) = segment_paths(&dir).unwrap().pop().unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    let cut = bytes.len() - 5;
    bytes.truncate(cut);
    std::fs::write(&seg, &bytes).unwrap();

    let r = rec(&dir);
    assert!(!r.report.clean());
    assert_eq!(r.report.torn_tail_bytes, 20, "25-byte record minus 5");
    assert_eq!(r.report.skipped_records, 0, "a tear is not a skip");
    assert_eq!(r.tick, 4, "state lands on the last intact boundary");
    assert_eq!(r.subs.len(), 2);
    assert_eq!(r.runner.store().len(), 20);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_record_mid_segment_is_skipped_and_counted() {
    let dir = build_dir("flip", 5, false);
    let clean = rec(&dir);
    let total = clean.report.replayed_records;

    // Flip one payload byte in an early record: the CRC disowns that
    // record, framing stays intact, and everything after it replays.
    let (_, seg) = segment_paths(&dir).unwrap().pop().unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    // Header is 16 bytes; first record is an upsert (8 + 22 bytes).
    // Target a payload byte of record 0 (offset 16 + 8 + 3).
    bytes[16 + 8 + 3] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();

    let r = rec(&dir);
    assert!(!r.report.clean());
    assert_eq!(r.report.skipped_records, 1);
    assert_eq!(r.report.torn_tail_bytes, 0);
    assert_eq!(
        r.report.replayed_records,
        total - 1,
        "every record after the flipped one still replays"
    );
    assert_eq!(r.tick, clean.tick, "all boundaries survive");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn destroyed_snapshots_fall_back_without_changing_the_digest() {
    let dir = build_dir("snapfall", 6, true);
    let clean = rec(&dir);
    assert!(clean.report.clean());
    assert!(clean.report.snapshot.is_some(), "newest snapshot used");

    let mut snaps = snapshot_paths(&dir).unwrap();
    assert_eq!(snaps.len(), 2);
    // Corrupt the newest snapshot: recovery must count it and fall
    // back to the older one — and because no segment was reclaimed,
    // the digest cannot change.
    let (_, _, newest) = snaps.pop().unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();
    let r = rec(&dir);
    assert_eq!(r.report.skipped_snapshots, 1);
    assert_eq!(r.digest, clean.digest);
    assert_eq!(r.tick, clean.tick);
    assert_ne!(r.report.snapshot, clean.report.snapshot);

    // Delete the newest snapshot outright: same story, silently — a
    // missing file is not damage, just absence.
    std::fs::remove_file(&newest).unwrap();
    let r = rec(&dir);
    assert_eq!(r.report.skipped_snapshots, 0);
    assert_eq!(r.digest, clean.digest);

    // Delete every snapshot: pure log replay, still the same state.
    for (_, _, path) in snapshot_paths(&dir).unwrap() {
        std::fs::remove_file(&path).unwrap();
    }
    let r = rec(&dir);
    assert!(r.report.snapshot.is_none());
    assert_eq!(r.digest, clean.digest);
    assert_eq!(r.tick, clean.tick);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Seeded mangling fuzz (`proto_edges.rs` style): damage 1–4 random
/// bytes — or truncate at a random point — of a random durability file,
/// then recover. Recovery must always return `Ok`, never panic, and
/// whenever it claims to be *clean* it must land on a valid
/// crash-prefix state — some state a real crash could have left. (A
/// truncation at an exact record boundary is indistinguishable from a
/// crash right after that record, so "clean ⇒ exactly the full digest"
/// would be too strong; "clean ⇒ some prefix digest" is exactly
/// right.)
#[test]
fn fuzz_mangled_directories_always_recover_counted() {
    let base = build_dir("fuzz-base", 5, true);
    let clean = rec(&base);
    let work = tmp_dir("fuzz-work");
    let mut rng = Rng64::seed_from_u64(0x5EED);

    let files: Vec<PathBuf> = std::fs::read_dir(&base)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(files.len() >= 3, "segments + two snapshots");

    // Enumerate every valid crash-prefix digest by replaying the
    // (single) segment truncated at each record boundary.
    let segs = segment_paths(&base).unwrap();
    assert_eq!(segs.len(), 1, "this little log stays in one segment");
    let seg_name = segs[0].1.file_name().unwrap().to_owned();
    let seg_bytes = std::fs::read(&segs[0].1).unwrap();
    let prefix_dir = tmp_dir("fuzz-prefix");
    let mut prefix_digests = std::collections::BTreeSet::new();
    let mut pos = 16usize; // header
    loop {
        std::fs::write(prefix_dir.join(&seg_name), &seg_bytes[..pos]).unwrap();
        let p = rec(&prefix_dir);
        assert!(p.report.clean());
        prefix_digests.insert(p.digest);
        if pos >= seg_bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(seg_bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
    }
    assert!(prefix_digests.contains(&clean.digest));

    for round in 0..150 {
        // Fresh copy of the directory.
        for old in std::fs::read_dir(&work).unwrap() {
            std::fs::remove_file(old.unwrap().path()).unwrap();
        }
        for f in &files {
            std::fs::copy(f, work.join(f.file_name().unwrap())).unwrap();
        }
        // Mangle one file.
        let victim = work.join(files[rng.gen_range(0..files.len())].file_name().unwrap());
        let mut bytes = std::fs::read(&victim).unwrap();
        if rng.gen_bool(0.25) {
            bytes.truncate(rng.gen_range(0..bytes.len() + 1));
        } else {
            for _ in 0..rng.gen_range(1..5) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8);
            }
        }
        std::fs::write(&victim, &bytes).unwrap();

        let r = recover(&work, 1, Placement::RoundRobin, space(), 8, None)
            .unwrap_or_else(|e| panic!("round {round}: recovery errored on damage: {e}"));
        if r.report.clean() {
            assert!(
                prefix_digests.contains(&r.digest),
                "round {round}: clean recovery must be a valid crash-prefix state"
            );
        }
        // Damaged or not, the recovered runner is live: it can take a
        // query and evaluate without panicking.
        let mut runner = r.runner;
        if runner.store().position(ObjectId(1)).is_some() {
            let q = runner.add_query(ObjectId(1), Algorithm::IgernMono).unwrap();
            runner.evaluate_all();
            let _ = runner.answer(q);
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
    std::fs::remove_dir_all(&prefix_dir).unwrap();
}
