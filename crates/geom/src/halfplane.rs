//! Perpendicular-bisector half-planes.
//!
//! The central pruning device of the paper: the bisector `b_j` between the
//! query `q` and a candidate `o_j` splits the plane into the side closer to
//! `q` (cells there stay *alive*) and the side closer to `o_j` (cells fully
//! inside it are *dead* — no object there can have `q` as its nearest
//! neighbor, Theorem 2, Case 2).

use crate::aabb::Aabb;
use crate::point::Point;
use crate::EPS;

/// Classification of a region against a half-plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionSide {
    /// Entirely inside the kept side.
    Inside,
    /// Entirely on the pruned side.
    Outside,
    /// Crosses the boundary line.
    Straddles,
}

/// The closed half-plane `{ p : a·p.x + b·p.y ≤ c }`.
///
/// Invariant: `(a, b)` is normalized to unit length so that
/// [`HalfPlane::signed_dist`] is a true Euclidean distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    a: f64,
    b: f64,
    c: f64,
}

impl HalfPlane {
    /// Half-plane from raw coefficients `a·x + b·y ≤ c`.
    ///
    /// Returns `None` when `(a, b)` is (numerically) the zero vector.
    pub fn from_coeffs(a: f64, b: f64, c: f64) -> Option<Self> {
        let n = (a * a + b * b).sqrt();
        if n < EPS {
            return None;
        }
        Some(HalfPlane {
            a: a / n,
            b: b / n,
            c: c / n,
        })
    }

    /// The perpendicular bisector of the segment `keep`–`prune`, keeping the
    /// side of `keep`: the resulting half-plane contains exactly the points
    /// at least as close to `keep` as to `prune`.
    ///
    /// Returns `None` when the two points coincide (no bisector exists).
    pub fn bisector(keep: Point, prune: Point) -> Option<Self> {
        // Points p with |p-keep|² ≤ |p-prune|² satisfy
        //   2(prune-keep)·p ≤ |prune|² - |keep|².
        let d = prune - keep;
        HalfPlane::from_coeffs(2.0 * d.x, 2.0 * d.y, prune.norm_sq() - keep.norm_sq())
    }

    /// Signed Euclidean distance of `p` to the boundary line; negative
    /// inside the kept side, positive on the pruned side.
    #[inline]
    pub fn signed_dist(&self, p: Point) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// Whether `p` lies in the (closed) kept side.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.signed_dist(p) <= EPS
    }

    /// Classify an AABB against this half-plane.
    ///
    /// A box is [`RegionSide::Outside`] only when *all four corners* lie
    /// strictly on the pruned side — this is the test that marks a grid
    /// cell dead.
    pub fn classify(&self, b: &Aabb) -> RegionSide {
        let mut inside = 0u8;
        let mut outside = 0u8;
        for corner in b.corners() {
            if self.signed_dist(corner) <= EPS {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        if outside == 0 {
            RegionSide::Inside
        } else if inside == 0 {
            RegionSide::Outside
        } else {
            RegionSide::Straddles
        }
    }

    /// Outward unit normal of the boundary (points toward the pruned side).
    #[inline]
    pub fn normal(&self) -> Point {
        Point::new(self.a, self.b)
    }

    /// Offset term of the boundary line `a·x + b·y = c`.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.c
    }

    /// Intersection point of the boundary lines of `self` and `other`, if
    /// they are not (numerically) parallel.
    pub fn line_intersection(&self, other: &HalfPlane) -> Option<Point> {
        let det = self.a * other.b - other.a * self.b;
        if det.abs() < EPS {
            return None;
        }
        Some(Point::new(
            (self.c * other.b - other.c * self.b) / det,
            (self.a * other.c - other.a * self.c) / det,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisector_keeps_near_side() {
        let q = Point::new(0.0, 0.0);
        let o = Point::new(4.0, 0.0);
        let h = HalfPlane::bisector(q, o).unwrap();
        assert!(h.contains(q));
        assert!(!h.contains(o));
        // Boundary is x = 2.
        assert!(h.signed_dist(Point::new(2.0, 123.0)).abs() < 1e-9);
        assert!(h.contains(Point::new(1.99, -5.0)));
        assert!(!h.contains(Point::new(2.01, 7.0)));
    }

    #[test]
    fn bisector_membership_matches_distance_predicate() {
        let q = Point::new(1.0, 3.0);
        let o = Point::new(-2.0, 5.5);
        let h = HalfPlane::bisector(q, o).unwrap();
        for &(x, y) in &[
            (0.0, 0.0),
            (1.0, 1.0),
            (-3.0, 6.0),
            (2.0, 2.0),
            (-0.5, 4.25),
            (10.0, -10.0),
        ] {
            let p = Point::new(x, y);
            let closer_to_q = p.dist_sq(q) <= p.dist_sq(o) + 1e-9;
            assert_eq!(h.contains(p), closer_to_q, "at {p}");
        }
    }

    #[test]
    fn coincident_points_have_no_bisector() {
        let p = Point::new(1.0, 1.0);
        assert!(HalfPlane::bisector(p, p).is_none());
    }

    #[test]
    fn signed_dist_is_euclidean() {
        // x <= 0 half-plane.
        let h = HalfPlane::from_coeffs(2.0, 0.0, 0.0).unwrap();
        assert!((h.signed_dist(Point::new(3.0, 9.0)) - 3.0).abs() < 1e-12);
        assert!((h.signed_dist(Point::new(-1.5, -2.0)) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn classify_boxes() {
        // Keep the left of x = 2 (bisector of (0,0) and (4,0)).
        let h = HalfPlane::bisector(Point::ORIGIN, Point::new(4.0, 0.0)).unwrap();
        let inside = Aabb::from_coords(0.0, 0.0, 1.0, 1.0);
        let outside = Aabb::from_coords(3.0, 0.0, 4.0, 1.0);
        let straddle = Aabb::from_coords(1.0, 0.0, 3.0, 1.0);
        assert_eq!(h.classify(&inside), RegionSide::Inside);
        assert_eq!(h.classify(&outside), RegionSide::Outside);
        assert_eq!(h.classify(&straddle), RegionSide::Straddles);
    }

    #[test]
    fn box_touching_boundary_is_not_outside() {
        let h = HalfPlane::bisector(Point::ORIGIN, Point::new(4.0, 0.0)).unwrap();
        // Box whose left edge sits exactly on x = 2: closed side counts in.
        let touching = Aabb::from_coords(2.0, 0.0, 3.0, 1.0);
        assert_ne!(h.classify(&touching), RegionSide::Inside);
        assert_ne!(h.classify(&touching), RegionSide::Outside);
    }

    #[test]
    fn line_intersection() {
        let hx = HalfPlane::from_coeffs(1.0, 0.0, 2.0).unwrap(); // x <= 2
        let hy = HalfPlane::from_coeffs(0.0, 1.0, 5.0).unwrap(); // y <= 5
        let p = hx.line_intersection(&hy).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 5.0).abs() < 1e-12);
        // Parallel lines have no intersection.
        let hx2 = HalfPlane::from_coeffs(2.0, 0.0, 8.0).unwrap();
        assert!(hx.line_intersection(&hx2).is_none());
    }

    #[test]
    fn degenerate_coeffs_rejected() {
        assert!(HalfPlane::from_coeffs(0.0, 0.0, 1.0).is_none());
    }
}
