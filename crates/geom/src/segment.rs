//! Line segments: projection, distance, intersection.
//!
//! Road-network edges are segments; the movers and several tests need
//! point-to-segment distances (is an object on the network?), and the
//! synthetic network builder can use intersection tests to keep its
//! output planar.

use crate::point::Point;
use crate::EPS;

/// A closed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Create a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Whether the segment is degenerate (a single point).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.a.dist_sq(self.b) < EPS * EPS
    }

    /// Parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    pub fn project(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let denom = ab.norm_sq();
        if denom < EPS * EPS {
            return 0.0;
        }
        ((p - self.a).dot(ab) / denom).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.project(p))
    }

    /// Squared distance from `p` to the segment.
    #[inline]
    pub fn dist_sq(&self, p: Point) -> f64 {
        self.closest_point(p).dist_sq(p)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist(&self, p: Point) -> f64 {
        self.dist_sq(p).sqrt()
    }

    /// Point at arc-length parameter `t ∈ [0, 1]`.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Whether two closed segments intersect (including touching
    /// endpoints and collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Point, b: Point, c: Point) -> bool {
            // c collinear with ab assumed; is it within the box?
            c.x >= a.x.min(b.x) - EPS
                && c.x <= a.x.max(b.x) + EPS
                && c.y >= a.y.min(b.y) - EPS
                && c.y <= a.y.max(b.y) + EPS
        }
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p3, p4, p1);
        let d2 = orient(p3, p4, p2);
        let d3 = orient(p1, p2, p3);
        let d4 = orient(p1, p2, p4);
        if ((d1 > EPS && d2 < -EPS) || (d1 < -EPS && d2 > EPS))
            && ((d3 > EPS && d4 < -EPS) || (d3 < -EPS && d4 > EPS))
        {
            return true;
        }
        (d1.abs() <= EPS && on_segment(p3, p4, p1))
            || (d2.abs() <= EPS && on_segment(p3, p4, p2))
            || (d3.abs() <= EPS && on_segment(p1, p2, p3))
            || (d4.abs() <= EPS && on_segment(p1, p2, p4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project(Point::new(-5.0, 3.0)), 0.0);
        assert_eq!(s.project(Point::new(15.0, 3.0)), 1.0);
        assert!((s.project(Point::new(4.0, 7.0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn distance_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist(Point::new(5.0, 3.0)), 3.0); // perpendicular
        assert_eq!(s.dist(Point::new(13.0, 4.0)), 5.0); // past endpoint
        assert_eq!(s.dist(Point::new(7.0, 0.0)), 0.0); // on segment
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert!(s.is_empty());
        assert_eq!(s.dist(Point::new(5.0, 6.0)), 5.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(seg(0.0, 0.0, 4.0, 4.0).intersects(&seg(0.0, 4.0, 4.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 1.0).intersects(&seg(2.0, 2.0, 3.0, 1.0)));
    }

    #[test]
    fn touching_endpoints_intersect() {
        assert!(seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(2.0, 0.0, 4.0, 2.0)));
        // T-junction.
        assert!(seg(0.0, 0.0, 4.0, 0.0).intersects(&seg(2.0, -1.0, 2.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        assert!(seg(0.0, 0.0, 4.0, 0.0).intersects(&seg(2.0, 0.0, 6.0, 0.0)));
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn at_walks_the_segment() {
        let s = seg(0.0, 0.0, 10.0, 20.0);
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
        assert_eq!(s.at(0.5), Point::new(5.0, 10.0));
        assert!((s.len() - (100.0f64 + 400.0).sqrt()).abs() < 1e-12);
    }
}
