//! Incremental Voronoi-cell construction by half-plane clipping.
//!
//! The repetitive-Voronoi baseline for bichromatic RNN (paper §6, "Voronoi
//! cost") rebuilds, at every timestamp, the Voronoi cell of the query
//! `q_A` with respect to the A-objects: B-objects inside that cell have
//! `q_A` as their nearest A-object and are exactly the bichromatic RNNs.
//!
//! The cell is built by clipping the data-space box with the bisector of
//! each A-site, with sites supplied in increasing distance from `q_A`.
//! [`VoronoiCell::is_complete_up_to`] gives the standard sufficient
//! stopping rule: once the next unseen site is farther than twice the
//! distance from `q_A` to the farthest cell vertex, no further site can
//! clip the cell.

use crate::aabb::Aabb;
use crate::halfplane::HalfPlane;
use crate::point::Point;
use crate::polygon::ConvexPolygon;

/// The (partial) Voronoi cell of a center point, under incremental
/// clipping.
#[derive(Debug, Clone)]
pub struct VoronoiCell {
    center: Point,
    cell: ConvexPolygon,
    sites_applied: usize,
}

impl VoronoiCell {
    /// Start with the whole data space as the cell of `center`.
    pub fn new(center: Point, space: &Aabb) -> Self {
        debug_assert!(space.contains(center), "center outside data space");
        VoronoiCell {
            center,
            cell: ConvexPolygon::from_aabb(space),
            sites_applied: 0,
        }
    }

    /// The cell center (the query object).
    #[inline]
    pub fn center(&self) -> Point {
        self.center
    }

    /// The current clipped polygon.
    #[inline]
    pub fn polygon(&self) -> &ConvexPolygon {
        &self.cell
    }

    /// Number of sites whose bisectors have been applied.
    #[inline]
    pub fn sites_applied(&self) -> usize {
        self.sites_applied
    }

    /// Clip the cell by the bisector with `site`. Sites coincident with the
    /// center are ignored (they cannot define a bisector; ties keep the
    /// center's side closed).
    pub fn add_site(&mut self, site: Point) {
        if let Some(h) = HalfPlane::bisector(self.center, site) {
            self.cell.clip(&h);
            self.sites_applied += 1;
        }
    }

    /// Distance from the center to the farthest vertex of the current cell.
    pub fn max_vertex_dist(&self) -> f64 {
        self.cell.max_vertex_dist(self.center)
    }

    /// Sufficient stopping rule: if every not-yet-applied site is at
    /// distance `> 2 · max_vertex_dist()` from the center, the cell is
    /// final. (Such a site's bisector lies at distance greater than the
    /// farthest vertex and cannot intersect the cell.)
    pub fn is_complete_up_to(&self, next_site_dist: f64) -> bool {
        next_site_dist > 2.0 * self.max_vertex_dist()
    }

    /// Whether `p` lies in the current cell.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.cell.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Aabb {
        Aabb::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn cell_of_isolated_center_is_whole_space() {
        let v = VoronoiCell::new(Point::new(5.0, 5.0), &space());
        assert!((v.polygon().area() - 100.0).abs() < 1e-9);
        assert!(v.contains(Point::new(0.1, 9.9)));
    }

    #[test]
    fn two_site_cell_is_half_space() {
        let mut v = VoronoiCell::new(Point::new(2.0, 5.0), &space());
        v.add_site(Point::new(8.0, 5.0));
        // Bisector x = 5; cell is [0,5]×[0,10].
        assert!((v.polygon().area() - 50.0).abs() < 1e-9);
        assert!(v.contains(Point::new(4.9, 1.0)));
        assert!(!v.contains(Point::new(5.1, 1.0)));
    }

    #[test]
    fn membership_equals_nearest_site_predicate() {
        // Deterministic pseudo-random sites via an LCG; no external deps.
        let mut state = 42u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let center = Point::new(5.0, 5.0);
        let sites: Vec<Point> = (0..24).map(|_| Point::new(rnd(), rnd())).collect();
        let mut v = VoronoiCell::new(center, &space());
        for &s in &sites {
            v.add_site(s);
        }
        // Probe a grid of points: inside-cell ⇔ center is the nearest site.
        for i in 0..20 {
            for j in 0..20 {
                let p = Point::new(0.25 + i as f64 * 0.5, 0.25 + j as f64 * 0.5);
                let d_center = p.dist_sq(center);
                let d_best = sites
                    .iter()
                    .map(|s| p.dist_sq(*s))
                    .fold(f64::INFINITY, f64::min);
                let in_cell = v.contains(p);
                // Skip near-ties where float noise decides either way.
                if (d_center - d_best).abs() > 1e-6 {
                    assert_eq!(in_cell, d_center < d_best, "probe {p}");
                }
            }
        }
    }

    #[test]
    fn stopping_rule_is_sound() {
        let center = Point::new(5.0, 5.0);
        let mut v = VoronoiCell::new(center, &space());
        v.add_site(Point::new(6.0, 5.0));
        v.add_site(Point::new(4.0, 5.0));
        v.add_site(Point::new(5.0, 6.0));
        v.add_site(Point::new(5.0, 4.0));
        let r = v.max_vertex_dist();
        // A site farther than 2r cannot change the cell.
        let area_before = v.polygon().area();
        let far = center + Point::new(2.0 * r + 0.5, 0.0);
        assert!(v.is_complete_up_to(center.dist(far)));
        if space().contains(far) {
            v.add_site(far);
            assert!((v.polygon().area() - area_before).abs() < 1e-9);
        }
    }

    #[test]
    fn coincident_site_ignored() {
        let center = Point::new(5.0, 5.0);
        let mut v = VoronoiCell::new(center, &space());
        v.add_site(center);
        assert_eq!(v.sites_applied(), 0);
        assert!((v.polygon().area() - 100.0).abs() < 1e-9);
    }
}
