//! Circles — the "dotted circles" of the paper's verification phase
//! (the NN test around each candidate) and range-query predicates.

use crate::aabb::Aabb;
use crate::point::Point;

/// A circle given by center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    /// Create a circle; the radius must be non-negative.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative radius");
        Circle { center, radius }
    }

    /// Whether `p` lies in the closed disk.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Whether the closed disk intersects the closed box.
    #[inline]
    pub fn intersects_aabb(&self, b: &Aabb) -> bool {
        b.mindist_sq(self.center) <= self.radius * self.radius
    }

    /// Whether the closed box lies entirely inside the disk.
    #[inline]
    pub fn contains_aabb(&self, b: &Aabb) -> bool {
        b.maxdist_sq(self.center) <= self.radius * self.radius
    }

    /// The bounding box of the circle.
    #[inline]
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_coords(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_closed() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 3.0))); // on boundary
        assert!(c.contains(Point::new(2.0, 2.0)));
        assert!(!c.contains(Point::new(3.5, 1.0)));
    }

    #[test]
    fn aabb_relations() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        let inside = Aabb::from_coords(-0.5, -0.5, 0.5, 0.5);
        let crossing = Aabb::from_coords(0.5, 0.5, 2.0, 2.0);
        let outside = Aabb::from_coords(2.0, 2.0, 3.0, 3.0);
        assert!(c.contains_aabb(&inside));
        assert!(c.intersects_aabb(&inside));
        assert!(c.intersects_aabb(&crossing));
        assert!(!c.contains_aabb(&crossing));
        assert!(!c.intersects_aabb(&outside));
    }

    #[test]
    fn bounding_box_is_tight() {
        let c = Circle::new(Point::new(2.0, -1.0), 3.0);
        let b = c.bounding_box();
        assert_eq!(b, Aabb::from_coords(-1.0, -4.0, 5.0, 2.0));
    }

    #[test]
    fn zero_radius_circle() {
        let c = Circle::new(Point::new(1.0, 1.0), 0.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(!c.contains(Point::new(1.0, 1.0001)));
    }
}
