//! Convex polygons with half-plane clipping.
//!
//! Used to materialize bounded regions: the Voronoi cell of a bichromatic
//! query (paper §4.3 relates IGERN's initial step to Voronoi-cell
//! construction) and, in ablations, an exact (non-grid) alive region.

use crate::aabb::Aabb;
use crate::halfplane::HalfPlane;
use crate::point::Point;
use crate::EPS;

/// A convex polygon stored as counter-clockwise vertices.
///
/// The empty polygon (no vertices) represents an empty region; clipping can
/// produce it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Build from counter-clockwise vertices. No convexity check is done in
    /// release builds; callers own that invariant.
    pub fn new(vertices: Vec<Point>) -> Self {
        ConvexPolygon { vertices }
    }

    /// The polygon covering an AABB.
    pub fn from_aabb(b: &Aabb) -> Self {
        ConvexPolygon {
            vertices: b.corners().to_vec(),
        }
    }

    /// Reset to the polygon covering an AABB, reusing the vertex storage.
    pub fn set_from_aabb(&mut self, b: &Aabb) {
        self.vertices.clear();
        self.vertices.extend_from_slice(&b.corners());
    }

    /// Become a copy of `other`, reusing the vertex storage.
    pub fn copy_from(&mut self, other: &ConvexPolygon) {
        self.vertices.clear();
        self.vertices.extend_from_slice(&other.vertices);
    }

    /// The vertices, counter-clockwise.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Clip by a half-plane (Sutherland–Hodgman on a convex subject), in
    /// place. After the call the polygon is the intersection with `h`'s
    /// kept side.
    pub fn clip(&mut self, h: &HalfPlane) {
        let mut scratch = Vec::new();
        self.clip_with(h, &mut scratch);
    }

    /// [`ConvexPolygon::clip`] with a caller-provided output buffer: the
    /// clipped ring is built in `scratch` and swapped in, so a warm buffer
    /// makes repeated clipping allocation-free.
    pub fn clip_with(&mut self, h: &HalfPlane, scratch: &mut Vec<Point>) {
        if self.vertices.is_empty() {
            return;
        }
        let n = self.vertices.len();
        let out = scratch;
        out.clear();
        out.reserve(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let dc = h.signed_dist(cur);
            let dn = h.signed_dist(nxt);
            let cur_in = dc <= EPS;
            let nxt_in = dn <= EPS;
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary; emit the crossing point.
                let t = dc / (dc - dn);
                out.push(cur.lerp(nxt, t));
            }
        }
        // Drop (near-)duplicate consecutive vertices produced by clipping
        // exactly through a vertex.
        out.dedup_by(|a, b| a.dist_sq(*b) < EPS * EPS);
        if out.len() >= 2 && out[0].dist_sq(*out.last().unwrap()) < EPS * EPS {
            out.pop();
        }
        if out.len() < 3 {
            out.clear();
        }
        std::mem::swap(&mut self.vertices, out);
    }

    /// A clipped copy.
    pub fn clipped(&self, h: &HalfPlane) -> Self {
        let mut p = self.clone();
        p.clip(h);
        p
    }

    /// Whether `p` is inside (or on the boundary of) the polygon.
    pub fn contains(&self, p: Point) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (b - a).cross(p - a) < -EPS {
                return false;
            }
        }
        true
    }

    /// Polygon area (shoelace formula).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        acc * 0.5
    }

    /// Maximum distance from `p` to any vertex (i.e. to any point of the
    /// polygon, by convexity). Zero for the empty polygon.
    pub fn max_vertex_dist(&self, p: Point) -> f64 {
        self.vertices.iter().map(|v| v.dist(p)).fold(0.0, f64::max)
    }

    /// Axis-aligned bounding box of the polygon, if non-empty.
    pub fn bounding_box(&self) -> Option<Aabb> {
        if self.is_empty() {
            return None;
        }
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        Some(Aabb::new(min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_aabb(&Aabb::unit())
    }

    #[test]
    fn square_area_and_containment() {
        let p = unit_square();
        assert!((p.area() - 1.0).abs() < 1e-12);
        assert!(p.contains(Point::new(0.5, 0.5)));
        assert!(p.contains(Point::new(0.0, 0.0))); // boundary
        assert!(!p.contains(Point::new(1.1, 0.5)));
    }

    #[test]
    fn clip_halves_square() {
        let mut p = unit_square();
        // Keep x <= 0.5.
        p.clip(&HalfPlane::from_coeffs(1.0, 0.0, 0.5).unwrap());
        assert!((p.area() - 0.5).abs() < 1e-9);
        assert!(p.contains(Point::new(0.25, 0.5)));
        assert!(!p.contains(Point::new(0.75, 0.5)));
    }

    #[test]
    fn clip_to_empty() {
        let mut p = unit_square();
        p.clip(&HalfPlane::from_coeffs(1.0, 0.0, -1.0).unwrap()); // x <= -1
        assert!(p.is_empty());
        assert_eq!(p.area(), 0.0);
        assert!(!p.contains(Point::new(0.5, 0.5)));
    }

    #[test]
    fn clip_is_idempotent() {
        let h = HalfPlane::from_coeffs(1.0, 1.0, 1.0).unwrap();
        let once = unit_square().clipped(&h);
        let twice = once.clipped(&h);
        assert!((once.area() - twice.area()).abs() < 1e-9);
    }

    #[test]
    fn diagonal_clip_makes_triangle() {
        let mut p = unit_square();
        // Keep x + y <= 1: lower-left triangle, area 1/2.
        p.clip(&HalfPlane::from_coeffs(1.0, 1.0, 1.0).unwrap());
        assert_eq!(p.vertices().len(), 3);
        assert!((p.area() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn successive_clips_build_voronoi_like_cell() {
        let mut p = ConvexPolygon::from_aabb(&Aabb::from_coords(0.0, 0.0, 10.0, 10.0));
        let q = Point::new(5.0, 5.0);
        let sites = [
            Point::new(9.0, 5.0),
            Point::new(1.0, 5.0),
            Point::new(5.0, 9.0),
            Point::new(5.0, 1.0),
        ];
        for s in sites {
            p.clip(&HalfPlane::bisector(q, s).unwrap());
        }
        // Cell should be the square [3,7]², area 16.
        assert!((p.area() - 16.0).abs() < 1e-9);
        assert!(p.contains(q));
        for s in sites {
            assert!(!p.contains(s));
        }
    }

    #[test]
    fn max_vertex_dist_over_square() {
        let p = unit_square();
        let d = p.max_vertex_dist(Point::new(0.0, 0.0));
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_roundtrip() {
        let b = Aabb::from_coords(-1.0, 2.0, 4.0, 5.0);
        let p = ConvexPolygon::from_aabb(&b);
        assert_eq!(p.bounding_box().unwrap(), b);
        assert!(ConvexPolygon::default().bounding_box().is_none());
    }

    #[test]
    fn clip_through_vertex_no_duplicates() {
        let mut p = unit_square();
        // Boundary passes exactly through (0,0) and (1,1).
        p.clip(&HalfPlane::from_coeffs(1.0, -1.0, 0.0).unwrap());
        // Triangle (0,0),(1,1),(0,1): area 1/2, three vertices.
        assert!((p.area() - 0.5).abs() < 1e-9);
        assert!(p.vertices().len() == 3, "got {:?}", p.vertices());
    }
}
