//! Planar geometry substrate for the IGERN reproduction.
//!
//! Everything in this crate is exact 2-D Euclidean geometry on `f64`
//! coordinates: points, axis-aligned boxes, perpendicular-bisector
//! half-planes, convex polygons with half-plane clipping, the 60° pie
//! sectors used by the CRNN baseline, and Voronoi-cell construction by
//! incremental clipping.
//!
//! The crate is dependency-free and deliberately small: each concept the
//! paper relies on ("bisector", "alive region", "pie region", "Voronoi
//! cell") maps to one module here.

pub mod aabb;
pub mod circle;
pub mod halfplane;
pub mod point;
pub mod polygon;
pub mod sector;
pub mod segment;
pub mod voronoi;

pub use aabb::Aabb;
pub use circle::Circle;
pub use halfplane::{HalfPlane, RegionSide};
pub use point::Point;
pub use polygon::ConvexPolygon;
pub use sector::{sector_of, Sector, SECTOR_COUNT};
pub use segment::Segment;
pub use voronoi::VoronoiCell;

/// Tolerance used for geometric predicates that must be robust to
/// floating-point rounding (point-on-line tests, clipping).
pub const EPS: f64 = 1e-9;
