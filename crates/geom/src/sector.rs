//! 60° pie sectors around a query point.
//!
//! The CRNN baseline (Xia & Zhang, ICDE'06) divides the space around `q`
//! into six pie regions; by the classic result of Stanoi et al., the
//! nearest neighbor of `q` inside each pie is the only possible RNN from
//! that pie, so six candidates suffice in the monochromatic case.

use crate::aabb::Aabb;
use crate::point::Point;
use crate::EPS;
use std::f64::consts::TAU;

/// Number of pies (fixed at six by the underlying geometric theorem).
pub const SECTOR_COUNT: usize = 6;

/// Width of each pie in radians (60°).
pub const SECTOR_ANGLE: f64 = TAU / SECTOR_COUNT as f64;

/// Index (0..6) of the pie around `center` that contains `p`.
///
/// Pie `i` spans angles `[i·60°, (i+1)·60°)` measured counter-clockwise
/// from the positive x-axis. `p == center` is assigned to pie 0.
#[inline]
pub fn sector_of(center: Point, p: Point) -> usize {
    if center.dist_sq(p) == 0.0 {
        return 0;
    }
    let a = center.angle_to(p);
    let idx = (a / SECTOR_ANGLE) as usize;
    idx.min(SECTOR_COUNT - 1)
}

/// One unbounded 60° cone with apex at `center`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sector {
    pub center: Point,
    pub index: usize,
}

impl Sector {
    /// The `index`-th pie around `center`. Panics if `index >= 6`.
    pub fn new(center: Point, index: usize) -> Self {
        assert!(index < SECTOR_COUNT, "sector index out of range");
        Sector { center, index }
    }

    /// All six pies around `center`.
    pub fn all(center: Point) -> [Sector; SECTOR_COUNT] {
        std::array::from_fn(|i| Sector::new(center, i))
    }

    /// Start angle of the pie (radians, CCW from +x).
    #[inline]
    pub fn start_angle(&self) -> f64 {
        self.index as f64 * SECTOR_ANGLE
    }

    /// End angle of the pie.
    #[inline]
    pub fn end_angle(&self) -> f64 {
        (self.index + 1) as f64 * SECTOR_ANGLE
    }

    /// Whether `p` lies in this pie (apex belongs to pie 0).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        sector_of(self.center, p) == self.index
    }

    /// Unit direction of the boundary ray at angle `a`.
    fn ray_dir(a: f64) -> Point {
        Point::new(a.cos(), a.sin())
    }

    /// Whether the unbounded cone intersects the closed box.
    ///
    /// Exact for convex cone vs. box: they intersect iff the box contains
    /// the apex, or a box corner lies in the cone, or one of the two
    /// boundary rays passes through the box.
    pub fn intersects_aabb(&self, b: &Aabb) -> bool {
        if b.contains(self.center) {
            return true;
        }
        if b.corners().iter().any(|&c| self.contains(c)) {
            return true;
        }
        ray_hits_aabb(self.center, Self::ray_dir(self.start_angle()), b)
            || ray_hits_aabb(self.center, Self::ray_dir(self.end_angle()), b)
    }
}

/// Whether the ray `origin + t·dir (t ≥ 0)` intersects the closed box
/// (slab method).
fn ray_hits_aabb(origin: Point, dir: Point, b: &Aabb) -> bool {
    let mut tmin: f64 = 0.0;
    let mut tmax = f64::INFINITY;
    for (o, d, lo, hi) in [
        (origin.x, dir.x, b.min.x, b.max.x),
        (origin.y, dir.y, b.min.y, b.max.y),
    ] {
        if d.abs() < EPS {
            if o < lo - EPS || o > hi + EPS {
                return false;
            }
        } else {
            let t1 = (lo - o) / d;
            let t2 = (hi - o) / d;
            let (t1, t2) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(t1);
            tmax = tmax.min(t2);
            if tmin > tmax + EPS {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_sectors_partition_the_plane() {
        let c = Point::new(3.0, 3.0);
        // Walk a circle of directions; each must land in exactly one pie.
        let mut seen = [0usize; SECTOR_COUNT];
        for k in 0..360 {
            // Offset by half a degree so no probe sits on a pie boundary,
            // where the floor computation is legitimately tie-broken by
            // floating-point rounding.
            let a = (k as f64 + 0.5) * TAU / 360.0;
            let p = c + Point::new(a.cos(), a.sin()) * 5.0;
            seen[sector_of(c, p)] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert_eq!(n, 60, "pie {i} should cover exactly 60 of 360 degrees");
        }
    }

    #[test]
    fn sector_of_axis_directions() {
        let c = Point::ORIGIN;
        assert_eq!(sector_of(c, Point::new(1.0, 0.1)), 0);
        assert_eq!(sector_of(c, Point::new(0.0, 1.0)), 1);
        assert_eq!(sector_of(c, Point::new(-1.0, 0.1)), 2);
        assert_eq!(sector_of(c, Point::new(-1.0, -0.1)), 3);
        assert_eq!(sector_of(c, Point::new(0.0, -1.0)), 4);
        assert_eq!(sector_of(c, Point::new(1.0, -0.1)), 5);
    }

    #[test]
    fn apex_belongs_to_sector_zero() {
        let c = Point::new(1.0, 2.0);
        assert_eq!(sector_of(c, c), 0);
        assert!(Sector::new(c, 0).contains(c));
        assert!(!Sector::new(c, 3).contains(c));
    }

    #[test]
    fn containment_matches_sector_of() {
        let c = Point::new(-2.0, 5.0);
        for i in 0..SECTOR_COUNT {
            let s = Sector::new(c, i);
            let mid = (s.start_angle() + s.end_angle()) * 0.5;
            let p = c + Point::new(mid.cos(), mid.sin()) * 3.0;
            assert!(s.contains(p));
            assert_eq!(sector_of(c, p), i);
        }
    }

    #[test]
    fn cone_box_intersection() {
        let c = Point::ORIGIN;
        let s0 = Sector::new(c, 0); // 0°..60°
                                    // Box straight to the right, around the 30° midline.
        assert!(s0.intersects_aabb(&Aabb::from_coords(2.0, 1.0, 3.0, 2.0)));
        // Box containing the apex intersects all pies.
        let around = Aabb::from_coords(-1.0, -1.0, 1.0, 1.0);
        for i in 0..SECTOR_COUNT {
            assert!(Sector::new(c, i).intersects_aabb(&around));
        }
        // Box straight up-left is out of pie 0.
        assert!(!s0.intersects_aabb(&Aabb::from_coords(-5.0, 2.0, -4.0, 3.0)));
        // Thin box crossed only by the boundary ray at 0°.
        assert!(s0.intersects_aabb(&Aabb::from_coords(5.0, -0.5, 6.0, 0.0)));
    }

    #[test]
    fn ray_aabb_slab() {
        let b = Aabb::from_coords(1.0, 1.0, 2.0, 2.0);
        assert!(ray_hits_aabb(Point::ORIGIN, Point::new(1.0, 1.0), &b));
        assert!(!ray_hits_aabb(Point::ORIGIN, Point::new(-1.0, -1.0), &b));
        assert!(!ray_hits_aabb(Point::ORIGIN, Point::new(1.0, 0.0), &b));
        // Ray starting inside the box.
        assert!(ray_hits_aabb(
            Point::new(1.5, 1.5),
            Point::new(0.0, 1.0),
            &b
        ));
        // Axis-parallel ray on the box edge.
        assert!(ray_hits_aabb(
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
            &b
        ));
    }
}
