//! Axis-aligned bounding boxes (grid cells, the data space).

use crate::point::Point;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Point,
    pub max: Point,
}

impl Aabb {
    /// Build from min/max corners. Panics in debug builds if inverted.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "inverted AABB");
        Aabb { min, max }
    }

    /// Build from raw coordinates.
    #[inline]
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Aabb::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The unit square `[0,1]²`.
    pub fn unit() -> Self {
        Aabb::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the closed box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two closed boxes overlap.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The four corners, counter-clockwise from `min`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Minimum squared distance from `p` to any point of the box
    /// (zero when `p` is inside). This is the `mindist` lower bound used
    /// to order grid cells during best-first NN search.
    #[inline]
    pub fn mindist_sq(&self, p: Point) -> f64 {
        let dx = if p.x < self.min.x {
            self.min.x - p.x
        } else if p.x > self.max.x {
            p.x - self.max.x
        } else {
            0.0
        };
        let dy = if p.y < self.min.y {
            self.min.y - p.y
        } else if p.y > self.max.y {
            p.y - self.max.y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Minimum distance from `p` to the box.
    #[inline]
    pub fn mindist(&self, p: Point) -> f64 {
        self.mindist_sq(p).sqrt()
    }

    /// Maximum squared distance from `p` to any point of the box (always a
    /// corner).
    #[inline]
    pub fn maxdist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Maximum distance from `p` to the box.
    #[inline]
    pub fn maxdist(&self, p: Point) -> f64 {
        self.maxdist_sq(p).sqrt()
    }

    /// Clamp a point into the box.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx() -> Aabb {
        Aabb::from_coords(1.0, 2.0, 3.0, 6.0)
    }

    #[test]
    fn dimensions() {
        let b = bx();
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 8.0);
        assert_eq!(b.center(), Point::new(2.0, 4.0));
    }

    #[test]
    fn containment_is_closed() {
        let b = bx();
        assert!(b.contains(Point::new(1.0, 2.0))); // corner
        assert!(b.contains(Point::new(3.0, 6.0))); // corner
        assert!(b.contains(Point::new(2.0, 4.0))); // interior
        assert!(!b.contains(Point::new(0.999, 4.0)));
        assert!(!b.contains(Point::new(2.0, 6.001)));
    }

    #[test]
    fn mindist_zero_inside() {
        let b = bx();
        assert_eq!(b.mindist_sq(Point::new(2.0, 3.0)), 0.0);
    }

    #[test]
    fn mindist_to_edge_and_corner() {
        let b = bx();
        // Left of the box: distance along x only.
        assert_eq!(b.mindist(Point::new(0.0, 4.0)), 1.0);
        // Below-left: diagonal to corner (1,2).
        let d = b.mindist(Point::new(0.0, 0.0));
        assert!((d - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn maxdist_is_farthest_corner() {
        let b = bx();
        // From (1,2), the farthest corner is (3,6).
        let d = b.maxdist(Point::new(1.0, 2.0));
        assert!((d - (4.0f64 + 16.0).sqrt()).abs() < 1e-12);
        // maxdist >= mindist always.
        let p = Point::new(-5.0, 9.0);
        assert!(b.maxdist_sq(p) >= b.mindist_sq(p));
    }

    #[test]
    fn intersection_cases() {
        let b = bx();
        assert!(b.intersects(&Aabb::from_coords(2.0, 3.0, 4.0, 7.0))); // overlap
        assert!(b.intersects(&Aabb::from_coords(3.0, 6.0, 9.0, 9.0))); // corner touch
        assert!(!b.intersects(&Aabb::from_coords(3.1, 2.0, 4.0, 6.0))); // disjoint x
        assert!(!b.intersects(&Aabb::from_coords(1.0, 6.1, 3.0, 7.0))); // disjoint y
    }

    #[test]
    fn clamp_projects_onto_box() {
        let b = bx();
        assert_eq!(b.clamp(Point::new(0.0, 0.0)), Point::new(1.0, 2.0));
        assert_eq!(b.clamp(Point::new(2.0, 4.0)), Point::new(2.0, 4.0));
        assert_eq!(b.clamp(Point::new(10.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn corners_ccw() {
        let c = bx().corners();
        assert_eq!(c[0], Point::new(1.0, 2.0));
        assert_eq!(c[2], Point::new(3.0, 6.0));
        // Shoelace area of the corner loop equals the box area.
        let mut area2 = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            area2 += a.cross(b);
        }
        assert!((area2 * 0.5 - bx().area()).abs() < 1e-12);
    }
}
