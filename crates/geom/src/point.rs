//! 2-D points and distance computations.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point (or vector) in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in comparisons: it avoids the
    /// square root and is exact for the orderings the algorithms need.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component), treating both points as vectors.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared length of the vector.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Length of the vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Angle of the vector from `self` to `other`, in `[0, 2π)`.
    #[inline]
    pub fn angle_to(&self, other: Point) -> f64 {
        let a = (other.y - self.y).atan2(other.x - self.x);
        if a < 0.0 {
            a + std::f64::consts::TAU
        } else {
            a
        }
    }

    /// Returns the vector rotated by `theta` radians counter-clockwise.
    #[inline]
    pub fn rotated(&self, theta: f64) -> Point {
        let (s, c) = theta.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Whether both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, k: f64) -> Point {
        Point::new(self.x / k, self.y / k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.dist_sq(b), b.dist_sq(a));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -3.0);
        let m = a.midpoint(b);
        assert!((m.dist(a) - m.dist(b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(-4.0, 9.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn angle_to_quadrants() {
        let o = Point::ORIGIN;
        assert!((o.angle_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.angle_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.angle_to(Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
        // Negative-y half maps to [π, 2π).
        assert!(o.angle_to(Point::new(0.0, -1.0)) > std::f64::consts::PI);
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Point::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - 5.0).abs() < 1e-12);
    }
}
