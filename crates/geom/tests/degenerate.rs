//! Degenerate-input tests for the geometry kernel: coincident points,
//! collinear configurations, zero-area clips, and the six-pie cover of
//! the full angle range — the inputs that turn into `Option::None` or
//! empty regions rather than NaN-poisoned geometry.

use std::f64::consts::TAU;

use igern_geom::{sector_of, Aabb, ConvexPolygon, HalfPlane, Point, Sector, EPS, SECTOR_COUNT};

#[test]
fn bisector_of_coincident_points_is_none() {
    let p = Point::new(3.0, -4.0);
    assert!(HalfPlane::bisector(p, p).is_none());
    // Numerically coincident (separation far below EPS) degenerates the
    // same way instead of producing a garbage normal.
    let q = Point::new(3.0 + EPS * 1e-3, -4.0);
    assert!(HalfPlane::bisector(p, q).is_none());
    // Zero normal vectors are rejected at the coefficient level too.
    assert!(HalfPlane::from_coeffs(0.0, 0.0, 1.0).is_none());
    assert!(HalfPlane::from_coeffs(EPS * 1e-3, 0.0, 1.0).is_none());
}

#[test]
fn bisector_of_distinct_points_keeps_the_near_side() {
    let keep = Point::new(0.0, 0.0);
    let prune = Point::new(4.0, 0.0);
    let h = HalfPlane::bisector(keep, prune).unwrap();
    assert!(h.contains(keep));
    assert!(!h.contains(prune));
    // The midpoint sits on the boundary line.
    let mid = keep.midpoint(prune);
    assert!(h.signed_dist(mid).abs() <= EPS, "{}", h.signed_dist(mid));
}

#[test]
fn collinear_bisectors_are_parallel_and_never_intersect() {
    // Three collinear points produce parallel bisector boundaries;
    // line_intersection must report None, not a far-away fake vertex.
    let a = Point::new(0.0, 0.0);
    let b = Point::new(1.0, 1.0);
    let c = Point::new(5.0, 5.0);
    let h1 = HalfPlane::bisector(a, b).unwrap();
    let h2 = HalfPlane::bisector(a, c).unwrap();
    assert!(h1.line_intersection(&h2).is_none());
    // Self-intersection is degenerate as well.
    assert!(h1.line_intersection(&h1).is_none());
    // A non-collinear third point does intersect.
    let h3 = HalfPlane::bisector(a, Point::new(0.0, 2.0)).unwrap();
    let x = h1.line_intersection(&h3).unwrap();
    // The crossing is equidistant from all three generators.
    assert!((x.dist(a) - x.dist(b)).abs() < 1e-9);
    assert!((x.dist(a) - x.dist(Point::new(0.0, 2.0))).abs() < 1e-9);
}

#[test]
fn clipping_to_zero_area_yields_the_empty_polygon() {
    let unit = Aabb::from_coords(0.0, 0.0, 1.0, 1.0);

    // A half-plane strictly excluding the box empties it.
    let mut p = ConvexPolygon::from_aabb(&unit);
    p.clip(&HalfPlane::from_coeffs(1.0, 0.0, -5.0).unwrap()); // x ≤ -5
    assert!(p.is_empty());
    assert_eq!(p.vertices().len(), 0);
    assert_eq!(p.area(), 0.0);
    assert!(!p.contains(Point::new(0.5, 0.5)));

    // Clipping the empty polygon stays empty (no panic, no resurrection).
    p.clip(&HalfPlane::from_coeffs(0.0, 1.0, 10.0).unwrap());
    assert!(p.is_empty());

    // A boundary exactly through an edge collapses the region to a
    // zero-area sliver, which canonicalizes to empty.
    let mut q = ConvexPolygon::from_aabb(&unit);
    q.clip(&HalfPlane::from_coeffs(1.0, 0.0, 0.0).unwrap()); // x ≤ 0
    assert!(q.is_empty(), "sliver left {:?}", q.vertices());

    // A boundary exactly through a corner keeps the full box on the
    // kept side without duplicate corner vertices.
    let mut r = ConvexPolygon::from_aabb(&unit);
    r.clip(&HalfPlane::from_coeffs(-1.0, -1.0, 0.0).unwrap()); // x + y ≥ 0
    assert_eq!(r.vertices().len(), 4, "{:?}", r.vertices());
    assert!((r.area() - 1.0).abs() < 1e-12);

    // Opposing half-planes squeeze the box to a line, then to nothing.
    let mut s = ConvexPolygon::from_aabb(&unit);
    s.clip(&HalfPlane::from_coeffs(1.0, 0.0, 0.5).unwrap()); // x ≤ 0.5
    s.clip(&HalfPlane::from_coeffs(-1.0, 0.0, -0.5).unwrap()); // x ≥ 0.5
    assert!(s.is_empty(), "line sliver left {:?}", s.vertices());
}

#[test]
fn six_pies_cover_the_full_circle_exactly_once() {
    let c = Point::new(-7.0, 2.5);
    let pies = Sector::all(c);
    assert_eq!(pies.len(), SECTOR_COUNT);

    // The angular ranges chain with no gap and no overlap, spanning 2π.
    for w in pies.windows(2) {
        assert_eq!(w[0].end_angle(), w[1].start_angle());
    }
    assert_eq!(pies[0].start_angle(), 0.0);
    assert!((pies[SECTOR_COUNT - 1].end_angle() - TAU).abs() < 1e-12);

    // Every direction — including probes near pie boundaries — lands in
    // exactly one pie, and `contains` agrees with `sector_of`.
    for k in 0..720 {
        let a = k as f64 * TAU / 720.0 + 1e-7;
        let p = c + Point::new(a.cos(), a.sin()) * 3.0;
        let owners: Vec<usize> = (0..SECTOR_COUNT).filter(|&i| pies[i].contains(p)).collect();
        assert_eq!(owners.len(), 1, "angle {a}: owners {owners:?}");
        assert_eq!(owners[0], sector_of(c, p));
    }

    // The apex itself belongs to pie 0 by convention.
    let owners: Vec<usize> = (0..SECTOR_COUNT).filter(|&i| pies[i].contains(c)).collect();
    assert_eq!(owners, vec![0]);

    // Any box — even a degenerate point-box — meets at least one pie,
    // and a box around the apex meets all six.
    let spot = Aabb::from_coords(40.0, 40.0, 40.0, 40.0);
    assert!(pies.iter().any(|s| s.intersects_aabb(&spot)));
    let around = Aabb::from_coords(c.x - 1.0, c.y - 1.0, c.x + 1.0, c.y + 1.0);
    for s in &pies {
        assert!(
            s.intersects_aabb(&around),
            "pie {} misses apex box",
            s.index
        );
    }
    let at_apex = Aabb::from_coords(c.x, c.y, c.x, c.y);
    for s in &pies {
        assert!(s.intersects_aabb(&at_apex), "pie {}", s.index);
    }
}

#[test]
#[should_panic(expected = "sector index out of range")]
fn sector_index_out_of_range_panics() {
    let _ = Sector::new(Point::ORIGIN, SECTOR_COUNT);
}
