//! `RoadNetwork` property suite (ISSUE 10 satellite): structural
//! invariants that every network — synthetic, hand-built, or loaded from
//! disk — must satisfy, checked over seeded families rather than single
//! fixtures.
//!
//! * save → load → save is **byte-identical** (the text format is a true
//!   round trip, not merely value-equal);
//! * `is_connected` (BFS) agrees with an independent union-find mirror;
//! * `edge_between` is symmetric and consistent with the adjacency lists;
//! * degenerate graphs (single node, zero-length edge, disconnected
//!   components) are handled or flagged, never a panic in queries;
//! * routed objects always sit on their current edge's segment.

use igern_geom::{Aabb, Point};
use igern_mobgen::rng::Rng64;
use igern_mobgen::{
    build_synthetic_network, Mover, NetworkMover, RoadClass, RoadNetwork, SyntheticNetworkConfig,
};

fn synth(seed: u64, k: usize, prune: f64) -> RoadNetwork {
    build_synthetic_network(&SyntheticNetworkConfig {
        k,
        prune_fraction: prune,
        seed,
        ..Default::default()
    })
}

fn save_bytes(net: &RoadNetwork) -> Vec<u8> {
    let mut buf = Vec::new();
    net.save(&mut buf).unwrap();
    buf
}

/// Independent connectivity oracle: union-find with path halving, built
/// from nothing but the public edge list.
fn union_find_connected(net: &RoadNetwork) -> bool {
    let n = net.num_nodes();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut components = n;
    for e in 0..net.num_edges() {
        let edge = net.edge(e);
        let (ra, rb) = (find(&mut parent, edge.a), find(&mut parent, edge.b));
        if ra != rb {
            parent[ra] = rb;
            components -= 1;
        }
    }
    components == 1
}

#[test]
fn save_load_is_byte_identical() {
    for seed in [0u64, 1, 7, 42, 0xDEAD] {
        let net = synth(seed, 10, 0.15);
        let bytes = save_bytes(&net);
        let loaded = RoadNetwork::load(std::io::BufReader::new(bytes.as_slice())).unwrap();
        let again = save_bytes(&loaded);
        assert_eq!(bytes, again, "seed {seed}: save/load/save not byte-stable");
        // And the loaded network answers structural queries identically.
        assert_eq!(loaded.num_nodes(), net.num_nodes());
        assert_eq!(loaded.num_edges(), net.num_edges());
        assert_eq!(loaded.is_connected(), net.is_connected());
        assert_eq!(loaded.total_length(), net.total_length());
    }
}

#[test]
fn is_connected_matches_union_find_mirror() {
    // Connected synthetic families at several densities.
    for seed in 0..8u64 {
        let net = synth(seed, 8, 0.25);
        assert_eq!(
            net.is_connected(),
            union_find_connected(&net),
            "seed {seed}"
        );
    }
    // Random sparse graphs, many of them disconnected: the two
    // implementations must agree either way.
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    for trial in 0..40 {
        let n = 2 + rng.gen_range(0..12);
        let m = rng.gen_range(0..(2 * n));
        let nodes: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.f64() * 100.0, rng.f64() * 100.0))
            .collect();
        let mut segments = Vec::new();
        for _ in 0..m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                segments.push((a, b, RoadClass::Main));
            }
        }
        let net = RoadNetwork::new(nodes, &segments, Aabb::from_coords(0.0, 0.0, 100.0, 100.0));
        assert_eq!(
            net.is_connected(),
            union_find_connected(&net),
            "trial {trial}: BFS and union-find disagree"
        );
    }
}

#[test]
fn edge_between_is_symmetric_and_matches_adjacency() {
    let net = synth(3, 9, 0.2);
    for a in 0..net.num_nodes() {
        for b in 0..net.num_nodes() {
            let ab = net.edge_between(a, b).copied();
            let ba = net.edge_between(b, a).copied();
            assert_eq!(ab, ba, "edge_between({a},{b}) asymmetric");
            // Consistent with adjacency: a hit iff some incident edge of
            // `a` has `b` on the other end.
            let adjacent = net.incident(a).iter().any(|&e| net.edge(e).other(a) == b);
            assert_eq!(ab.is_some(), adjacent && a != b || ab.is_some() && a == b);
            if let Some(e) = ab {
                assert!((e.a == a && e.b == b) || (e.a == b && e.b == a));
            }
        }
    }
}

#[test]
fn single_node_network_is_degenerate_but_well_behaved() {
    let net = RoadNetwork::new(vec![Point::new(5.0, 5.0)], &[], Aabb::unit());
    assert!(net.is_connected());
    assert_eq!(net.num_edges(), 0);
    assert_eq!(net.total_length(), 0.0);
    assert!(net.edge_between(0, 0).is_none());
    // Round-trips through the text format.
    let bytes = save_bytes(&net);
    let loaded = RoadNetwork::load(std::io::BufReader::new(bytes.as_slice())).unwrap();
    assert_eq!(loaded.num_nodes(), 1);
    assert_eq!(save_bytes(&loaded), bytes);
    // A mover on it parks rather than panicking.
    let mut m = NetworkMover::new(net, 3, 1);
    let before = m.position(0);
    m.advance();
    assert_eq!(m.position(0), before);
}

#[test]
fn zero_length_edge_is_representable_and_costless() {
    // Two coincident nodes joined by a zero-length edge: legal (it is not
    // a self-loop), contributes nothing to length or travel time.
    let nodes = vec![
        Point::new(1.0, 1.0),
        Point::new(1.0, 1.0),
        Point::new(2.0, 1.0),
    ];
    let segs = [(0usize, 1usize, RoadClass::Main), (1, 2, RoadClass::Main)];
    let net = RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 4.0, 4.0));
    assert_eq!(net.edge(0).len, 0.0);
    assert_eq!(net.edge(0).travel_time(), 0.0);
    assert!(net.is_connected());
    assert!(union_find_connected(&net));
    let bytes = save_bytes(&net);
    let loaded = RoadNetwork::load(std::io::BufReader::new(bytes.as_slice())).unwrap();
    assert_eq!(save_bytes(&loaded), bytes);
}

#[test]
fn disconnected_components_are_flagged() {
    let nodes = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(8.0, 8.0),
        Point::new(9.0, 8.0),
    ];
    let segs = [(0usize, 1usize, RoadClass::Main), (2, 3, RoadClass::Side)];
    let net = RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 10.0, 10.0));
    assert!(!net.is_connected());
    assert!(!union_find_connected(&net));
}

#[test]
#[should_panic(expected = "requires connectivity")]
fn movers_reject_disconnected_networks() {
    let nodes = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(9.0, 9.0),
    ];
    let net = RoadNetwork::new(
        nodes,
        &[(0, 1, RoadClass::Main)],
        Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
    );
    NetworkMover::new(net, 4, 0);
}

/// Distance from `p` to the nearest point of any edge segment.
fn dist_to_network(net: &RoadNetwork, p: Point) -> f64 {
    (0..net.num_edges())
        .map(|e| {
            let edge = net.edge(e);
            let a = net.node(edge.a);
            let b = net.node(edge.b);
            let ab = b - a;
            let t = if ab.norm_sq() == 0.0 {
                0.0
            } else {
                ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0)
            };
            a.lerp(b, t).dist(p)
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn routed_objects_stay_on_their_edge_segment() {
    for seed in [2u64, 13] {
        let net = synth(seed, 7, 0.1);
        let mut m = NetworkMover::new(net, 30, seed);
        for tick in 0..50 {
            m.advance();
            for i in 0..30u32 {
                let off = dist_to_network(m.network(), m.position(i));
                assert!(
                    off < 1e-6,
                    "seed {seed} tick {tick}: object {i} is {off} off-network"
                );
            }
        }
    }
}
