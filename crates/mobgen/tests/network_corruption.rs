//! `RoadNetwork::load` under deliberate on-disk damage, mirroring the
//! discipline of `crates/wal/tests/corruption.rs`: every kind of damage
//! maps to a structured [`NetworkLoadError`] — *counted, not panicking* —
//! and header/body count disagreement in particular is reported with the
//! exact declared-vs-found numbers instead of being misparsed.

use igern_mobgen::{
    build_synthetic_network, NetworkLoadError, RoadNetwork, SyntheticNetworkConfig,
};

fn sample() -> Vec<u8> {
    let net = build_synthetic_network(&SyntheticNetworkConfig {
        k: 5,
        prune_fraction: 0.1,
        seed: 99,
        ..Default::default()
    });
    let mut buf = Vec::new();
    net.save(&mut buf).unwrap();
    buf
}

fn load(bytes: &[u8]) -> Result<RoadNetwork, NetworkLoadError> {
    RoadNetwork::load(std::io::BufReader::new(bytes))
}

#[test]
fn pristine_sample_loads() {
    assert!(load(&sample()).is_ok());
}

/// Dropping node lines must surface as a nodes-section count mismatch
/// with exact numbers — not as a coordinate parse error on the `edges`
/// header line, which is what a naive line-by-line reader would produce.
#[test]
fn missing_node_lines_report_declared_vs_found() {
    let text = String::from_utf8(sample()).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let declared = 25usize; // k=5 grid
    for dropped in 1..=3 {
        lines.remove(2); // first node body line
        let mangled = lines.join("\n");
        match load(mangled.as_bytes()) {
            Err(NetworkLoadError::CountMismatch {
                section: "nodes",
                declared: d,
                found,
            }) => {
                assert_eq!(d, declared);
                assert_eq!(found, declared - dropped);
            }
            other => panic!("expected nodes CountMismatch, got {other:?}"),
        }
    }
}

/// Same for edge lines: a truncated tail is a count mismatch, and an
/// *extra* (padded) edge line is too — the old parser silently ignored
/// trailing rows.
#[test]
fn edge_body_disagreement_reports_declared_vs_found() {
    let text = String::from_utf8(sample()).unwrap();
    let declared = text
        .lines()
        .find_map(|l| l.strip_prefix("edges "))
        .unwrap()
        .parse::<usize>()
        .unwrap();

    // Truncate the last edge row.
    let truncated: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
    match load(truncated.join("\n").as_bytes()) {
        Err(NetworkLoadError::CountMismatch {
            section: "edges",
            declared: d,
            found,
        }) => {
            assert_eq!(d, declared);
            assert_eq!(found, declared - 1);
        }
        other => panic!("expected edges CountMismatch, got {other:?}"),
    }

    // Pad with an extra syntactically-valid edge row.
    let padded = format!("{}0 1 M\n", text);
    match load(padded.as_bytes()) {
        Err(NetworkLoadError::CountMismatch {
            section: "edges",
            declared: d,
            found,
        }) => {
            assert_eq!(d, declared);
            assert_eq!(found, declared + 1);
        }
        other => panic!("expected edges CountMismatch, got {other:?}"),
    }
}

/// Truncation at every *line* boundary: each prefix either loads (full
/// file) or returns a structured error; no prefix may panic.
#[test]
fn truncation_at_every_line_is_a_structured_error() {
    let text = String::from_utf8(sample()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    for cut in 0..lines.len() {
        let prefix = lines[..cut].join("\n");
        let r = load(prefix.as_bytes());
        assert!(r.is_err(), "prefix of {cut}/{} lines loaded", lines.len());
    }
    assert!(load(text.as_bytes()).is_ok());
}

/// Truncation at every *byte* boundary — the same sweep the WAL's
/// segment-corruption tests run. A mid-line cut may still land on a
/// shorter-but-valid row, so the only hard contract is: no panic, and
/// anything that loads must round-trip cleanly.
#[test]
fn truncation_at_every_byte_never_panics() {
    let bytes = sample();
    for cut in 0..bytes.len() {
        if let Ok(net) = load(&bytes[..cut]) {
            let mut buf = Vec::new();
            net.save(&mut buf).unwrap();
            assert!(
                load(&buf).is_ok(),
                "cut {cut}: reload of accepted prefix failed"
            );
        }
    }
}

/// Seeded byte-mangling fuzz: flip a byte anywhere in the file. Most
/// flips must be rejected; any accepted mutant must still be a sane,
/// save-loadable network.
#[test]
fn bit_flip_fuzz_is_rejected_or_still_sane() {
    let bytes = sample();
    let mut rng = igern_mobgen::rng::Rng64::seed_from_u64(0xF1AB);
    for _ in 0..400 {
        let mut mangled = bytes.clone();
        let at = rng.gen_range(0..mangled.len());
        mangled[at] ^= 1 << rng.gen_range(0..8);
        if let Ok(net) = load(&mangled) {
            // e.g. a digit flip inside a coordinate: structurally fine.
            let mut buf = Vec::new();
            net.save(&mut buf).unwrap();
            assert!(load(&buf).is_ok());
        }
    }
}

#[test]
fn garbage_headers_map_to_specific_variants() {
    assert_eq!(
        load(b"").unwrap_err(),
        NetworkLoadError::MissingHeader("space")
    );
    assert_eq!(
        load(b"space 0 0 1 1").unwrap_err(),
        NetworkLoadError::MissingHeader("nodes")
    );
    assert_eq!(
        load(b"space 0 0 1 1\nnodes 0\nedges 0").unwrap_err(),
        NetworkLoadError::EmptyNetwork
    );
    assert_eq!(
        load(b"space 0 0 1 1\nnodes 1\n0.5 0.5").unwrap_err(),
        NetworkLoadError::MissingHeader("edges")
    );
    assert!(matches!(
        load(b"space 0 0 1 1\nnodes 1\n0.5 zzz\nedges 0"),
        Err(NetworkLoadError::BadField {
            what: "coordinate",
            ..
        })
    ));
    assert!(matches!(
        load(b"space 0 0 1 1\nnodes 2\n0 0\n1 0\nedges 1\n0 5 M"),
        Err(NetworkLoadError::BadEdge { .. })
    ));
    assert!(matches!(
        load(b"space 0 0 1 1\nnodes 2\n0 0\n1 0\nedges 1\n0 1 X"),
        Err(NetworkLoadError::BadField {
            what: "road class",
            ..
        })
    ));
}

/// Errors render human-readable messages (they cross the CLI boundary as
/// `io::Error` via the `From` impl).
#[test]
fn errors_convert_to_io_and_display() {
    let e = NetworkLoadError::CountMismatch {
        section: "nodes",
        declared: 9,
        found: 4,
    };
    let msg = e.to_string();
    assert!(msg.contains('9') && msg.contains('4') && msg.contains("nodes"));
    let io: std::io::Error = e.into();
    assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    assert!(io.to_string().contains("nodes"));
}
