//! Open-space movers (no road network) for the movement-model ablation.

use crate::rng::Rng64;
use igern_geom::{Aabb, Point};

use crate::workload::{Mover, Update};

#[derive(Debug, Clone, Copy)]
struct Walker {
    pos: Point,
    waypoint: Point,
    speed: f64,
}

/// Random-waypoint movement: each object heads in a straight line toward
/// a waypoint drawn uniformly from the space, then draws a new one.
pub struct RandomWaypointMover {
    space: Aabb,
    objs: Vec<Walker>,
    rng: Rng64,
    buf: Vec<Update>,
}

impl RandomWaypointMover {
    /// Spawn `n` walkers uniformly in `space` with per-object speeds drawn
    /// from `[min_speed, max_speed]`.
    pub fn new(space: Aabb, n: usize, min_speed: f64, max_speed: f64, seed: u64) -> Self {
        assert!(min_speed > 0.0 && max_speed >= min_speed, "bad speed range");
        let mut rng = Rng64::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        let rand_point = |rng: &mut Rng64| {
            Point::new(
                rng.gen_range(space.min.x..=space.max.x),
                rng.gen_range(space.min.y..=space.max.y),
            )
        };
        let objs = (0..n)
            .map(|_| Walker {
                pos: rand_point(&mut rng),
                waypoint: rand_point(&mut rng),
                speed: rng.gen_range(min_speed..=max_speed),
            })
            .collect();
        RandomWaypointMover {
            space,
            objs,
            rng,
            buf: Vec::with_capacity(n),
        }
    }
}

impl Mover for RandomWaypointMover {
    fn len(&self) -> usize {
        self.objs.len()
    }

    fn space(&self) -> Aabb {
        self.space
    }

    fn position(&self, id: u32) -> Point {
        self.objs[id as usize].pos
    }

    fn advance(&mut self) -> &[Update] {
        self.buf.clear();
        let space = self.space;
        for (i, w) in self.objs.iter_mut().enumerate() {
            let mut budget = w.speed;
            // Possibly reach (several) waypoints within one tick.
            for _ in 0..8 {
                let d = w.pos.dist(w.waypoint);
                if d > budget {
                    let t = budget / d;
                    w.pos = w.pos.lerp(w.waypoint, t);
                    break;
                }
                budget -= d;
                w.pos = w.waypoint;
                w.waypoint = Point::new(
                    self.rng.gen_range(space.min.x..=space.max.x),
                    self.rng.gen_range(space.min.y..=space.max.y),
                );
            }
            self.buf.push(Update {
                id: i as u32,
                pos: w.pos,
            });
        }
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Aabb {
        Aabb::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn spawns_inside_space() {
        let m = RandomWaypointMover::new(space(), 50, 1.0, 2.0, 3);
        for i in 0..50 {
            assert!(space().contains(m.position(i)));
        }
    }

    #[test]
    fn stays_inside_space() {
        let mut m = RandomWaypointMover::new(space(), 30, 1.0, 5.0, 4);
        for _ in 0..50 {
            for u in m.advance().to_vec() {
                assert!(space().contains(u.pos));
            }
        }
    }

    #[test]
    fn per_tick_displacement_bounded_by_speed() {
        let mut m = RandomWaypointMover::new(space(), 30, 1.0, 5.0, 4);
        for _ in 0..10 {
            let before: Vec<Point> = (0..30).map(|i| m.position(i)).collect();
            m.advance();
            for i in 0..30u32 {
                let d = before[i as usize].dist(m.position(i));
                assert!(d <= 5.0 + 1e-9, "object {i} moved {d}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = RandomWaypointMover::new(space(), 10, 1.0, 2.0, 7);
        let mut b = RandomWaypointMover::new(space(), 10, 1.0, 2.0, 7);
        for _ in 0..20 {
            assert_eq!(a.advance().to_vec(), b.advance().to_vec());
        }
    }

    #[test]
    #[should_panic(expected = "bad speed range")]
    fn rejects_bad_speeds() {
        RandomWaypointMover::new(space(), 1, 2.0, 1.0, 0);
    }
}
