//! Moving-object workload generation.
//!
//! The paper evaluates on trajectories from Brinkhoff's *Network-Based
//! Generator of Moving Objects* fed with the road map of Hennepin County,
//! MN. Neither the Java generator nor the map is redistributable here, so
//! this crate rebuilds the same generative model from scratch
//! (see DESIGN.md §3 for the substitution argument):
//!
//! * [`network`] — a road-network graph with per-edge road classes;
//! * [`synthetic`] — a seeded synthetic road-network builder (perturbed
//!   street grid with highways and pruned side streets);
//! * [`route`] — Dijkstra shortest paths and an all-pairs next-hop table;
//! * [`brinkhoff`] — objects that travel along shortest network paths at
//!   road-class speeds, re-routing on arrival;
//! * [`uniform`] — non-network movers (random waypoint) for ablations;
//! * [`workload`] — object/type/query assembly for the experiments;
//! * [`schedule`] — pre-materialized, replayable motion schedules with
//!   population churn for the `igern-sim` fault-injection harness;
//! * [`scenario`] — named city-scale presets (taxi dispatch, geofenced
//!   influence, hotspot commuter churn) composing the above;
//! * [`trace`] — record/replay of update streams so that competing
//!   algorithms consume byte-identical inputs.
//!
//! # Example
//!
//! ```
//! use igern_mobgen::{Mover, Workload, WorkloadConfig};
//!
//! // 100 objects driving a seeded synthetic road network.
//! let mut world = Workload::from_config(&WorkloadConfig::network_mono(100, 42));
//! let before = world.mover().position(0);
//! let updates = world.advance(); // one tick: every object reports
//! assert_eq!(updates.len(), 100);
//! assert_ne!(world.mover().position(0), before);
//! ```

pub mod brinkhoff;
pub mod hotspot;
pub mod network;
pub mod rng;
pub mod route;
pub mod scenario;
pub mod schedule;
pub mod synthetic;
pub mod trace;
pub mod uniform;
pub mod workload;

pub use brinkhoff::NetworkMover;
pub use hotspot::{HotspotConfig, HotspotMover};
pub use network::{EdgeId, NetworkLoadError, NodeId, RoadClass, RoadNetwork};
pub use route::RoutingTable;
pub use scenario::{ChurnProfile, QueryPlan, Scenario};
pub use schedule::{MotionEvent, MotionSchedule, ScheduleConfig};
pub use synthetic::{build_synthetic_network, SyntheticNetworkConfig};
pub use trace::RecordedTrace;
pub use uniform::RandomWaypointMover;
pub use workload::{Movement, Mover, ObjKind, Update, Workload, WorkloadConfig};
