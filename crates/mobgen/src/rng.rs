//! A small, dependency-free pseudo-random generator.
//!
//! Replaces the former `rand::StdRng` dependency so the workspace builds
//! offline. The core is splitmix64 (Steele, Lea & Flood 2014): one
//! 64-bit multiply-xor-shift chain per draw, statistically solid for the
//! simulation workloads here and fully deterministic per seed — the
//! mobgen determinism contract (same seed ⇒ byte-identical update
//! streams) is preserved.

/// Deterministic 64-bit generator (splitmix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range (see [`RangeSample`] for the supported
    /// range shapes, mirroring the `rand::Rng::gen_range` call sites).
    #[inline]
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.f64() < p
    }
}

/// Range shapes [`Rng64::gen_range`] can sample from.
pub trait RangeSample {
    type Out;
    fn sample(self, rng: &mut Rng64) -> Self::Out;
}

impl RangeSample for std::ops::Range<usize> {
    type Out = usize;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift mapping (Lemire): unbiased enough for simulation.
        self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as usize
    }
}

impl RangeSample for std::ops::Range<f64> {
    type Out = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl RangeSample for std::ops::RangeInclusive<f64> {
    type Out = f64;
    #[inline]
    fn sample(self, rng: &mut Rng64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let g = r.gen_range(1.5..=2.5);
            assert!((1.5..=2.5).contains(&g));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng64::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = Rng64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits {hits}");
    }
}
