//! Workload assembly: movers, object kinds, and query selection.

use igern_geom::{Aabb, Point};

use crate::brinkhoff::NetworkMover;
use crate::hotspot::{HotspotConfig, HotspotMover};
use crate::synthetic::{build_synthetic_network, SyntheticNetworkConfig};
use crate::uniform::RandomWaypointMover;

/// One position report: object `id` is now at `pos`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Update {
    pub id: u32,
    pub pos: Point,
}

/// A source of per-tick position updates.
///
/// Determinism contract: for a fixed construction seed, the stream of
/// updates is identical across runs — competing algorithms are compared on
/// byte-identical inputs by constructing two movers from the same seed.
pub trait Mover {
    /// Number of objects (ids are `0..len`).
    fn len(&self) -> usize;
    /// Whether the mover has no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The data space all positions stay within.
    fn space(&self) -> Aabb;
    /// Current position of an object.
    fn position(&self, id: u32) -> Point;
    /// Advance one tick; returns the updates of every object that moved.
    fn advance(&mut self) -> &[Update];
}

/// Object type for bichromatic queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// The query-side type (e.g. medical units).
    A,
    /// The data-side type (e.g. wounded soldiers).
    B,
}

/// Movement model selection.
#[derive(Debug, Clone)]
pub enum Movement {
    /// Brinkhoff-style network-based movement (the paper's workload).
    Network(SyntheticNetworkConfig),
    /// Random-waypoint movement in open space (ablation A4).
    RandomWaypoint {
        space: Aabb,
        min_speed: f64,
        max_speed: f64,
    },
    /// Gaussian-hotspot movement (skewed densities; ablation A6).
    Hotspot(HotspotConfig),
}

/// Everything needed to instantiate a workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub num_objects: usize,
    pub seed: u64,
    pub movement: Movement,
    /// Fraction of objects of kind A (bichromatic); `None` means
    /// monochromatic (every object reported as kind A).
    pub kind_a_fraction: Option<f64>,
}

impl WorkloadConfig {
    /// The paper's default setup: network movement, monochromatic.
    pub fn network_mono(num_objects: usize, seed: u64) -> Self {
        WorkloadConfig {
            num_objects,
            seed,
            movement: Movement::Network(SyntheticNetworkConfig {
                seed,
                ..Default::default()
            }),
            kind_a_fraction: None,
        }
    }

    /// The paper's bichromatic setup: network movement, half the objects
    /// of each type.
    pub fn network_bi(num_objects: usize, seed: u64) -> Self {
        WorkloadConfig {
            kind_a_fraction: Some(0.5),
            ..Self::network_mono(num_objects, seed)
        }
    }
}

/// A mover plus the object-kind assignment and query selection.
pub struct Workload {
    mover: Box<dyn Mover>,
    kinds: Vec<ObjKind>,
}

impl Workload {
    /// Instantiate a workload from its config.
    pub fn from_config(cfg: &WorkloadConfig) -> Self {
        let mover: Box<dyn Mover> = match &cfg.movement {
            Movement::Network(net_cfg) => {
                let net = build_synthetic_network(net_cfg);
                Box::new(NetworkMover::new(net, cfg.num_objects, cfg.seed))
            }
            Movement::RandomWaypoint {
                space,
                min_speed,
                max_speed,
            } => Box::new(RandomWaypointMover::new(
                *space,
                cfg.num_objects,
                *min_speed,
                *max_speed,
                cfg.seed,
            )),
            Movement::Hotspot(hcfg) => {
                Box::new(HotspotMover::new(hcfg.clone(), cfg.num_objects, cfg.seed))
            }
        };
        // Deterministic kind assignment: object i is kind A when
        // i < ceil(fraction * n); mono means "all A".
        let kinds = match cfg.kind_a_fraction {
            None => vec![ObjKind::A; cfg.num_objects],
            Some(f) => {
                let n_a = ((cfg.num_objects as f64) * f).ceil() as usize;
                (0..cfg.num_objects)
                    .map(|i| if i < n_a { ObjKind::A } else { ObjKind::B })
                    .collect()
            }
        };
        Workload { mover, kinds }
    }

    /// The underlying mover.
    #[inline]
    pub fn mover(&self) -> &dyn Mover {
        self.mover.as_ref()
    }

    /// Advance one tick and return the updates.
    pub fn advance(&mut self) -> &[Update] {
        self.mover.advance()
    }

    /// Kind of an object.
    #[inline]
    pub fn kind(&self, id: u32) -> ObjKind {
        self.kinds[id as usize]
    }

    /// All kinds, indexed by object id.
    #[inline]
    pub fn kinds(&self) -> &[ObjKind] {
        &self.kinds
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.mover.len()
    }

    /// Whether the workload has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pick `count` query object ids of the given kind, spread evenly over
    /// the id range (deterministic).
    pub fn pick_queries(&self, kind: ObjKind, count: usize) -> Vec<u32> {
        let candidates: Vec<u32> = (0..self.len() as u32)
            .filter(|&id| self.kind(id) == kind)
            .collect();
        if candidates.is_empty() || count == 0 {
            return Vec::new();
        }
        let count = count.min(candidates.len());
        (0..count)
            .map(|i| candidates[i * candidates.len() / count])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_workload_is_all_kind_a() {
        let w = Workload::from_config(&WorkloadConfig::network_mono(50, 1));
        assert_eq!(w.len(), 50);
        assert!(w.kinds().iter().all(|&k| k == ObjKind::A));
    }

    #[test]
    fn bi_workload_splits_kinds() {
        let w = Workload::from_config(&WorkloadConfig::network_bi(100, 1));
        let n_a = w.kinds().iter().filter(|&&k| k == ObjKind::A).count();
        assert_eq!(n_a, 50);
        assert_eq!(w.kind(0), ObjKind::A);
        assert_eq!(w.kind(99), ObjKind::B);
    }

    #[test]
    fn queries_have_requested_kind() {
        let w = Workload::from_config(&WorkloadConfig::network_bi(100, 1));
        let qs = w.pick_queries(ObjKind::A, 5);
        assert_eq!(qs.len(), 5);
        assert!(qs.iter().all(|&q| w.kind(q) == ObjKind::A));
        let qs_b = w.pick_queries(ObjKind::B, 5);
        assert!(qs_b.iter().all(|&q| w.kind(q) == ObjKind::B));
    }

    #[test]
    fn query_count_is_clamped() {
        let w = Workload::from_config(&WorkloadConfig::network_bi(10, 1));
        assert_eq!(w.pick_queries(ObjKind::A, 100).len(), 5);
        assert!(w.pick_queries(ObjKind::A, 0).is_empty());
    }

    #[test]
    fn advance_keeps_objects_in_space() {
        let mut w = Workload::from_config(&WorkloadConfig::network_mono(20, 3));
        let space = w.mover().space();
        for _ in 0..10 {
            for u in w.advance().to_vec() {
                assert!(
                    space.contains(u.pos),
                    "object {} escaped to {}",
                    u.id,
                    u.pos
                );
            }
        }
    }

    #[test]
    fn hotspot_workload_constructs() {
        let cfg = WorkloadConfig {
            num_objects: 30,
            seed: 4,
            movement: Movement::Hotspot(HotspotConfig::default()),
            kind_a_fraction: None,
        };
        let mut w = Workload::from_config(&cfg);
        assert_eq!(w.len(), 30);
        let space = w.mover().space();
        for u in w.advance().to_vec() {
            assert!(space.contains(u.pos));
        }
    }

    #[test]
    fn random_waypoint_workload_constructs() {
        let cfg = WorkloadConfig {
            num_objects: 10,
            seed: 9,
            movement: Movement::RandomWaypoint {
                space: Aabb::from_coords(0.0, 0.0, 100.0, 100.0),
                min_speed: 1.0,
                max_speed: 3.0,
            },
            kind_a_fraction: Some(0.3),
        };
        let mut w = Workload::from_config(&cfg);
        assert_eq!(w.len(), 10);
        assert_eq!(w.kinds().iter().filter(|&&k| k == ObjKind::A).count(), 3);
        w.advance();
    }
}
