//! Seeded synthetic road-network builder.
//!
//! Stand-in for the Hennepin County road map (DESIGN.md §3): a `k × k`
//! street grid with jittered intersections, every `highway_stride`-th
//! row/column upgraded to highways, and a fraction of side streets pruned
//! (only where pruning provably keeps the network connected). The result
//! is a connected planar graph with the mixed road classes and irregular
//! block structure that network-based movement statistics depend on.

use crate::rng::Rng64;
use igern_geom::{Aabb, Point};

use crate::network::{NodeId, RoadClass, RoadNetwork};

/// Parameters of the synthetic network.
#[derive(Debug, Clone)]
pub struct SyntheticNetworkConfig {
    /// Intersections per side (the network has `k²` nodes).
    pub k: usize,
    /// Data space to embed into.
    pub space: Aabb,
    /// Relative jitter of intersection positions (0 = perfect grid,
    /// 0.5 = up to half a block).
    pub jitter: f64,
    /// Every `highway_stride`-th row and column becomes a highway.
    pub highway_stride: usize,
    /// Fraction of non-highway edges to try to prune.
    pub prune_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticNetworkConfig {
    fn default() -> Self {
        SyntheticNetworkConfig {
            k: 24,
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            jitter: 0.3,
            highway_stride: 6,
            prune_fraction: 0.15,
            seed: 0,
        }
    }
}

/// Build a synthetic road network from a config.
pub fn build_synthetic_network(cfg: &SyntheticNetworkConfig) -> RoadNetwork {
    assert!(cfg.k >= 2, "need at least a 2x2 grid of intersections");
    assert!(
        cfg.jitter >= 0.0 && cfg.jitter < 0.5,
        "jitter must be in [0, 0.5)"
    );
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let k = cfg.k;
    let space = cfg.space;
    let bw = space.width() / (k - 1) as f64; // block width
    let bh = space.height() / (k - 1) as f64;

    // Jittered intersection positions (border nodes pulled inward so the
    // whole network stays inside the space).
    let mut nodes = Vec::with_capacity(k * k);
    for iy in 0..k {
        for ix in 0..k {
            let jx = rng.gen_range(-cfg.jitter..=cfg.jitter) * bw;
            let jy = rng.gen_range(-cfg.jitter..=cfg.jitter) * bh;
            let p = Point::new(
                space.min.x + ix as f64 * bw + jx,
                space.min.y + iy as f64 * bh + jy,
            );
            nodes.push(space.clamp(p));
        }
    }
    let at = |ix: usize, iy: usize| -> NodeId { iy * k + ix };

    // Grid edges with road classes.
    let classify = |line: usize| -> RoadClass {
        if cfg.highway_stride > 0 && line.is_multiple_of(cfg.highway_stride) {
            RoadClass::Highway
        } else if line.is_multiple_of(2) {
            RoadClass::Main
        } else {
            RoadClass::Side
        }
    };
    let mut segments: Vec<(NodeId, NodeId, RoadClass)> = Vec::new();
    for iy in 0..k {
        for ix in 0..k {
            if ix + 1 < k {
                segments.push((at(ix, iy), at(ix + 1, iy), classify(iy)));
            }
            if iy + 1 < k {
                segments.push((at(ix, iy), at(ix, iy + 1), classify(ix)));
            }
        }
    }

    // Prune a fraction of non-highway edges, but only when the network
    // stays connected without the edge.
    let target = (segments.len() as f64 * cfg.prune_fraction) as usize;
    let mut pruned = 0;
    let mut attempts = 0;
    while pruned < target && attempts < 4 * target {
        attempts += 1;
        let i = rng.gen_range(0..segments.len());
        if segments[i].2 == RoadClass::Highway {
            continue;
        }
        let removed = segments.swap_remove(i);
        if connected(nodes.len(), &segments) {
            pruned += 1;
        } else {
            segments.push(removed);
        }
    }

    RoadNetwork::new(nodes, &segments, space)
}

/// Connectivity check on a raw segment list (union-find).
fn connected(n: usize, segments: &[(NodeId, NodeId, RoadClass)]) -> bool {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut components = n;
    for &(a, b, _) in segments {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
            components -= 1;
        }
    }
    components == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_network_is_connected_and_in_space() {
        let cfg = SyntheticNetworkConfig::default();
        let net = build_synthetic_network(&cfg);
        assert_eq!(net.num_nodes(), 24 * 24);
        assert!(net.is_connected());
        for i in 0..net.num_nodes() {
            assert!(cfg.space.contains(net.node(i)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SyntheticNetworkConfig {
            k: 8,
            seed: 42,
            ..Default::default()
        };
        let a = build_synthetic_network(&cfg);
        let b = build_synthetic_network(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for i in 0..a.num_nodes() {
            assert_eq!(a.node(i), b.node(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SyntheticNetworkConfig {
            k: 8,
            seed: 1,
            ..Default::default()
        };
        let a = build_synthetic_network(&cfg);
        cfg.seed = 2;
        let b = build_synthetic_network(&cfg);
        let moved = (0..a.num_nodes()).any(|i| a.node(i) != b.node(i));
        assert!(moved, "jitter should depend on the seed");
    }

    #[test]
    fn contains_all_three_road_classes() {
        let net = build_synthetic_network(&SyntheticNetworkConfig::default());
        let mut highway = false;
        let mut main = false;
        let mut side = false;
        for e in 0..net.num_edges() {
            match net.edge(e).class {
                RoadClass::Highway => highway = true,
                RoadClass::Main => main = true,
                RoadClass::Side => side = true,
            }
        }
        assert!(highway && main && side);
    }

    #[test]
    fn pruning_removes_edges_but_keeps_connectivity() {
        let dense = build_synthetic_network(&SyntheticNetworkConfig {
            k: 10,
            prune_fraction: 0.0,
            seed: 7,
            ..Default::default()
        });
        let pruned = build_synthetic_network(&SyntheticNetworkConfig {
            k: 10,
            prune_fraction: 0.2,
            seed: 7,
            ..Default::default()
        });
        assert!(pruned.num_edges() < dense.num_edges());
        assert!(pruned.is_connected());
    }

    #[test]
    fn tiny_grid_works() {
        let net = build_synthetic_network(&SyntheticNetworkConfig {
            k: 2,
            prune_fraction: 0.0,
            ..Default::default()
        });
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_edges(), 4);
        assert!(net.is_connected());
    }
}
