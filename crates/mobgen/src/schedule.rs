//! Pre-materialized motion schedules for the simulation harness.
//!
//! The live movers in this crate ([`crate::Mover`]) hand out updates one
//! tick at a time and mutate internal state as they go — fine for
//! benchmarks, awkward for a fault-injection simulator that needs to
//! truncate, splice, and replay the exact same object history across
//! several execution backends. A [`MotionSchedule`] is the alternative:
//! the whole run — initial population, per-tick moves, teleports, and
//! population churn — is generated up front from one [`Rng64`] seed into
//! a plain vector of [`MotionEvent`]s per tick. Consumers iterate it as
//! many times as they like (serial engine, sharded engine, wire server,
//! brute-force oracle) and every pass sees byte-identical input.
//!
//! Churn respects a *protected* id set so that objects anchoring
//! continuous queries are never removed mid-run.

use igern_geom::{Aabb, Point};

use crate::rng::Rng64;
use crate::workload::ObjKind;

/// One scheduled population change at some tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionEvent {
    /// Object `id` reports a new position.
    Move { id: u32, pos: Point },
    /// A previously removed (or never-live) object enters the space.
    Insert { id: u32, kind: ObjKind, pos: Point },
    /// Object `id` leaves the space.
    Remove { id: u32 },
}

/// Knobs for [`MotionSchedule::generate`].
#[derive(Debug, Clone)]
pub struct ScheduleConfig {
    /// Initial population size (ids are `0..num_objects`).
    pub num_objects: usize,
    /// Number of ticks to materialize.
    pub ticks: usize,
    /// Seed; equal configs produce equal schedules.
    pub seed: u64,
    /// The data space every position stays inside.
    pub space: Aabb,
    /// Maximum per-axis displacement of a normal per-tick move.
    pub max_step: f64,
    /// Fraction of the live population that reports each tick.
    pub move_fraction: f64,
    /// Per-object per-tick probability of a teleport (a jump to a
    /// uniformly random position — the pathological long-distance move).
    pub teleport_prob: f64,
    /// Per-tick probability of one removal and of one (re)insertion.
    pub churn_prob: f64,
    /// Fraction of objects of kind A; `None` means monochromatic.
    pub kind_a_fraction: Option<f64>,
    /// Ids that are never removed (continuous-query anchors).
    pub protected: Vec<u32>,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            num_objects: 64,
            ticks: 100,
            seed: 1,
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            max_step: 12.0,
            move_fraction: 0.6,
            teleport_prob: 0.01,
            churn_prob: 0.15,
            kind_a_fraction: None,
            protected: Vec::new(),
        }
    }
}

/// A fully materialized, replayable object history.
#[derive(Debug, Clone)]
pub struct MotionSchedule {
    space: Aabb,
    initial: Vec<Point>,
    kinds: Vec<ObjKind>,
    ticks: Vec<Vec<MotionEvent>>,
}

impl MotionSchedule {
    /// Materialize a schedule from its config. Deterministic: equal
    /// configs yield equal schedules.
    pub fn generate(cfg: &ScheduleConfig) -> Self {
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let n = cfg.num_objects;
        let initial: Vec<Point> = (0..n).map(|_| random_point(&mut rng, &cfg.space)).collect();
        let n_a = match cfg.kind_a_fraction {
            None => n,
            Some(f) => ((n as f64) * f).ceil() as usize,
        };
        let kinds: Vec<ObjKind> = (0..n)
            .map(|i| if i < n_a { ObjKind::A } else { ObjKind::B })
            .collect();

        let mut pos = initial.clone();
        let mut live = vec![true; n];
        let mut ticks = Vec::with_capacity(cfg.ticks);
        for _ in 0..cfg.ticks {
            let mut events = Vec::new();
            for id in 0..n as u32 {
                if !live[id as usize] {
                    continue;
                }
                let next = if rng.gen_bool(cfg.teleport_prob) {
                    random_point(&mut rng, &cfg.space)
                } else if rng.gen_bool(cfg.move_fraction) {
                    let dx = rng.gen_range(-cfg.max_step..=cfg.max_step);
                    let dy = rng.gen_range(-cfg.max_step..=cfg.max_step);
                    let p = pos[id as usize];
                    cfg.space.clamp(Point::new(p.x + dx, p.y + dy))
                } else {
                    continue;
                };
                pos[id as usize] = next;
                events.push(MotionEvent::Move { id, pos: next });
            }
            if n > 0 && rng.gen_bool(cfg.churn_prob) {
                let victims: Vec<u32> = (0..n as u32)
                    .filter(|id| live[*id as usize] && !cfg.protected.contains(id))
                    .collect();
                if !victims.is_empty() {
                    let id = victims[rng.gen_range(0..victims.len())];
                    live[id as usize] = false;
                    events.push(MotionEvent::Remove { id });
                }
            }
            if n > 0 && rng.gen_bool(cfg.churn_prob) {
                let dead: Vec<u32> = (0..n as u32).filter(|id| !live[*id as usize]).collect();
                if !dead.is_empty() {
                    let id = dead[rng.gen_range(0..dead.len())];
                    let p = random_point(&mut rng, &cfg.space);
                    live[id as usize] = true;
                    pos[id as usize] = p;
                    events.push(MotionEvent::Insert {
                        id,
                        kind: kinds[id as usize],
                        pos: p,
                    });
                }
            }
            ticks.push(events);
        }
        MotionSchedule {
            space: cfg.space,
            initial,
            kinds,
            ticks,
        }
    }

    /// The data space of the schedule.
    #[inline]
    pub fn space(&self) -> Aabb {
        self.space
    }

    /// Initial positions, indexed by object id.
    #[inline]
    pub fn initial_positions(&self) -> &[Point] {
        &self.initial
    }

    /// Object kinds, indexed by object id.
    #[inline]
    pub fn kinds(&self) -> &[ObjKind] {
        &self.kinds
    }

    /// Number of materialized ticks.
    #[inline]
    pub fn num_ticks(&self) -> usize {
        self.ticks.len()
    }

    /// Events of tick `t` (0-based), in application order.
    #[inline]
    pub fn events(&self, t: usize) -> &[MotionEvent] {
        &self.ticks[t]
    }
}

fn random_point(rng: &mut Rng64, space: &Aabb) -> Point {
    Point::new(
        rng.gen_range(space.min.x..space.max.x),
        rng.gen_range(space.min.y..space.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            num_objects: 30,
            ticks: 80,
            seed: 5,
            protected: vec![0, 1, 2],
            kind_a_fraction: Some(0.5),
            ..ScheduleConfig::default()
        }
    }

    #[test]
    fn equal_seeds_give_equal_schedules() {
        let a = MotionSchedule::generate(&cfg());
        let b = MotionSchedule::generate(&cfg());
        assert_eq!(a.initial_positions(), b.initial_positions());
        for t in 0..a.num_ticks() {
            assert_eq!(a.events(t), b.events(t), "tick {t}");
        }
        let c = MotionSchedule::generate(&ScheduleConfig { seed: 6, ..cfg() });
        assert_ne!(a.initial_positions(), c.initial_positions());
    }

    #[test]
    fn positions_stay_in_space_and_protected_ids_survive() {
        let s = MotionSchedule::generate(&cfg());
        let space = s.space();
        for p in s.initial_positions() {
            assert!(space.contains(*p));
        }
        for t in 0..s.num_ticks() {
            for e in s.events(t) {
                match *e {
                    MotionEvent::Move { pos, .. } | MotionEvent::Insert { pos, .. } => {
                        assert!(space.contains(pos), "tick {t}: {pos} escaped")
                    }
                    MotionEvent::Remove { id } => {
                        assert!(!(0..=2).contains(&id), "protected id {id} removed")
                    }
                }
            }
        }
    }

    #[test]
    fn churn_is_consistent_with_liveness() {
        let s = MotionSchedule::generate(&cfg());
        let mut live = [true; 30];
        let mut saw_remove = false;
        let mut saw_insert = false;
        for t in 0..s.num_ticks() {
            for e in s.events(t) {
                match *e {
                    MotionEvent::Move { id, .. } => {
                        assert!(live[id as usize], "tick {t}: dead object {id} moved")
                    }
                    MotionEvent::Remove { id } => {
                        assert!(live[id as usize], "tick {t}: double remove of {id}");
                        live[id as usize] = false;
                        saw_remove = true;
                    }
                    MotionEvent::Insert { id, kind, .. } => {
                        assert!(!live[id as usize], "tick {t}: double insert of {id}");
                        assert_eq!(kind, s.kinds()[id as usize]);
                        live[id as usize] = true;
                        saw_insert = true;
                    }
                }
            }
        }
        assert!(saw_remove && saw_insert, "churn never fired in 80 ticks");
    }
}
