//! Road-network graphs.

use igern_geom::{Aabb, Point};

/// Index of a network node.
pub type NodeId = usize;
/// Index of a network edge.
pub type EdgeId = usize;

/// Road class, determining travel speed (Brinkhoff's generator assigns
/// per-class maximum speeds; we keep three classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Fast arterial roads.
    Highway,
    /// Ordinary streets.
    Main,
    /// Slow residential streets.
    Side,
}

impl RoadClass {
    /// Travel speed in space units per tick.
    pub fn speed(self) -> f64 {
        match self {
            RoadClass::Highway => 8.0,
            RoadClass::Main => 4.0,
            RoadClass::Side => 2.0,
        }
    }
}

/// An undirected road segment between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub class: RoadClass,
    /// Euclidean length (cached).
    pub len: f64,
}

impl Edge {
    /// Travel time of the edge at its class speed.
    #[inline]
    pub fn travel_time(&self) -> f64 {
        self.len / self.class.speed()
    }

    /// The endpoint opposite to `n`.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b);
            self.a
        }
    }
}

/// An undirected road network embedded in the plane.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    edges: Vec<Edge>,
    /// Adjacency: for each node, the ids of its incident edges.
    adjacency: Vec<Vec<EdgeId>>,
    space: Aabb,
}

impl RoadNetwork {
    /// Build a network from node positions and `(a, b, class)` segments.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or an empty node set.
    pub fn new(nodes: Vec<Point>, segments: &[(NodeId, NodeId, RoadClass)], space: Aabb) -> Self {
        assert!(!nodes.is_empty(), "network must have nodes");
        let mut adjacency = vec![Vec::new(); nodes.len()];
        let mut edges = Vec::with_capacity(segments.len());
        for &(a, b, class) in segments {
            assert!(a < nodes.len() && b < nodes.len(), "endpoint out of range");
            assert_ne!(a, b, "self-loop");
            let id = edges.len();
            edges.push(Edge {
                a,
                b,
                class,
                len: nodes[a].dist(nodes[b]),
            });
            adjacency[a].push(id);
            adjacency[b].push(id);
        }
        RoadNetwork {
            nodes,
            edges,
            adjacency,
            space,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Position of a node.
    #[inline]
    pub fn node(&self, n: NodeId) -> Point {
        self.nodes[n]
    }

    /// An edge by id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Edge ids incident to `n`.
    #[inline]
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n]
    }

    /// The data space the network is embedded in.
    #[inline]
    pub fn space(&self) -> &Aabb {
        &self.space
    }

    /// The edge connecting `a` and `b`, if any (linear scan of `a`'s
    /// incident list — node degrees are tiny in road networks).
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<&Edge> {
        self.adjacency[a]
            .iter()
            .map(|&e| &self.edges[e])
            .find(|e| e.other(a) == b)
    }

    /// Whether the network is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &e in &self.adjacency[n] {
                let m = self.edges[e].other(n);
                if !seen[m] {
                    seen[m] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total length of all edges.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.len).sum()
    }

    /// Serialize to a simple line-oriented text format (full round-trip
    /// precision):
    ///
    /// ```text
    /// space <min_x> <min_y> <max_x> <max_y>
    /// nodes <n>
    /// <x> <y>
    /// edges <m>
    /// <a> <b> <H|M|S>
    /// ```
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "space {:?} {:?} {:?} {:?}",
            self.space.min.x, self.space.min.y, self.space.max.x, self.space.max.y
        )?;
        writeln!(w, "nodes {}", self.nodes.len())?;
        for p in &self.nodes {
            writeln!(w, "{:?} {:?}", p.x, p.y)?;
        }
        writeln!(w, "edges {}", self.edges.len())?;
        for e in &self.edges {
            let class = match e.class {
                RoadClass::Highway => 'H',
                RoadClass::Main => 'M',
                RoadClass::Side => 'S',
            };
            writeln!(w, "{} {} {class}", e.a, e.b)?;
        }
        Ok(())
    }

    /// Parse a network written by [`RoadNetwork::save`].
    ///
    /// Parsing is skip-and-count: each section's body is scanned to its
    /// real extent before being compared with the declared header count,
    /// so a truncated or padded file reports a precise
    /// [`NetworkLoadError::CountMismatch`] instead of misparsing the next
    /// section's header as body data. Never panics on malformed input.
    pub fn load<R: std::io::BufRead>(r: R) -> Result<Self, NetworkLoadError> {
        use NetworkLoadError as E;
        let lines: Vec<String> = r
            .lines()
            .collect::<std::io::Result<_>>()
            .map_err(|e| E::Io(e.kind()))?;
        // Trailing blank lines are save artifacts, not body rows.
        let mut end = lines.len();
        while end > 0 && lines[end - 1].trim().is_empty() {
            end -= 1;
        }
        let lines = &lines[..end];
        let parts: Vec<&str> = lines
            .first()
            .map_or_else(Vec::new, |l| l.split_whitespace().collect());
        if parts.len() != 5 || parts[0] != "space" {
            return Err(E::MissingHeader("space"));
        }
        let coord = |s: &str, line: usize| {
            s.parse::<f64>().map_err(|_| E::BadField {
                line,
                what: "coordinate",
            })
        };
        let space = Aabb::from_coords(
            coord(parts[1], 1)?,
            coord(parts[2], 1)?,
            coord(parts[3], 1)?,
            coord(parts[4], 1)?,
        );
        let count_header = |idx: usize, name: &'static str| -> Result<usize, E> {
            lines
                .get(idx)
                .and_then(|l| l.strip_prefix(name))
                .and_then(|l| l.strip_prefix(' '))
                .and_then(|v| v.trim().parse().ok())
                .ok_or(E::MissingHeader(name))
        };
        let n = count_header(1, "nodes")?;
        if n == 0 {
            return Err(E::EmptyNetwork);
        }
        // Skip-and-count: the node body runs until the `edges` header.
        let edges_at = lines
            .iter()
            .position(|l| l.starts_with("edges ") || l.trim() == "edges");
        let found_nodes = edges_at.unwrap_or(lines.len()).saturating_sub(2);
        if found_nodes != n {
            return Err(E::CountMismatch {
                section: "nodes",
                declared: n,
                found: found_nodes,
            });
        }
        let mut nodes = Vec::with_capacity(n);
        for (i, line) in lines[2..2 + n].iter().enumerate() {
            let lineno = 3 + i;
            let mut it = line.split_whitespace();
            let mut field = || {
                it.next().ok_or(E::BadField {
                    line: lineno,
                    what: "coordinate",
                })
            };
            let x = coord(field()?, lineno)?;
            let y = coord(field()?, lineno)?;
            nodes.push(Point::new(x, y));
        }
        let m = count_header(2 + n, "edges")?;
        let found_edges = lines.len() - (3 + n);
        if found_edges != m {
            return Err(E::CountMismatch {
                section: "edges",
                declared: m,
                found: found_edges,
            });
        }
        let mut segments = Vec::with_capacity(m);
        for (i, line) in lines[3 + n..].iter().enumerate() {
            let lineno = 4 + n + i;
            let mut it = line.split_whitespace();
            let mut endpoint = || -> Result<usize, E> {
                it.next().and_then(|v| v.parse().ok()).ok_or(E::BadField {
                    line: lineno,
                    what: "edge endpoint",
                })
            };
            let a = endpoint()?;
            let b = endpoint()?;
            let class = match it.next() {
                Some("H") => RoadClass::Highway,
                Some("M") => RoadClass::Main,
                Some("S") => RoadClass::Side,
                _ => {
                    return Err(E::BadField {
                        line: lineno,
                        what: "road class",
                    })
                }
            };
            if a >= n || b >= n || a == b {
                return Err(E::BadEdge { line: lineno });
            }
            segments.push((a, b, class));
        }
        Ok(RoadNetwork::new(nodes, &segments, space))
    }
}

/// Why parsing a saved road network failed.
///
/// Mirrors the WAL's counted-damage discipline: every malformed input maps
/// to a specific, comparable variant rather than a panic or a stringly
/// `io::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkLoadError {
    /// Reading the underlying stream failed.
    Io(std::io::ErrorKind),
    /// A required section header (`space`, `nodes`, `edges`) is missing
    /// or malformed.
    MissingHeader(&'static str),
    /// A field on the given 1-based line failed to parse.
    BadField { line: usize, what: &'static str },
    /// A section header declared one row count but the body held another
    /// (truncated or padded file).
    CountMismatch {
        section: &'static str,
        declared: usize,
        found: usize,
    },
    /// An edge row referenced a node out of range or was a self-loop.
    BadEdge { line: usize },
    /// The file declared zero nodes; a network must be non-empty.
    EmptyNetwork,
}

impl std::fmt::Display for NetworkLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkLoadError::Io(kind) => write!(f, "io error reading network: {kind:?}"),
            NetworkLoadError::MissingHeader(name) => {
                write!(f, "missing or malformed `{name}` header")
            }
            NetworkLoadError::BadField { line, what } => {
                write!(f, "bad {what} on line {line}")
            }
            NetworkLoadError::CountMismatch {
                section,
                declared,
                found,
            } => write!(
                f,
                "{section} header declares {declared} rows but body has {found}"
            ),
            NetworkLoadError::BadEdge { line } => {
                write!(f, "edge on line {line} is out of range or a self-loop")
            }
            NetworkLoadError::EmptyNetwork => write!(f, "network declares zero nodes"),
        }
    }
}

impl std::error::Error for NetworkLoadError {}

impl From<NetworkLoadError> for std::io::Error {
    fn from(e: NetworkLoadError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 square with one diagonal.
    fn square() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let segs = [
            (0, 1, RoadClass::Main),
            (1, 2, RoadClass::Main),
            (2, 3, RoadClass::Side),
            (3, 0, RoadClass::Side),
            (0, 2, RoadClass::Highway),
        ];
        RoadNetwork::new(nodes, &segs, Aabb::unit())
    }

    #[test]
    fn construction_and_lengths() {
        let n = square();
        assert_eq!(n.num_nodes(), 4);
        assert_eq!(n.num_edges(), 5);
        assert!((n.edge(0).len - 1.0).abs() < 1e-12);
        assert!((n.edge(4).len - 2f64.sqrt()).abs() < 1e-12);
        assert!((n.total_length() - (4.0 + 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let n = square();
        for e in 0..n.num_edges() {
            let edge = n.edge(e);
            assert!(n.incident(edge.a).contains(&e));
            assert!(n.incident(edge.b).contains(&e));
            assert_eq!(edge.other(edge.a), edge.b);
            assert_eq!(edge.other(edge.b), edge.a);
        }
    }

    #[test]
    fn connectivity() {
        let n = square();
        assert!(n.is_connected());
        // Two disconnected nodes.
        let m = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(5.0, 5.0),
            ],
            &[(0, 1, RoadClass::Main)],
            Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
        );
        assert!(!m.is_connected());
    }

    #[test]
    fn class_speeds_are_ordered() {
        assert!(RoadClass::Highway.speed() > RoadClass::Main.speed());
        assert!(RoadClass::Main.speed() > RoadClass::Side.speed());
    }

    #[test]
    fn travel_time_scales_with_class() {
        let n = square();
        // Edge 0 (Main, len 1) vs edge 2 (Side, len 1).
        assert!(n.edge(0).travel_time() < n.edge(2).travel_time());
    }

    #[test]
    fn save_load_roundtrip() {
        let n = square();
        let mut buf = Vec::new();
        n.save(&mut buf).unwrap();
        let m = RoadNetwork::load(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(m.num_nodes(), n.num_nodes());
        assert_eq!(m.num_edges(), n.num_edges());
        for i in 0..n.num_nodes() {
            assert_eq!(m.node(i), n.node(i));
        }
        for e in 0..n.num_edges() {
            assert_eq!(m.edge(e).class, n.edge(e).class);
            assert_eq!(m.edge(e).len, n.edge(e).len);
        }
    }

    #[test]
    fn load_rejects_garbage() {
        for c in [
            "",
            "space 0 0 1 1
nodes 2
0 0",
            "space 0 0 1 1
nodes 2
0 0
1 0
edges 1
0 5 M",
            "space 0 0 1 1
nodes 2
0 0
1 0
edges 1
0 1 X",
            "space 0 0 1 1
nodes 2
0 0
1 0
edges 1
0 0 M",
        ] {
            assert!(
                RoadNetwork::load(std::io::BufReader::new(c.as_bytes())).is_err(),
                "should reject {c:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0)],
            &[(0, 0, RoadClass::Main)],
            Aabb::unit(),
        );
    }
}
