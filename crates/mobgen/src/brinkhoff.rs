//! Network-based moving objects (after Brinkhoff, GeoInformatica 2002).
//!
//! Each object lives on the road network: it spawns at a random node,
//! picks a random destination, travels the time-shortest path at the
//! speed of each traversed road class, and re-routes to a fresh
//! destination on arrival. One tick of simulated time advances every
//! object by one time unit of travel.

use crate::rng::Rng64;
use igern_geom::{Aabb, Point};

use crate::network::{NodeId, RoadNetwork};
use crate::route::RoutingTable;
use crate::workload::{Mover, Update};

#[derive(Debug, Clone)]
struct ObjState {
    /// Node most recently departed from.
    at: NodeId,
    /// Node currently headed to (adjacent to `at`), or `at` when parked.
    to: NodeId,
    /// Final destination of the current trip.
    dest: NodeId,
    /// Distance already covered on the current edge.
    progress: f64,
    pos: Point,
}

/// Objects moving along shortest paths of a road network.
pub struct NetworkMover {
    net: RoadNetwork,
    table: RoutingTable,
    objs: Vec<ObjState>,
    rng: Rng64,
    buf: Vec<Update>,
}

impl NetworkMover {
    /// Spawn `n` objects on `net`, seeded deterministically.
    ///
    /// # Panics
    /// Panics when the network is not connected (every trip must be
    /// routable).
    pub fn new(net: RoadNetwork, n: usize, seed: u64) -> Self {
        assert!(net.is_connected(), "network movement requires connectivity");
        let table = RoutingTable::build(&net);
        let mut rng = Rng64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut objs = Vec::with_capacity(n);
        for _ in 0..n {
            let at = rng.gen_range(0..net.num_nodes());
            let dest = pick_destination(&mut rng, net.num_nodes(), at);
            let to = table.next_hop(at, dest).unwrap_or(at);
            // Spawn dispersed along the first edge rather than piled on
            // the node itself: co-located objects are degenerate for RNN
            // queries (nothing can dominate a distance-zero neighbor) and
            // do not occur in steady-state traffic.
            let (progress, pos) = if to != at {
                let edge = net.edge_between(at, to).expect("next hop not adjacent");
                let f = rng.gen_range(0.0..1.0);
                (edge.len * f, net.node(at).lerp(net.node(to), f))
            } else {
                (0.0, net.node(at))
            };
            objs.push(ObjState {
                at,
                to,
                dest,
                progress,
                pos,
            });
        }
        NetworkMover {
            net,
            table,
            objs,
            rng,
            buf: Vec::with_capacity(n),
        }
    }

    /// The network objects travel on.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// Advance one object by one time unit; returns its new position.
    fn step_object(
        net: &RoadNetwork,
        table: &RoutingTable,
        rng: &mut Rng64,
        o: &mut ObjState,
    ) -> Point {
        let mut time_left = 1.0;
        // A tick never crosses more than a handful of edges; bound the
        // loop defensively anyway.
        for _ in 0..64 {
            if o.at == o.to {
                // Parked (degenerate single-node network); stay put.
                break;
            }
            let edge = net
                .edge_between(o.at, o.to)
                .expect("route uses a non-existent edge");
            let speed = edge.class.speed();
            let remaining = edge.len - o.progress;
            let needed = remaining / speed;
            if needed > time_left {
                o.progress += speed * time_left;
                break;
            }
            // Reach node `to` and continue the trip.
            time_left -= needed;
            o.at = o.to;
            o.progress = 0.0;
            if o.at == o.dest {
                o.dest = pick_destination(rng, net.num_nodes(), o.at);
            }
            o.to = table.next_hop(o.at, o.dest).unwrap_or(o.at);
        }
        o.pos = if o.at == o.to {
            net.node(o.at)
        } else {
            let t = o.progress / net.edge_between(o.at, o.to).unwrap().len;
            net.node(o.at).lerp(net.node(o.to), t)
        };
        o.pos
    }
}

/// A fresh trip destination different from `at` (when possible).
fn pick_destination(rng: &mut Rng64, num_nodes: usize, at: NodeId) -> NodeId {
    if num_nodes <= 1 {
        return at;
    }
    loop {
        let d = rng.gen_range(0..num_nodes);
        if d != at {
            return d;
        }
    }
}

impl Mover for NetworkMover {
    fn len(&self) -> usize {
        self.objs.len()
    }

    fn space(&self) -> Aabb {
        *self.net.space()
    }

    fn position(&self, id: u32) -> Point {
        self.objs[id as usize].pos
    }

    fn advance(&mut self) -> &[Update] {
        self.buf.clear();
        for (i, o) in self.objs.iter_mut().enumerate() {
            let pos = Self::step_object(&self.net, &self.table, &mut self.rng, o);
            self.buf.push(Update { id: i as u32, pos });
        }
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{build_synthetic_network, SyntheticNetworkConfig};

    fn small_net() -> RoadNetwork {
        build_synthetic_network(&SyntheticNetworkConfig {
            k: 6,
            prune_fraction: 0.0,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn objects_spawn_on_the_network() {
        let net = small_net();
        let m = NetworkMover::new(net, 25, 5);
        for i in 0..25 {
            let p = m.position(i);
            let on_edge = (0..m.network().num_edges()).any(|e| {
                let edge = m.network().edge(e);
                let a = m.network().node(edge.a);
                let b = m.network().node(edge.b);
                let ab = b - a;
                let t = ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
                a.lerp(b, t).dist(p) < 1e-6
            });
            assert!(on_edge, "object {i} at {p} not on the network");
        }
    }

    #[test]
    fn spawns_are_dispersed() {
        // No two of 40 objects should be exactly co-located at T0.
        let net = small_net();
        let m = NetworkMover::new(net, 40, 5);
        let mut collisions = 0;
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                if m.position(i).dist(m.position(j)) < 1e-12 {
                    collisions += 1;
                }
            }
        }
        assert_eq!(collisions, 0, "{collisions} co-located spawn pairs");
    }

    #[test]
    fn movement_is_bounded_by_max_speed() {
        let net = small_net();
        let mut m = NetworkMover::new(net, 40, 5);
        let before: Vec<Point> = (0..40).map(|i| m.position(i)).collect();
        m.advance();
        for i in 0..40u32 {
            let moved = before[i as usize].dist(m.position(i));
            // Straight-line displacement cannot exceed network distance
            // traveled, which is at most one tick at highway speed.
            assert!(
                moved <= crate::network::RoadClass::Highway.speed() + 1e-9,
                "object {i} jumped {moved}"
            );
        }
    }

    #[test]
    fn objects_actually_move() {
        let net = small_net();
        let mut m = NetworkMover::new(net, 30, 5);
        let before: Vec<Point> = (0..30).map(|i| m.position(i)).collect();
        m.advance();
        let moved = (0..30u32)
            .filter(|&i| before[i as usize].dist(m.position(i)) > 1e-9)
            .count();
        assert!(moved >= 25, "only {moved}/30 objects moved");
    }

    #[test]
    fn positions_stay_near_the_network() {
        let net = small_net();
        let mut m = NetworkMover::new(net, 20, 9);
        for _ in 0..30 {
            m.advance();
        }
        // Every position must sit on some edge segment of the network.
        for i in 0..20u32 {
            let p = m.position(i);
            let on_edge = (0..m.network().num_edges()).any(|e| {
                let edge = m.network().edge(e);
                let a = m.network().node(edge.a);
                let b = m.network().node(edge.b);
                // Distance from p to segment ab.
                let ab = b - a;
                let t = ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
                let proj = a.lerp(b, t);
                proj.dist(p) < 1e-6
            });
            assert!(on_edge, "object {i} at {p} is off-network");
        }
    }

    #[test]
    fn deterministic_streams_for_equal_seeds() {
        let mk = || NetworkMover::new(small_net(), 15, 77);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..10 {
            let ua = a.advance().to_vec();
            let ub = b.advance().to_vec();
            assert_eq!(ua, ub);
        }
    }

    #[test]
    fn advance_reports_every_object() {
        let mut m = NetworkMover::new(small_net(), 12, 3);
        let ups = m.advance();
        assert_eq!(ups.len(), 12);
        let mut ids: Vec<u32> = ups.iter().map(|u| u.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }
}
