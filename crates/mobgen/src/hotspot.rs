//! Gaussian-hotspot movement: heavily skewed spatial distributions.
//!
//! Spatio-temporal workloads are rarely uniform — population concentrates
//! around a few centers (downtowns, events). This mover keeps objects
//! orbiting a set of Gaussian hotspots: each object belongs to a hotspot,
//! performs random-waypoint trips whose targets are normal deviates
//! around the center, and occasionally migrates to a different hotspot.
//! Used by the skew ablation to stress the algorithms' density
//! adaptivity (CRNN's pies and IGERN's region react very differently to
//! skew).

use crate::rng::Rng64;
use igern_geom::{Aabb, Point};

use crate::workload::{Mover, Update};

/// Parameters of the hotspot world.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    pub space: Aabb,
    /// Number of Gaussian centers.
    pub num_hotspots: usize,
    /// Standard deviation of positions around a center (space units).
    pub sigma: f64,
    /// Per-tick probability that an object migrates to another hotspot.
    pub migration_prob: f64,
    pub min_speed: f64,
    pub max_speed: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            num_hotspots: 5,
            sigma: 60.0,
            migration_prob: 0.002,
            min_speed: 2.0,
            max_speed: 8.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Orbiter {
    pos: Point,
    waypoint: Point,
    speed: f64,
    hotspot: usize,
}

/// Objects orbiting Gaussian hotspots.
pub struct HotspotMover {
    cfg: HotspotConfig,
    centers: Vec<Point>,
    objs: Vec<Orbiter>,
    rng: Rng64,
    buf: Vec<Update>,
}

impl HotspotMover {
    /// Spawn `n` objects distributed over the hotspots.
    ///
    /// # Panics
    /// Panics when the config has no hotspots or a bad speed range.
    pub fn new(cfg: HotspotConfig, n: usize, seed: u64) -> Self {
        assert!(cfg.num_hotspots >= 1, "need at least one hotspot");
        assert!(
            cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
            "bad speed range"
        );
        let mut rng = Rng64::seed_from_u64(seed ^ 0x0b4d_5eed_cafe_f00d);
        let centers: Vec<Point> = (0..cfg.num_hotspots)
            .map(|_| {
                Point::new(
                    rng.gen_range(cfg.space.min.x..=cfg.space.max.x),
                    rng.gen_range(cfg.space.min.y..=cfg.space.max.y),
                )
            })
            .collect();
        let mut objs = Vec::with_capacity(n);
        for _ in 0..n {
            let hotspot = rng.gen_range(0..centers.len());
            let pos = gaussian_around(&mut rng, centers[hotspot], cfg.sigma, &cfg.space);
            let waypoint = gaussian_around(&mut rng, centers[hotspot], cfg.sigma, &cfg.space);
            objs.push(Orbiter {
                pos,
                waypoint,
                speed: rng.gen_range(cfg.min_speed..=cfg.max_speed),
                hotspot,
            });
        }
        HotspotMover {
            cfg,
            centers,
            objs,
            rng,
            buf: Vec::with_capacity(n),
        }
    }

    /// The hotspot centers.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// The hotspot an object currently belongs to.
    pub fn hotspot_of(&self, id: u32) -> usize {
        self.objs[id as usize].hotspot
    }
}

/// Clamped Box–Muller normal deviate around `center`.
fn gaussian_around(rng: &mut Rng64, center: Point, sigma: f64, space: &Aabb) -> Point {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mag = sigma * (-2.0 * u1.ln()).sqrt();
    let p = Point::new(center.x + mag * u2.cos(), center.y + mag * u2.sin());
    space.clamp(p)
}

impl Mover for HotspotMover {
    fn len(&self) -> usize {
        self.objs.len()
    }

    fn space(&self) -> Aabb {
        self.cfg.space
    }

    fn position(&self, id: u32) -> Point {
        self.objs[id as usize].pos
    }

    fn advance(&mut self) -> &[Update] {
        self.buf.clear();
        for (i, o) in self.objs.iter_mut().enumerate() {
            // Occasional migration to a new hotspot.
            if self.rng.gen_bool(self.cfg.migration_prob) {
                o.hotspot = self.rng.gen_range(0..self.centers.len());
                o.waypoint = gaussian_around(
                    &mut self.rng,
                    self.centers[o.hotspot],
                    self.cfg.sigma,
                    &self.cfg.space,
                );
            }
            let mut budget = o.speed;
            for _ in 0..4 {
                let d = o.pos.dist(o.waypoint);
                if d > budget {
                    o.pos = o.pos.lerp(o.waypoint, budget / d);
                    break;
                }
                budget -= d;
                o.pos = o.waypoint;
                o.waypoint = gaussian_around(
                    &mut self.rng,
                    self.centers[o.hotspot],
                    self.cfg.sigma,
                    &self.cfg.space,
                );
            }
            self.buf.push(Update {
                id: i as u32,
                pos: o.pos,
            });
        }
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mover(n: usize) -> HotspotMover {
        HotspotMover::new(HotspotConfig::default(), n, 5)
    }

    #[test]
    fn spawns_near_centers() {
        let m = mover(200);
        let mut near = 0;
        for i in 0..200u32 {
            let p = m.position(i);
            let d = m
                .centers()
                .iter()
                .map(|c| c.dist(p))
                .fold(f64::INFINITY, f64::min);
            if d < 3.0 * 60.0 {
                near += 1;
            }
        }
        // ~99% of Gaussian mass is within 3σ (modulo boundary clamping).
        assert!(near >= 190, "only {near}/200 objects near a hotspot");
    }

    #[test]
    fn distribution_is_skewed() {
        // Compare occupancy of the densest decile of a coarse grid to the
        // uniform expectation.
        let m = mover(1000);
        let mut counts = [0usize; 25];
        for i in 0..1000u32 {
            let p = m.position(i);
            let cx = ((p.x / 200.0) as usize).min(4);
            let cy = ((p.y / 200.0) as usize).min(4);
            counts[cy * 5 + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max > 2 * (1000 / 25),
            "hotspots should concentrate mass (max bucket {max})"
        );
    }

    #[test]
    fn stays_in_space_and_respects_speed() {
        let mut m = mover(100);
        let space = m.space();
        for _ in 0..30 {
            let before: Vec<Point> = (0..100).map(|i| m.position(i)).collect();
            m.advance();
            for i in 0..100u32 {
                let p = m.position(i);
                assert!(space.contains(p));
                assert!(before[i as usize].dist(p) <= 8.0 + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = mover(20);
        let mut b = mover(20);
        for _ in 0..10 {
            assert_eq!(a.advance().to_vec(), b.advance().to_vec());
        }
    }

    #[test]
    fn migration_changes_hotspots_eventually() {
        let cfg = HotspotConfig {
            migration_prob: 0.5,
            ..Default::default()
        };
        let mut m = HotspotMover::new(cfg, 50, 3);
        let before: Vec<usize> = (0..50).map(|i| m.hotspot_of(i)).collect();
        for _ in 0..5 {
            m.advance();
        }
        let after: Vec<usize> = (0..50).map(|i| m.hotspot_of(i)).collect();
        assert_ne!(before, after, "aggressive migration must move someone");
    }
}
