//! City-scale scenario presets.
//!
//! A [`Scenario`] bundles everything one experiment needs — a movement
//! model, an object-kind split, a query plan, and a churn profile — under
//! a named preset, while staying *composable*: every preset returns a
//! plain value whose knobs can be overridden with `with_*` builders
//! before instantiation. The presets model the three workload families
//! the road-network mode is aimed at:
//!
//! * [`Scenario::taxi_dispatch`] — bichromatic dispatch: a small fleet of
//!   taxis (kind A) serving a large passenger population (kind B) on a
//!   dense downtown grid; the dispatcher watches bichromatic RkNN
//!   ("which taxis count this passenger among their k nearest riders").
//! * [`Scenario::geofenced_influence`] — monochromatic influence zones on
//!   a sparse suburban network: each store/beacon monitors the reverse
//!   nearest neighbors that would be pulled to it; no churn.
//! * [`Scenario::hotspot_churn`] — commuter churn around Gaussian
//!   hotspots: objects pour in and out every tick (rush-hour arrivals and
//!   departures), stressing insert/remove paths and density adaptivity.

use crate::hotspot::HotspotConfig;
use crate::synthetic::SyntheticNetworkConfig;
use crate::workload::{Movement, ObjKind, Workload, WorkloadConfig};
use igern_geom::Aabb;

/// How many standing queries a scenario registers and with what k.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// Number of standing queries.
    pub count: usize,
    /// RkNN k (1 = classic RNN).
    pub k: usize,
    /// Bichromatic (query kind A against data kind B) or monochromatic.
    pub bichromatic: bool,
}

/// Per-tick population churn: each tick, `round(insert_per_mille/1000 · n)`
/// fresh objects enter and the same fraction of existing ones leave.
/// Integer per-mille keeps the profile exactly representable and
/// hash-stable across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnProfile {
    pub insert_per_mille: u32,
    pub remove_per_mille: u32,
}

impl ChurnProfile {
    /// No objects enter or leave.
    pub const NONE: ChurnProfile = ChurnProfile {
        insert_per_mille: 0,
        remove_per_mille: 0,
    };

    /// Whether the profile actually churns.
    pub fn is_active(&self) -> bool {
        self.insert_per_mille > 0 || self.remove_per_mille > 0
    }
}

/// A named, fully-specified experiment setup.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub workload: WorkloadConfig,
    pub queries: QueryPlan,
    pub churn: ChurnProfile,
}

impl Scenario {
    /// Bichromatic taxi dispatch on a dense downtown grid.
    pub fn taxi_dispatch(num_objects: usize, seed: u64) -> Self {
        Scenario {
            name: "taxi-dispatch",
            workload: WorkloadConfig {
                num_objects,
                seed,
                movement: Movement::Network(SyntheticNetworkConfig {
                    k: 24,
                    jitter: 0.25,
                    highway_stride: 8,
                    prune_fraction: 0.05, // downtown: almost no dead ends
                    seed,
                    ..Default::default()
                }),
                // Fleets are small relative to demand.
                kind_a_fraction: Some(0.2),
            },
            queries: QueryPlan {
                count: 16,
                k: 2,
                bichromatic: true,
            },
            churn: ChurnProfile {
                insert_per_mille: 20, // passengers hail and are dropped off
                remove_per_mille: 20,
            },
        }
    }

    /// Monochromatic geofenced influence zones on a sparse suburban net.
    pub fn geofenced_influence(num_objects: usize, seed: u64) -> Self {
        Scenario {
            name: "geofenced-influence",
            workload: WorkloadConfig {
                num_objects,
                seed,
                movement: Movement::Network(SyntheticNetworkConfig {
                    k: 16,
                    jitter: 0.4,
                    highway_stride: 4,
                    prune_fraction: 0.3, // suburbs: sparse, irregular
                    space: Aabb::from_coords(0.0, 0.0, 2000.0, 2000.0),
                    seed,
                }),
                kind_a_fraction: None,
            },
            queries: QueryPlan {
                count: 8,
                k: 1,
                bichromatic: false,
            },
            churn: ChurnProfile::NONE,
        }
    }

    /// Commuter churn around Gaussian hotspots (open-space movement).
    pub fn hotspot_churn(num_objects: usize, seed: u64) -> Self {
        Scenario {
            name: "hotspot-churn",
            workload: WorkloadConfig {
                num_objects,
                seed,
                movement: Movement::Hotspot(HotspotConfig {
                    num_hotspots: 8,
                    sigma: 45.0,
                    migration_prob: 0.01,
                    ..Default::default()
                }),
                kind_a_fraction: None,
            },
            queries: QueryPlan {
                count: 12,
                k: 4,
                bichromatic: false,
            },
            churn: ChurnProfile {
                insert_per_mille: 50, // rush hour: heavy arrivals/departures
                remove_per_mille: 50,
            },
        }
    }

    /// Look a preset up by its CLI name.
    pub fn by_name(name: &str, num_objects: usize, seed: u64) -> Option<Self> {
        match name {
            "taxi-dispatch" => Some(Self::taxi_dispatch(num_objects, seed)),
            "geofenced-influence" => Some(Self::geofenced_influence(num_objects, seed)),
            "hotspot-churn" => Some(Self::hotspot_churn(num_objects, seed)),
            _ => None,
        }
    }

    /// The preset names `by_name` accepts.
    pub const NAMES: [&'static str; 3] = ["taxi-dispatch", "geofenced-influence", "hotspot-churn"];

    // ---- composable overrides -------------------------------------------

    /// Override the object count.
    pub fn with_objects(mut self, n: usize) -> Self {
        self.workload.num_objects = n;
        self
    }

    /// Override the seed (movement networks keep their own seed knob in
    /// `workload.movement`; this reseeds both).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        if let Movement::Network(cfg) = &mut self.workload.movement {
            cfg.seed = seed;
        }
        self
    }

    /// Override the query plan.
    pub fn with_queries(mut self, plan: QueryPlan) -> Self {
        self.queries = plan;
        self
    }

    /// Override the churn profile.
    pub fn with_churn(mut self, churn: ChurnProfile) -> Self {
        self.churn = churn;
        self
    }

    /// Instantiate the workload and pick the query anchors the plan
    /// calls for (kind A, spread evenly over the id range).
    pub fn build(&self) -> (Workload, Vec<u32>) {
        let w = Workload::from_config(&self.workload);
        let anchors = w.pick_queries(ObjKind::A, self.queries.count);
        (w, anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_instantiate_and_move() {
        for name in Scenario::NAMES {
            let sc = Scenario::by_name(name, 200, 7).unwrap();
            assert_eq!(sc.name, name);
            let (mut w, anchors) = sc.build();
            assert_eq!(w.len(), 200);
            assert_eq!(anchors.len(), sc.queries.count);
            let space = w.mover().space();
            for u in w.advance().to_vec() {
                assert!(space.contains(u.pos), "{name}: object escaped");
            }
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(Scenario::by_name("nope", 10, 0).is_none());
    }

    #[test]
    fn taxi_dispatch_is_bichromatic_with_small_fleet() {
        let sc = Scenario::taxi_dispatch(500, 3);
        assert!(sc.queries.bichromatic);
        let (w, anchors) = sc.build();
        let n_a = w.kinds().iter().filter(|&&k| k == ObjKind::A).count();
        assert_eq!(n_a, 100); // 20% fleet
        assert!(anchors.iter().all(|&a| w.kind(a) == ObjKind::A));
        assert!(sc.churn.is_active());
    }

    #[test]
    fn geofenced_influence_is_quiet_mono() {
        let sc = Scenario::geofenced_influence(300, 3);
        assert!(!sc.queries.bichromatic);
        assert!(!sc.churn.is_active());
        let (w, _) = sc.build();
        assert!(w.kinds().iter().all(|&k| k == ObjKind::A));
    }

    #[test]
    fn overrides_compose() {
        let sc = Scenario::taxi_dispatch(100, 1)
            .with_objects(40)
            .with_seed(9)
            .with_queries(QueryPlan {
                count: 3,
                k: 4,
                bichromatic: true,
            })
            .with_churn(ChurnProfile::NONE);
        assert_eq!(sc.workload.num_objects, 40);
        assert_eq!(sc.workload.seed, 9);
        if let Movement::Network(cfg) = &sc.workload.movement {
            assert_eq!(cfg.seed, 9, "reseed must reach the network too");
        } else {
            panic!("taxi-dispatch should be network movement");
        }
        let (w, anchors) = sc.build();
        assert_eq!(w.len(), 40);
        assert_eq!(anchors.len(), 3);
        assert!(!sc.churn.is_active());
    }

    #[test]
    fn same_seed_same_build() {
        let a = Scenario::hotspot_churn(60, 5).build();
        let b = Scenario::hotspot_churn(60, 5).build();
        assert_eq!(a.1, b.1);
        for i in 0..60u32 {
            assert_eq!(a.0.mover().position(i), b.0.mover().position(i));
        }
    }
}
