//! Record/replay of update streams.
//!
//! Tests compare competing algorithms tick-by-tick; recording a mover's
//! output once and replaying it to each algorithm guarantees they see
//! byte-identical inputs (and makes failures reproducible from the trace
//! alone).

use igern_geom::{Aabb, Point};

use crate::workload::{Mover, Update};

/// A fully materialized update stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    space: Aabb,
    initial: Vec<Point>,
    ticks: Vec<Vec<Update>>,
}

impl RecordedTrace {
    /// Drain `num_ticks` ticks from a mover into a trace.
    pub fn record<M: Mover>(mover: &mut M, num_ticks: usize) -> Self {
        let initial = (0..mover.len() as u32).map(|i| mover.position(i)).collect();
        let space = mover.space();
        let ticks = (0..num_ticks).map(|_| mover.advance().to_vec()).collect();
        RecordedTrace {
            space,
            initial,
            ticks,
        }
    }

    /// Build a trace directly from parts (tests, hand-crafted scenarios).
    pub fn from_parts(space: Aabb, initial: Vec<Point>, ticks: Vec<Vec<Update>>) -> Self {
        RecordedTrace {
            space,
            initial,
            ticks,
        }
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.initial.len()
    }

    /// Number of recorded ticks.
    pub fn num_ticks(&self) -> usize {
        self.ticks.len()
    }

    /// Initial positions, indexed by object id.
    pub fn initial(&self) -> &[Point] {
        &self.initial
    }

    /// The data space.
    pub fn space(&self) -> Aabb {
        self.space
    }

    /// The updates of tick `t`.
    pub fn tick(&self, t: usize) -> &[Update] {
        &self.ticks[t]
    }

    /// A replaying cursor positioned before the first tick.
    pub fn player(&self) -> TracePlayer<'_> {
        TracePlayer {
            trace: self,
            positions: self.initial.clone(),
            t: 0,
        }
    }
}

/// A [`Mover`] that replays a [`RecordedTrace`].
pub struct TracePlayer<'a> {
    trace: &'a RecordedTrace,
    positions: Vec<Point>,
    t: usize,
}

impl Mover for TracePlayer<'_> {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn space(&self) -> Aabb {
        self.trace.space
    }

    fn position(&self, id: u32) -> Point {
        self.positions[id as usize]
    }

    fn advance(&mut self) -> &[Update] {
        assert!(self.t < self.trace.num_ticks(), "trace exhausted");
        let ups = &self.trace.ticks[self.t];
        self.t += 1;
        for u in ups {
            self.positions[u.id as usize] = u.pos;
        }
        ups
    }
}

impl RecordedTrace {
    /// Serialize to a simple line-oriented text format:
    ///
    /// ```text
    /// space <min_x> <min_y> <max_x> <max_y>
    /// objects <n>
    /// <x> <y>            # n initial positions, one per line
    /// tick <m>           # m updates follow
    /// <id> <x> <y>
    /// ...
    /// ```
    ///
    /// Coordinates are written with full round-trip precision so a
    /// saved+loaded trace replays bit-identically.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "space {:?} {:?} {:?} {:?}",
            self.space.min.x, self.space.min.y, self.space.max.x, self.space.max.y
        )?;
        writeln!(w, "objects {}", self.initial.len())?;
        for p in &self.initial {
            writeln!(w, "{:?} {:?}", p.x, p.y)?;
        }
        for tick in &self.ticks {
            writeln!(w, "tick {}", tick.len())?;
            for u in tick {
                writeln!(w, "{} {:?} {:?}", u.id, u.pos.x, u.pos.y)?;
            }
        }
        Ok(())
    }

    /// Parse a trace written by [`RecordedTrace::save`].
    pub fn load<R: std::io::BufRead>(r: R) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
        let mut lines = r.lines();
        let mut next_line = || -> std::io::Result<String> {
            lines.next().ok_or_else(|| bad("unexpected end of trace"))?
        };
        // Header: space.
        let header = next_line()?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "space" {
            return Err(bad("missing space header"));
        }
        let coord = |s: &str| s.parse::<f64>().map_err(|_| bad("bad coordinate"));
        let space = Aabb::from_coords(
            coord(parts[1])?,
            coord(parts[2])?,
            coord(parts[3])?,
            coord(parts[4])?,
        );
        // Initial positions.
        let header = next_line()?;
        let n: usize = header
            .strip_prefix("objects ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing objects header"))?;
        let mut initial = Vec::with_capacity(n);
        for _ in 0..n {
            let line = next_line()?;
            let mut it = line.split_whitespace();
            let x = coord(it.next().ok_or_else(|| bad("short position line"))?)?;
            let y = coord(it.next().ok_or_else(|| bad("short position line"))?)?;
            initial.push(Point::new(x, y));
        }
        // Ticks until EOF.
        let mut ticks = Vec::new();
        loop {
            let header = match lines.next() {
                None => break,
                Some(l) => l?,
            };
            let m: usize = header
                .strip_prefix("tick ")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing tick header"))?;
            let mut tick = Vec::with_capacity(m);
            for _ in 0..m {
                let line = lines
                    .next()
                    .ok_or_else(|| bad("unexpected end of tick"))??;
                let mut it = line.split_whitespace();
                let id: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad update id"))?;
                let x = coord(it.next().ok_or_else(|| bad("short update line"))?)?;
                let y = coord(it.next().ok_or_else(|| bad("short update line"))?)?;
                if id as usize >= initial.len() {
                    return Err(bad("update id out of range"));
                }
                tick.push(Update {
                    id,
                    pos: Point::new(x, y),
                });
            }
            ticks.push(tick);
        }
        Ok(RecordedTrace {
            space,
            initial,
            ticks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::RandomWaypointMover;

    #[test]
    fn record_and_replay_agree_with_source() {
        let space = Aabb::from_coords(0.0, 0.0, 100.0, 100.0);
        let mut src = RandomWaypointMover::new(space, 12, 1.0, 3.0, 5);
        let mut twin = RandomWaypointMover::new(space, 12, 1.0, 3.0, 5);
        let trace = RecordedTrace::record(&mut src, 15);
        assert_eq!(trace.num_objects(), 12);
        assert_eq!(trace.num_ticks(), 15);
        let mut player = trace.player();
        for _ in 0..15 {
            let from_trace = player.advance().to_vec();
            let from_twin = twin.advance().to_vec();
            assert_eq!(from_trace, from_twin);
        }
        for i in 0..12u32 {
            assert_eq!(player.position(i), twin.position(i));
        }
    }

    #[test]
    fn player_tracks_positions() {
        let space = Aabb::from_coords(0.0, 0.0, 10.0, 10.0);
        let trace = RecordedTrace::from_parts(
            space,
            vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
            vec![
                vec![Update {
                    id: 0,
                    pos: Point::new(3.0, 3.0),
                }],
                vec![Update {
                    id: 1,
                    pos: Point::new(4.0, 4.0),
                }],
            ],
        );
        let mut p = trace.player();
        assert_eq!(p.position(0), Point::new(1.0, 1.0));
        p.advance();
        assert_eq!(p.position(0), Point::new(3.0, 3.0));
        assert_eq!(p.position(1), Point::new(2.0, 2.0));
        p.advance();
        assert_eq!(p.position(1), Point::new(4.0, 4.0));
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let space = Aabb::from_coords(0.0, 0.0, 100.0, 100.0);
        let mut src = RandomWaypointMover::new(space, 9, 1.0, 4.0, 42);
        let trace = RecordedTrace::record(&mut src, 12);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn load_rejects_garbage() {
        let cases: &[&str] = &[
            "",
            "space 0 0 1",
            "space 0 0 1 1
objects 2
0.5 0.5",
            "space 0 0 1 1
objects 1
0.5 0.5
tick 1
7 0.1 0.1",
            "space 0 0 1 1
objects 1
0.5 0.5
tick what",
        ];
        for c in cases {
            assert!(
                RecordedTrace::load(std::io::BufReader::new(c.as_bytes())).is_err(),
                "should reject: {c:?}"
            );
        }
    }

    #[test]
    fn loaded_trace_replays_identically() {
        let space = Aabb::from_coords(0.0, 0.0, 50.0, 50.0);
        let mut src = RandomWaypointMover::new(space, 5, 1.0, 2.0, 8);
        let trace = RecordedTrace::record(&mut src, 6);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(std::io::BufReader::new(buf.as_slice())).unwrap();
        let mut a = trace.player();
        let mut b = loaded.player();
        for _ in 0..6 {
            assert_eq!(a.advance().to_vec(), b.advance().to_vec());
        }
    }

    #[test]
    #[should_panic(expected = "trace exhausted")]
    fn over_advancing_panics() {
        let trace = RecordedTrace::from_parts(Aabb::unit(), vec![Point::ORIGIN], vec![]);
        trace.player().advance();
    }
}
