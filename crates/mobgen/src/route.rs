//! Shortest-path routing on the road network.
//!
//! Objects in the Brinkhoff model travel along time-shortest paths.
//! Because tens of thousands of objects re-route continuously, routing is
//! served from an all-pairs next-hop table ([`RoutingTable`]) built with
//! one Dijkstra run per source node; a single-pair Dijkstra is also
//! provided for callers that only route occasionally.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::network::{NodeId, RoadNetwork};

/// Min-heap entry for Dijkstra.
#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Travel-time Dijkstra from `src`; returns per-node cost and predecessor.
fn dijkstra(net: &RoadNetwork, src: NodeId) -> (Vec<f64>, Vec<Option<NodeId>>) {
    let n = net.num_nodes();
    let mut cost = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    cost[src] = 0.0;
    heap.push(HeapItem {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapItem { cost: c, node }) = heap.pop() {
        if c > cost[node] {
            continue; // stale entry
        }
        for &e in net.incident(node) {
            let edge = net.edge(e);
            let next = edge.other(node);
            let nc = c + edge.travel_time();
            if nc < cost[next] {
                cost[next] = nc;
                pred[next] = Some(node);
                heap.push(HeapItem {
                    cost: nc,
                    node: next,
                });
            }
        }
    }
    (cost, pred)
}

/// Time-shortest path from `src` to `dst` as a node sequence (inclusive of
/// both endpoints), or `None` when unreachable.
pub fn shortest_path(net: &RoadNetwork, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let (cost, pred) = dijkstra(net, src);
    if cost[dst].is_infinite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = pred[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], src);
    Some(path)
}

/// All-pairs next-hop table: `next_hop(src, dst)` is the neighbor of `src`
/// on a time-shortest path toward `dst`.
///
/// Storage is `V²` u32 entries — a few megabytes for the synthetic
/// networks used here — built with `V` Dijkstra runs.
pub struct RoutingTable {
    n: usize,
    /// Row-major `[src][dst]`; `u32::MAX` marks unreachable.
    next: Vec<u32>,
}

impl RoutingTable {
    /// Build the table for a network.
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let mut next = vec![u32::MAX; n * n];
        for src in 0..n {
            let (cost, pred) = dijkstra(net, src);
            // For each destination, walk predecessors back to find the
            // first hop out of src.
            for dst in 0..n {
                if dst == src || cost[dst].is_infinite() {
                    continue;
                }
                let mut cur = dst;
                while let Some(p) = pred[cur] {
                    if p == src {
                        break;
                    }
                    cur = p;
                }
                next[src * n + dst] = cur as u32;
            }
        }
        RoutingTable { n, next }
    }

    /// The next node after `src` on the shortest path to `dst`; `None`
    /// when `src == dst` or `dst` is unreachable.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        let v = self.next[src * self.n + dst];
        (v != u32::MAX).then_some(v as usize)
    }

    /// Materialize the full path from `src` to `dst` (inclusive).
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            if path.len() > self.n {
                // Defensive: a cycle here would indicate table corruption.
                return None;
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadClass;
    use igern_geom::{Aabb, Point};

    /// Line graph 0-1-2-3 plus a slow long shortcut 0-3.
    fn line_with_shortcut() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let segs = [
            (0, 1, RoadClass::Highway),
            (1, 2, RoadClass::Highway),
            (2, 3, RoadClass::Highway),
            // Direct but slow: same 3-unit distance at 1/4 the speed.
            (0, 3, RoadClass::Side),
        ];
        RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 4.0, 1.0))
    }

    #[test]
    fn shortest_path_prefers_fast_roads() {
        let net = line_with_shortcut();
        let p = shortest_path(&net, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3], "highway chain beats slow shortcut");
    }

    #[test]
    fn trivial_and_unreachable_paths() {
        let net = line_with_shortcut();
        assert_eq!(shortest_path(&net, 2, 2), Some(vec![2]));
        let disconnected = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(9.0, 9.0),
            ],
            &[(0, 1, RoadClass::Main)],
            Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
        );
        assert!(shortest_path(&disconnected, 0, 2).is_none());
    }

    #[test]
    fn routing_table_matches_dijkstra() {
        let net = line_with_shortcut();
        let table = RoutingTable::build(&net);
        for src in 0..net.num_nodes() {
            for dst in 0..net.num_nodes() {
                assert_eq!(
                    table.path(src, dst),
                    shortest_path(&net, src, dst),
                    "{src} -> {dst}"
                );
            }
        }
    }

    #[test]
    fn next_hop_edges_exist() {
        let net = line_with_shortcut();
        let table = RoutingTable::build(&net);
        for src in 0..net.num_nodes() {
            for dst in 0..net.num_nodes() {
                if let Some(h) = table.next_hop(src, dst) {
                    assert!(
                        net.incident(src)
                            .iter()
                            .any(|&e| net.edge(e).other(src) == h),
                        "next hop {h} is not adjacent to {src}"
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_marked_in_table() {
        let disconnected = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(9.0, 9.0),
            ],
            &[(0, 1, RoadClass::Main)],
            Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
        );
        let table = RoutingTable::build(&disconnected);
        assert!(table.next_hop(0, 2).is_none());
        assert!(table.path(0, 2).is_none());
        assert_eq!(table.path(0, 1), Some(vec![0, 1]));
    }
}
