//! Property test: dirty-cell tracking and `drain_dirty` epochs survive
//! arena-bucket churn.
//!
//! The grid's cell membership lists live in a shared slab arena with
//! power-of-two blocks and intrusive per-class free lists, and dirty-region
//! routing depends on every mutation marking exactly the touched cells.
//! This test drives hotspot-biased insert/remove/update churn — enough to
//! push buckets through several size classes, free their old blocks, and
//! recycle them — while mirroring the expected state in naive containers,
//! and asserts after every epoch that the dirty set, the epoch counter,
//! and the bucket layout all agree with the mirror exactly.

use std::collections::{HashMap, HashSet};

use igern_geom::{Aabb, Point};
use igern_grid::{Grid, ObjectId};

/// The splitmix-style generator used across the repo's fuzz suites.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 11
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() & ((1 << 32) - 1)) as f64 / (1u64 << 32) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn dirty_tracking_survives_bucket_churn() {
    let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
    let mut rng = Rng(0x0051_ab17);
    // The naive mirror: object positions, the cells every mutation should
    // have dirtied this epoch, and the live id list for uniform picking.
    let mut mirror: HashMap<u32, Point> = HashMap::new();
    let mut expected_dirty: HashSet<usize> = HashSet::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next_id = 0u32;

    for epoch in 0..60u64 {
        assert_eq!(g.dirty_epoch(), epoch, "drain count drifted");
        for _ in 0..120 {
            let roll = rng.below(10);
            if roll < 4 || mirror.is_empty() {
                // Insert, hotspot-biased: half the objects land in a 2×2
                // corner patch so its buckets climb size classes while
                // uniform cells stay small.
                let p = if rng.below(2) == 0 {
                    Point::new(rng.f64() * 2.0, rng.f64() * 2.0)
                } else {
                    Point::new(rng.f64() * 10.0, rng.f64() * 10.0)
                };
                let id = next_id;
                next_id += 1;
                g.insert(ObjectId(id), p);
                mirror.insert(id, p);
                live.push(id);
                expected_dirty.insert(g.cell_of_point(p));
            } else if roll < 7 {
                // Update: small within-cell nudges and long jumps both
                // occur; either way the old cell must be dirtied, and the
                // new one too when the move crosses a boundary.
                let id = live[rng.below(live.len())];
                let old = mirror[&id];
                let p = if rng.below(3) == 0 {
                    Point::new(
                        (old.x + (rng.f64() - 0.5) * 0.1).clamp(0.0, 10.0),
                        (old.y + (rng.f64() - 0.5) * 0.1).clamp(0.0, 10.0),
                    )
                } else {
                    Point::new(rng.f64() * 10.0, rng.f64() * 10.0)
                };
                let (old_cell, new_cell) = (g.cell_of_point(old), g.cell_of_point(p));
                let crossed = g.update(ObjectId(id), p);
                assert_eq!(crossed, old_cell != new_cell);
                mirror.insert(id, p);
                expected_dirty.insert(old_cell);
                expected_dirty.insert(new_cell);
            } else {
                // Remove (occasionally draining a whole hotspot bucket so
                // grown blocks are freed and later recycled).
                let at = rng.below(live.len());
                let id = live.swap_remove(at);
                let old = mirror.remove(&id).unwrap();
                assert_eq!(g.remove(ObjectId(id)), Some(old));
                expected_dirty.insert(g.cell_of_point(old));
            }
        }

        // The dirty set is exactly the mirror's: no missed mutations, no
        // phantom cells.
        let got: HashSet<usize> = g.dirty().iter().collect();
        assert_eq!(got, expected_dirty, "dirty set diverged at epoch {epoch}");

        // Bucket layout vs mirror: every live object listed exactly once,
        // in the cell its position maps to, with a matching position
        // lookup — dangling or duplicated slab entries fail the count.
        assert_eq!(g.len(), mirror.len());
        let mut listed = 0usize;
        for c in 0..g.num_cells() {
            for &id in g.objects_in(c) {
                let p = *mirror.get(&id.0).expect("phantom object in a bucket");
                assert_eq!(g.cell_of_point(p), c, "object {id} listed in wrong cell");
                assert_eq!(g.position(id), Some(p));
                listed += 1;
            }
        }
        assert_eq!(listed, mirror.len(), "buckets duplicate or drop objects");

        g.drain_dirty();
        expected_dirty.clear();
        assert!(g.dirty().is_empty(), "drain left residue");
    }
    assert_eq!(g.dirty_epoch(), 60);
}
