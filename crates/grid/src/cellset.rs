//! Bitsets over grid cells: the *alive / dead* bookkeeping of IGERN.
//!
//! "Initially ... all grid cells in the grid data structure G are set as
//! alive, i.e., every cell has the potential of containing reverse nearest
//! neighbors of q" (paper, §3.1). Bisector pruning then marks cells dead.

/// A fixed-capacity bitset addressing the `n·n` cells of a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl CellSet {
    /// An all-clear set over `len` cells.
    pub fn new(len: usize) -> Self {
        CellSet {
            words: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// An all-set ("all cells alive") set over `len` cells.
    pub fn full(len: usize) -> Self {
        let mut s = CellSet::new(len);
        s.fill();
        s
    }

    /// Capacity in cells.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of set cells.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no cell is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether cell `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Set cell `i`. Returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Clear cell `i`. Returns whether the set changed.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    /// Set everything.
    pub fn fill(&mut self) {
        if self.len == 0 {
            return;
        }
        self.words.iter_mut().for_each(|w| *w = !0);
        // Mask the tail word so iteration never yields out-of-range cells.
        let tail = self.len % 64;
        if tail != 0 {
            *self.words.last_mut().unwrap() = (1u64 << tail) - 1;
        }
        self.count = self.len;
    }

    /// Iterate over the indices of set cells, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// In-place intersection with `other`. Both sets must have the same
    /// capacity.
    pub fn intersect_with(&mut self, other: &CellSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut count = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// In-place union with `other`. Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &CellSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut count = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// Whether the two sets share at least one cell, without allocating.
    /// Both sets must have the same capacity.
    #[inline]
    pub fn intersects(&self, other: &CellSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = CellSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129)); // already set
        assert_eq!(s.count(), 2);
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = CellSet::full(70);
        assert_eq!(s.count(), 70);
        assert_eq!(s.iter().count(), 70);
        assert_eq!(s.iter().max(), Some(69));
    }

    #[test]
    fn full_with_word_aligned_capacity() {
        let s = CellSet::full(128);
        assert_eq!(s.count(), 128);
        assert_eq!(s.iter().max(), Some(127));
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let mut s = CellSet::new(200);
        for &i in &[3usize, 64, 65, 128, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut s = CellSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn intersection() {
        let mut a = CellSet::new(100);
        let mut b = CellSet::new(100);
        for i in 0..50 {
            a.insert(i);
        }
        for i in 25..75 {
            b.insert(i);
        }
        a.intersect_with(&b);
        assert_eq!(a.count(), 25);
        assert!(a.contains(25) && a.contains(49));
        assert!(!a.contains(24) && !a.contains(50));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = CellSet::new(100);
        let mut b = CellSet::new(100);
        a.insert(3);
        b.insert(97);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&a));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.contains(3) && a.contains(97));
        assert!(a.intersects(&b));
        assert!(!CellSet::new(100).intersects(&CellSet::full(100)));
    }

    #[test]
    fn empty_capacity_set() {
        let mut s = CellSet::new(0);
        s.fill();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }
}
