//! Bitsets over grid cells: the *alive / dead* bookkeeping of IGERN.
//!
//! "Initially ... all grid cells in the grid data structure G are set as
//! alive, i.e., every cell has the potential of containing reverse nearest
//! neighbors of q" (paper, §3.1). Bisector pruning then marks cells dead.

/// A fixed-capacity bitset addressing the `n·n` cells of a grid.
#[derive(Debug, PartialEq, Eq)]
pub struct CellSet {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl Clone for CellSet {
    fn clone(&self) -> Self {
        CellSet {
            words: self.words.clone(),
            len: self.len,
            count: self.count,
        }
    }

    /// Reuses the existing word storage (a derived impl would fall back
    /// to `*self = source.clone()`), so cloning into a warmed-up set —
    /// the per-tick watch-set rebuild — does not touch the allocator.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.len = source.len;
        self.count = source.count;
    }
}

impl Default for CellSet {
    /// An empty set over zero cells; [`CellSet::reset`] it before use.
    fn default() -> Self {
        CellSet::new(0)
    }
}

impl CellSet {
    /// An all-clear set over `len` cells.
    pub fn new(len: usize) -> Self {
        CellSet {
            words: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// An all-set ("all cells alive") set over `len` cells.
    pub fn full(len: usize) -> Self {
        let mut s = CellSet::new(len);
        s.fill();
        s
    }

    /// Capacity in cells.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of set cells.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no cell is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether cell `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Set cell `i`. Returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Clear cell `i`. Returns whether the set changed.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Clear and, when the capacity differs, re-shape to `len` cells — the
    /// scratch-friendly way to get an all-clear set of the right size
    /// without reallocating in the common same-grid case.
    pub fn reset(&mut self, len: usize) {
        if self.len == len {
            self.clear();
        } else {
            *self = CellSet::new(len);
        }
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    /// Set everything.
    pub fn fill(&mut self) {
        if self.len == 0 {
            return;
        }
        self.words.iter_mut().for_each(|w| *w = !0);
        // Mask the tail word so iteration never yields out-of-range cells.
        let tail = self.len % 64;
        if tail != 0 {
            *self.words.last_mut().unwrap() = (1u64 << tail) - 1;
        }
        self.count = self.len;
    }

    /// Iterate over the indices of set cells, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Keep only the set cells satisfying `pred`, in place and without
    /// allocating. Returns the number of cells cleared.
    pub fn retain(&mut self, mut pred: impl FnMut(usize) -> bool) -> usize {
        let mut removed = 0;
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            let mut scan = w;
            while scan != 0 {
                let b = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                if !pred(wi * 64 + b) {
                    w &= !(1u64 << b);
                    removed += 1;
                }
            }
            self.words[wi] = w;
        }
        self.count -= removed;
        removed
    }

    /// Smallest set cell index, or `None` when the set is empty. A word
    /// scan, not a bit scan — used to bound sweeps to the live id range.
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, w)| wi * 64 + w.trailing_zeros() as usize)
    }

    /// Largest set cell index, or `None` when the set is empty.
    pub fn last_set(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(wi, w)| wi * 64 + 63 - w.leading_zeros() as usize)
    }

    /// Clear every set cell in `start..end`, whole words at a time.
    /// Returns the number of cells cleared.
    ///
    /// This is the bulk form of [`CellSet::remove`] used by bisector
    /// pruning: the dead cells of one grid row form a contiguous id range,
    /// so a row is killed with at most a few masked word stores instead of
    /// a bit-by-bit sweep.
    pub fn remove_range(&mut self, start: usize, end: usize) -> usize {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return 0;
        }
        let (first_w, first_b) = (start / 64, start % 64);
        let (last_w, last_b) = ((end - 1) / 64, (end - 1) % 64);
        let head = !0u64 << first_b;
        let tail = !0u64 >> (63 - last_b);
        let mut removed = 0usize;
        if first_w == last_w {
            let mask = head & tail;
            let w = &mut self.words[first_w];
            removed += (*w & mask).count_ones() as usize;
            *w &= !mask;
        } else {
            let w = &mut self.words[first_w];
            removed += (*w & head).count_ones() as usize;
            *w &= !head;
            for wi in first_w + 1..last_w {
                removed += self.words[wi].count_ones() as usize;
                self.words[wi] = 0;
            }
            let w = &mut self.words[last_w];
            removed += (*w & tail).count_ones() as usize;
            *w &= !tail;
        }
        self.count -= removed;
        removed
    }

    /// In-place intersection with `other`. Both sets must have the same
    /// capacity.
    pub fn intersect_with(&mut self, other: &CellSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut count = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// In-place union with `other`. Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &CellSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut count = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// Whether the two sets share at least one cell, without allocating.
    /// Both sets must have the same capacity.
    #[inline]
    pub fn intersects(&self, other: &CellSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = CellSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129)); // already set
        assert_eq!(s.count(), 2);
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = CellSet::full(70);
        assert_eq!(s.count(), 70);
        assert_eq!(s.iter().count(), 70);
        assert_eq!(s.iter().max(), Some(69));
    }

    #[test]
    fn full_with_word_aligned_capacity() {
        let s = CellSet::full(128);
        assert_eq!(s.count(), 128);
        assert_eq!(s.iter().max(), Some(127));
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let mut s = CellSet::new(200);
        for &i in &[3usize, 64, 65, 128, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut s = CellSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn intersection() {
        let mut a = CellSet::new(100);
        let mut b = CellSet::new(100);
        for i in 0..50 {
            a.insert(i);
        }
        for i in 25..75 {
            b.insert(i);
        }
        a.intersect_with(&b);
        assert_eq!(a.count(), 25);
        assert!(a.contains(25) && a.contains(49));
        assert!(!a.contains(24) && !a.contains(50));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = CellSet::new(100);
        let mut b = CellSet::new(100);
        a.insert(3);
        b.insert(97);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&a));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.contains(3) && a.contains(97));
        assert!(a.intersects(&b));
        assert!(!CellSet::new(100).intersects(&CellSet::full(100)));
    }

    #[test]
    fn retain_clears_failing_cells_and_counts() {
        let mut s = CellSet::new(200);
        for &i in &[3usize, 64, 65, 128, 199] {
            s.insert(i);
        }
        let removed = s.retain(|c| c % 2 == 1);
        assert_eq!(removed, 2); // 64 and 128 go
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 65, 199]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.retain(|_| true), 0);
    }

    #[test]
    fn first_and_last_set_bits() {
        let mut s = CellSet::new(200);
        assert_eq!(s.first_set(), None);
        assert_eq!(s.last_set(), None);
        s.insert(77);
        assert_eq!(s.first_set(), Some(77));
        assert_eq!(s.last_set(), Some(77));
        s.insert(3);
        s.insert(199);
        assert_eq!(s.first_set(), Some(3));
        assert_eq!(s.last_set(), Some(199));
        s.remove(3);
        assert_eq!(s.first_set(), Some(77));
    }

    #[test]
    fn remove_range_matches_per_bit_removal() {
        // Exercise the single-word, word-boundary, and multi-word paths.
        for &(start, end) in &[
            (0usize, 0usize),
            (3, 9),
            (0, 64),
            (60, 70),
            (64, 128),
            (1, 199),
            (199, 200),
        ] {
            let mut fast = CellSet::new(200);
            let mut slow = CellSet::new(200);
            for i in (0..200).step_by(3) {
                fast.insert(i);
                slow.insert(i);
            }
            let removed = fast.remove_range(start, end);
            let mut expect = 0;
            for i in start..end {
                if slow.remove(i) {
                    expect += 1;
                }
            }
            assert_eq!(removed, expect, "range {start}..{end}");
            assert_eq!(fast, slow, "range {start}..{end}");
            assert_eq!(fast.count(), slow.count());
        }
    }

    #[test]
    fn reset_reuses_or_reshapes() {
        let mut s = CellSet::full(100);
        s.reset(100);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
        s.insert(5);
        s.reset(64);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 64);
    }

    #[test]
    fn empty_capacity_set() {
        let mut s = CellSet::new(0);
        s.fill();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }
}
