//! A growable bitset used as the occupancy table of the SoA object store.
//!
//! Unlike [`crate::cellset::CellSet`] — which is fixed-capacity and sized to
//! the `n·n` cells of one grid — this bitvec grows with the object-id space
//! and answers only "is slot `i` live", which is all the SoA tables need.

/// A growable bitset over object slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An empty bitvec with zero capacity.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Number of addressable slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is addressable.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow to at least `len` slots; new slots start clear. Never shrinks.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Whether slot `i` is set. Out-of-range slots read as clear.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(w) => w & (1 << (i % 64)) != 0,
            None => false,
        }
    }

    /// Set slot `i`. Returns whether the bit changed.
    ///
    /// # Panics
    /// Panics when `i` is out of range — call [`BitVec::grow`] first.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Clear slot `i`. Returns whether the bit changed. Out-of-range slots
    /// are already clear.
    #[inline]
    pub fn unset(&mut self, i: usize) -> bool {
        match self.words.get_mut(i / 64) {
            Some(w) => {
                let bit = 1 << (i % 64);
                let was = *w & bit != 0;
                *w &= !bit;
                was
            }
            None => false,
        }
    }

    /// Iterate over the indices of set slots, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_set_unset_roundtrip() {
        let mut b = BitVec::new();
        assert!(b.is_empty());
        assert!(!b.get(10)); // out of range reads clear
        b.grow(70);
        assert_eq!(b.len(), 70);
        assert!(b.set(0));
        assert!(b.set(69));
        assert!(!b.set(69)); // already set
        assert!(b.get(0) && b.get(69) && !b.get(35));
        assert!(b.unset(0));
        assert!(!b.unset(0));
        assert!(!b.unset(1000)); // out of range is already clear
    }

    #[test]
    fn grow_preserves_bits_and_never_shrinks() {
        let mut b = BitVec::new();
        b.grow(5);
        b.set(3);
        b.grow(200);
        assert!(b.get(3));
        assert_eq!(b.len(), 200);
        b.grow(10);
        assert_eq!(b.len(), 200);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = BitVec::new();
        b.grow(4);
        b.set(4);
    }

    #[test]
    fn iter_ones_is_ascending_and_exact() {
        let mut b = BitVec::new();
        b.grow(200);
        for &i in &[3usize, 64, 65, 128, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 199]);
    }
}
