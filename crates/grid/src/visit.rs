//! Ring-expansion cell visitation.
//!
//! The NN searches visit grid cells in square "rings" of increasing
//! Chebyshev radius around the query's cell — the grid analogue of the
//! conceptual-partitioning search of Mouratidis et al. (the paper's shared
//! NN substrate). Cells in ring `r` are all at least `(r-1)·cell_extent`
//! away from the query point, which gives the search a monotone lower
//! bound for early termination.

use crate::grid::{CellId, Grid};

/// Yields the cell ids at Chebyshev distance exactly `r` from
/// `(cx, cy)`, clipped to the grid. Ring 0 is the center cell itself.
///
/// Returns a lazy iterator rather than materializing the ring: every NN
/// search expands rings in its inner loop, and a per-ring `Vec` was the
/// last allocation left in the steady-state tick. The emission order is
/// exactly the order the former `Vec` held — top and bottom rows
/// interleaved left to right, then the side columns top to bottom — so
/// distance ties keep resolving to the same object.
pub fn ring_cells(grid: &Grid, cx: usize, cy: usize, r: usize) -> RingCells {
    let n = grid.cells_per_side();
    debug_assert!(cx < n && cy < n);
    RingCells {
        n: n as isize,
        cx: cx as isize,
        cy: cy as isize,
        r: r as isize,
        phase: if r == 0 { Phase::Center } else { Phase::Rows },
        i: cx as isize - r as isize,
        pending: None,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    /// Ring 0: the center cell alone.
    Center,
    /// Top and bottom rows, `x` sweeping `cx-r ..= cx+r`.
    Rows,
    /// Left and right columns, `y` sweeping `cy-r+1 .. cy+r`.
    Cols,
    Done,
}

/// Allocation-free iterator over one ring's cells (see [`ring_cells`]).
pub struct RingCells {
    n: isize,
    cx: isize,
    cy: isize,
    r: isize,
    phase: Phase,
    /// Sweep coordinate: `x` during [`Phase::Rows`], `y` during
    /// [`Phase::Cols`].
    i: isize,
    /// Second cell of the current pair (bottom row / right column),
    /// emitted on the next pull.
    pending: Option<CellId>,
}

impl Iterator for RingCells {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        if let Some(c) = self.pending.take() {
            return Some(c);
        }
        loop {
            match self.phase {
                Phase::Center => {
                    self.phase = Phase::Done;
                    return Some((self.cy * self.n + self.cx) as CellId);
                }
                Phase::Rows => {
                    if self.i > self.cx + self.r {
                        self.phase = Phase::Cols;
                        self.i = self.cy - self.r + 1;
                        continue;
                    }
                    let x = self.i;
                    self.i += 1;
                    if x < 0 || x >= self.n {
                        continue;
                    }
                    let top = self.cy - self.r;
                    let bot = self.cy + self.r;
                    let first = (top >= 0).then(|| (top * self.n + x) as CellId);
                    let second = (bot < self.n).then(|| (bot * self.n + x) as CellId);
                    match (first, second) {
                        (Some(a), b) => {
                            self.pending = b;
                            return Some(a);
                        }
                        (None, Some(b)) => return Some(b),
                        (None, None) => continue,
                    }
                }
                Phase::Cols => {
                    if self.i >= self.cy + self.r {
                        self.phase = Phase::Done;
                        continue;
                    }
                    let y = self.i;
                    self.i += 1;
                    if y < 0 || y >= self.n {
                        continue;
                    }
                    let left = self.cx - self.r;
                    let right = self.cx + self.r;
                    let first = (left >= 0).then(|| (y * self.n + left) as CellId);
                    let second = (right < self.n).then(|| (y * self.n + right) as CellId);
                    match (first, second) {
                        (Some(a), b) => {
                            self.pending = b;
                            return Some(a);
                        }
                        (None, Some(b)) => return Some(b),
                        (None, None) => continue,
                    }
                }
                Phase::Done => return None,
            }
        }
    }
}

/// The largest ring radius that can still contain cells of the grid when
/// centered at `(cx, cy)`.
pub fn max_ring_radius(grid: &Grid, cx: usize, cy: usize) -> usize {
    let n = grid.cells_per_side();
    [cx, cy, n - 1 - cx, n - 1 - cy].into_iter().max().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid(n: usize) -> Grid {
        Grid::new(Aabb::from_coords(0.0, 0.0, n as f64, n as f64), n)
    }

    #[test]
    fn ring_zero_is_center() {
        let g = grid(5);
        assert_eq!(
            ring_cells(&g, 2, 2, 0).collect::<Vec<_>>(),
            vec![g.cell_at(2, 2)]
        );
    }

    #[test]
    fn interior_ring_sizes() {
        let g = grid(9);
        // Full ring r has 8r cells when not clipped.
        for r in 1..=3 {
            assert_eq!(ring_cells(&g, 4, 4, r).count(), 8 * r);
        }
    }

    #[test]
    fn rings_partition_the_grid() {
        let g = grid(6);
        let (cx, cy) = (1, 4);
        let mut seen = vec![false; g.num_cells()];
        for r in 0..=max_ring_radius(&g, cx, cy) {
            for c in ring_cells(&g, cx, cy, r) {
                assert!(!seen[c], "cell {c} visited twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "some cells never visited");
    }

    #[test]
    fn corner_rings_are_clipped() {
        let g = grid(4);
        assert_eq!(ring_cells(&g, 0, 0, 1).count(), 3); // (1,0), (0,1), (1,1)
        assert_eq!(ring_cells(&g, 0, 0, 3).count(), 7); // last row + last column
    }

    /// The iterator must emit exactly the order of the former
    /// `Vec`-building implementation — NN tie-breaking depends on it.
    #[test]
    fn ring_order_matches_the_materialized_ring() {
        let g = grid(7);
        for &(cx, cy) in &[(3usize, 3usize), (0, 0), (6, 2), (1, 6)] {
            for r in 0..=max_ring_radius(&g, cx, cy) {
                let got: Vec<CellId> = ring_cells(&g, cx, cy, r).collect();
                let mut want: Vec<CellId> = Vec::new();
                let n = g.cells_per_side() as isize;
                let (cxi, cyi, ri) = (cx as isize, cy as isize, r as isize);
                let mut push = |x: isize, y: isize| {
                    if x >= 0 && x < n && y >= 0 && y < n {
                        want.push((y * n + x) as CellId);
                    }
                };
                if r == 0 {
                    push(cxi, cyi);
                } else {
                    for x in (cxi - ri)..=(cxi + ri) {
                        push(x, cyi - ri);
                        push(x, cyi + ri);
                    }
                    for y in (cyi - ri + 1)..(cyi + ri) {
                        push(cxi - ri, y);
                        push(cxi + ri, y);
                    }
                }
                assert_eq!(got, want, "center ({cx},{cy}) ring {r}");
            }
        }
    }

    #[test]
    fn ring_cells_are_at_exact_chebyshev_distance() {
        let g = grid(8);
        for r in 0..5 {
            for c in ring_cells(&g, 3, 2, r) {
                let (ix, iy) = g.cell_coords(c);
                let d = (ix as isize - 3).abs().max((iy as isize - 2).abs());
                assert_eq!(d as usize, r);
            }
        }
    }

    #[test]
    fn max_radius_reaches_far_corner() {
        let g = grid(10);
        assert_eq!(max_ring_radius(&g, 0, 0), 9);
        assert_eq!(max_ring_radius(&g, 5, 5), 5);
        assert_eq!(max_ring_radius(&g, 9, 2), 9);
    }
}
