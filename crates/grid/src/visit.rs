//! Ring-expansion cell visitation.
//!
//! The NN searches visit grid cells in square "rings" of increasing
//! Chebyshev radius around the query's cell — the grid analogue of the
//! conceptual-partitioning search of Mouratidis et al. (the paper's shared
//! NN substrate). Cells in ring `r` are all at least `(r-1)·cell_extent`
//! away from the query point, which gives the search a monotone lower
//! bound for early termination.

use crate::grid::{CellId, Grid};

/// Yields the cell ids at Chebyshev distance exactly `r` from
/// `(cx, cy)`, clipped to the grid. Ring 0 is the center cell itself.
pub fn ring_cells(grid: &Grid, cx: usize, cy: usize, r: usize) -> Vec<CellId> {
    let n = grid.cells_per_side();
    debug_assert!(cx < n && cy < n);
    let mut out = Vec::new();
    if r == 0 {
        out.push(grid.cell_at(cx, cy));
        return out;
    }
    let (cx, cy, r, n) = (cx as isize, cy as isize, r as isize, n as isize);
    let push = |x: isize, y: isize, out: &mut Vec<CellId>| {
        if x >= 0 && x < n && y >= 0 && y < n {
            out.push((y * n + x) as CellId);
        }
    };
    // Top and bottom rows of the ring.
    for x in (cx - r)..=(cx + r) {
        push(x, cy - r, &mut out);
        push(x, cy + r, &mut out);
    }
    // Left and right columns, excluding the corners already emitted.
    for y in (cy - r + 1)..(cy + r) {
        push(cx - r, y, &mut out);
        push(cx + r, y, &mut out);
    }
    out
}

/// The largest ring radius that can still contain cells of the grid when
/// centered at `(cx, cy)`.
pub fn max_ring_radius(grid: &Grid, cx: usize, cy: usize) -> usize {
    let n = grid.cells_per_side();
    [cx, cy, n - 1 - cx, n - 1 - cy].into_iter().max().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid(n: usize) -> Grid {
        Grid::new(Aabb::from_coords(0.0, 0.0, n as f64, n as f64), n)
    }

    #[test]
    fn ring_zero_is_center() {
        let g = grid(5);
        assert_eq!(ring_cells(&g, 2, 2, 0), vec![g.cell_at(2, 2)]);
    }

    #[test]
    fn interior_ring_sizes() {
        let g = grid(9);
        // Full ring r has 8r cells when not clipped.
        for r in 1..=3 {
            assert_eq!(ring_cells(&g, 4, 4, r).len(), 8 * r);
        }
    }

    #[test]
    fn rings_partition_the_grid() {
        let g = grid(6);
        let (cx, cy) = (1, 4);
        let mut seen = vec![false; g.num_cells()];
        for r in 0..=max_ring_radius(&g, cx, cy) {
            for c in ring_cells(&g, cx, cy, r) {
                assert!(!seen[c], "cell {c} visited twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "some cells never visited");
    }

    #[test]
    fn corner_rings_are_clipped() {
        let g = grid(4);
        let ring1 = ring_cells(&g, 0, 0, 1);
        assert_eq!(ring1.len(), 3); // (1,0), (0,1), (1,1)
        let ring3 = ring_cells(&g, 0, 0, 3);
        assert_eq!(ring3.len(), 7); // last row + last column
    }

    #[test]
    fn ring_cells_are_at_exact_chebyshev_distance() {
        let g = grid(8);
        for r in 0..5 {
            for c in ring_cells(&g, 3, 2, r) {
                let (ix, iy) = g.cell_coords(c);
                let d = (ix as isize - 3).abs().max((iy as isize - 2).abs());
                assert_eq!(d as usize, r);
            }
        }
    }

    #[test]
    fn max_radius_reaches_far_corner() {
        let g = grid(10);
        assert_eq!(max_ring_radius(&g, 0, 0), 9);
        assert_eq!(max_ring_radius(&g, 5, 5), 5);
        assert_eq!(max_ring_radius(&g, 9, 2), 9);
    }
}
