//! The N×N uniform grid over the data space.

use igern_geom::{Aabb, Point};

use crate::bitvec::BitVec;
use crate::cellset::CellSet;
use crate::object::ObjectId;

/// Index of a grid cell, in row-major order (`iy * n + ix`).
pub type CellId = usize;

/// Sentinel filler for unoccupied arena slots; never returned by queries.
const ARENA_HOLE: ObjectId = ObjectId(u32::MAX);

/// Per-cell bucket descriptor: a `(start, len, cap)` window into the shared
/// bucket arena. `cap == 0` means the cell has never held an object and owns
/// no arena block.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    start: u32,
    len: u32,
    cap: u32,
}

/// The flat bucket arena shared by every cell of one grid.
///
/// Cell membership lists live in one contiguous `Vec<ObjectId>` slab instead
/// of `n²` separately heap-allocated `Vec`s. Each cell owns a power-of-two
/// sized block (`cap ∈ {4, 8, 16, …}`); when a bucket outgrows its block it
/// moves to a block of the next size class — recycled from a per-class free
/// list when one is available, carved off the end of the slab otherwise —
/// and its old block joins the free list. The free lists are *intrusive*:
/// each freed block stores the start of the next free block of its class in
/// its own first slot, so freeing is a single slab write and steady-state
/// churn (objects moving between warmed-up cells) touches no allocator at
/// all — not even for free-list bookkeeping — while cell scans walk
/// contiguous memory.
#[derive(Debug, Clone)]
struct BucketArena {
    slab: Vec<ObjectId>,
    /// Start of the first free block per size class
    /// (`cap = MIN_CAP << class`), [`FREE_NONE`] when the list is empty.
    free_heads: [u32; NUM_CLASSES],
}

/// Smallest bucket block, in slots.
const MIN_CAP: u32 = 4;

/// Every representable block size: `MIN_CAP << (NUM_CLASSES - 1)` = 2³¹.
const NUM_CLASSES: usize = 30;

/// Empty-free-list sentinel (no slab index can reach it: a block that
/// started there would overflow the `u32` slab).
const FREE_NONE: u32 = u32::MAX;

impl Default for BucketArena {
    fn default() -> Self {
        BucketArena {
            slab: Vec::new(),
            free_heads: [FREE_NONE; NUM_CLASSES],
        }
    }
}

impl BucketArena {
    #[inline]
    fn class_of(cap: u32) -> usize {
        debug_assert!(cap >= MIN_CAP && cap.is_power_of_two());
        (cap / MIN_CAP).trailing_zeros() as usize
    }

    /// Hand out a block of exactly `cap` slots (a power of two ≥ `MIN_CAP`).
    fn alloc_block(&mut self, cap: u32) -> u32 {
        let class = Self::class_of(cap);
        let head = self.free_heads[class];
        if head != FREE_NONE {
            // Pop the intrusive list: the block's first slot holds the
            // next free block's start.
            self.free_heads[class] = self.slab[head as usize].0;
            self.slab[head as usize] = ARENA_HOLE;
            return head;
        }
        let start = self.slab.len() as u32;
        self.slab.resize(self.slab.len() + cap as usize, ARENA_HOLE);
        start
    }

    /// Return a block to its size-class free list (one slab write, no
    /// allocation).
    fn free_block(&mut self, start: u32, cap: u32) {
        let class = Self::class_of(cap);
        self.slab[start as usize] = ObjectId(self.free_heads[class]);
        self.free_heads[class] = start;
    }

    /// Append `id` to `bucket`, migrating it to a larger block when full.
    fn push(&mut self, bucket: &mut Bucket, id: ObjectId) {
        if bucket.len == bucket.cap {
            let new_cap = (bucket.cap * 2).max(MIN_CAP);
            let new_start = self.alloc_block(new_cap);
            self.slab.copy_within(
                bucket.start as usize..(bucket.start + bucket.len) as usize,
                new_start as usize,
            );
            if bucket.cap > 0 {
                self.free_block(bucket.start, bucket.cap);
            }
            bucket.start = new_start;
            bucket.cap = new_cap;
        }
        self.slab[(bucket.start + bucket.len) as usize] = id;
        bucket.len += 1;
    }

    /// Remove the entry at `at` by swapping in the last one (order is not
    /// maintained, exactly like the former `Vec::swap_remove`).
    #[inline]
    fn swap_remove(&mut self, bucket: &mut Bucket, at: usize) {
        debug_assert!(at < bucket.len as usize);
        let last = (bucket.start + bucket.len - 1) as usize;
        self.slab[bucket.start as usize + at] = self.slab[last];
        self.slab[last] = ARENA_HOLE;
        bucket.len -= 1;
    }

    /// The live entries of `bucket`.
    #[inline]
    fn slice(&self, bucket: Bucket) -> &[ObjectId] {
        &self.slab[bucket.start as usize..(bucket.start + bucket.len) as usize]
    }
}

/// A uniform grid of `n × n` equal-size cells over a rectangular data
/// space. Each cell keeps the ids of the objects currently inside it; the
/// object table is stored SoA — a flat position vector, a flat cell vector,
/// and an occupancy bitset — so hot scans touch only the column they need.
///
/// The grid also counts *cell changes* — the number of object updates that
/// moved an object across a cell boundary — which is the maintenance-cost
/// metric of the paper's Figure 6a.
///
/// For dirty-region update routing the grid additionally tracks which
/// cells were *touched* since the last [`Grid::drain_dirty`]: every
/// insert, remove, and update marks the affected cell(s) dirty. A
/// within-cell move still dirties its cell — positions inside changed, so
/// any distance-based answer involving that cell may change too.
#[derive(Debug, Clone)]
pub struct Grid {
    space: Aabb,
    n: usize,
    cell_w: f64,
    cell_h: f64,
    /// Per-cell `(start, len, cap)` windows into the bucket arena.
    buckets: Vec<Bucket>,
    arena: BucketArena,
    /// SoA object table, indexed by `ObjectId::index()`. A slot is only
    /// meaningful when its `occupied` bit is set.
    positions: Vec<Point>,
    obj_cells: Vec<u32>,
    occupied: BitVec,
    len: usize,
    cell_changes: u64,
    /// Cells touched since the last drain.
    dirty: CellSet,
    /// Monotone counter, bumped on every drain: "which tick is this
    /// dirty set for".
    dirty_epoch: u64,
}

impl Grid {
    /// Suggest a cells-per-side value for a population size, from the
    /// Figure-6 trade-off (coarse grids make searches scan too many
    /// objects; fine grids pay in update overhead). Calibrated on the E1
    /// sweep of this reproduction: the CPU minimum sits where cells hold
    /// roughly two dozen objects, i.e. `n ≈ sqrt(objects / 24)`, clamped
    /// to `[4, 256]`.
    pub fn suggest_size(num_objects: usize) -> usize {
        ((num_objects as f64 / 24.0).sqrt().round() as usize).clamp(4, 256)
    }

    /// Create an empty grid of `n × n` cells over `space`.
    ///
    /// # Panics
    /// Panics when `n == 0` or the space is degenerate.
    pub fn new(space: Aabb, n: usize) -> Self {
        assert!(n > 0, "grid must have at least one cell per side");
        assert!(
            space.width() > 0.0 && space.height() > 0.0,
            "degenerate data space"
        );
        Grid {
            space,
            n,
            cell_w: space.width() / n as f64,
            cell_h: space.height() / n as f64,
            buckets: vec![Bucket::default(); n * n],
            arena: BucketArena::default(),
            positions: Vec::new(),
            obj_cells: Vec::new(),
            occupied: BitVec::new(),
            len: 0,
            cell_changes: 0,
            dirty: CellSet::new(n * n),
            dirty_epoch: 0,
        }
    }

    /// The data space.
    #[inline]
    pub fn space(&self) -> &Aabb {
        &self.space
    }

    /// Cells per side (the paper's grid-size parameter).
    #[inline]
    pub fn cells_per_side(&self) -> usize {
        self.n
    }

    /// Total number of cells (`n²`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.n * self.n
    }

    /// The smaller of the two cell extents — the unit of the ring-search
    /// lower bound.
    #[inline]
    pub fn min_cell_extent(&self) -> f64 {
        self.cell_w.min(self.cell_h)
    }

    /// Number of objects currently indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column of the cell containing x-coordinate `x` (clamped to range).
    #[inline]
    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.space.min.x) / self.cell_w) as isize;
        c.clamp(0, self.n as isize - 1) as usize
    }

    /// Row of the cell containing y-coordinate `y` (clamped to range).
    #[inline]
    fn row_of(&self, y: f64) -> usize {
        let r = ((y - self.space.min.y) / self.cell_h) as isize;
        r.clamp(0, self.n as isize - 1) as usize
    }

    /// Cell containing `p` (points outside the space are clamped onto the
    /// boundary cells).
    #[inline]
    pub fn cell_of_point(&self, p: Point) -> CellId {
        self.cell_at(self.col_of(p.x), self.row_of(p.y))
    }

    /// Cell id from `(column, row)` coordinates.
    #[inline]
    pub fn cell_at(&self, ix: usize, iy: usize) -> CellId {
        debug_assert!(ix < self.n && iy < self.n);
        iy * self.n + ix
    }

    /// `(column, row)` coordinates of a cell id.
    #[inline]
    pub fn cell_coords(&self, c: CellId) -> (usize, usize) {
        (c % self.n, c / self.n)
    }

    /// Geometric bounds of a cell.
    #[inline]
    pub fn cell_bounds(&self, c: CellId) -> Aabb {
        let (ix, iy) = self.cell_coords(c);
        self.cell_bounds_at(ix, iy)
    }

    /// Geometric bounds of the cell at `(column, row)` — [`Grid::cell_bounds`]
    /// without the id-to-coordinates division, for callers already sweeping
    /// in grid coordinates.
    #[inline]
    pub fn cell_bounds_at(&self, ix: usize, iy: usize) -> Aabb {
        debug_assert!(ix < self.n && iy < self.n);
        let x0 = self.space.min.x + ix as f64 * self.cell_w;
        let y0 = self.space.min.y + iy as f64 * self.cell_h;
        Aabb::from_coords(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// Objects currently inside cell `c`: a contiguous slice of the bucket
    /// arena.
    #[inline]
    pub fn objects_in(&self, c: CellId) -> &[ObjectId] {
        self.arena.slice(self.buckets[c])
    }

    /// Current position of object `id`, if indexed.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Option<Point> {
        if self.occupied.get(id.index()) {
            Some(self.positions[id.index()])
        } else {
            None
        }
    }

    /// Grow the SoA object tables so slot `i` is addressable.
    fn grow_tables(&mut self, i: usize) {
        if self.positions.len() <= i {
            self.positions.resize(i + 1, Point::new(0.0, 0.0));
            self.obj_cells.resize(i + 1, 0);
        }
        self.occupied.grow(i + 1);
    }

    /// Insert a new object.
    ///
    /// # Panics
    /// Panics if `id` is already indexed.
    pub fn insert(&mut self, id: ObjectId, p: Point) {
        let i = id.index();
        self.grow_tables(i);
        assert!(!self.occupied.get(i), "object {id} already in grid");
        let c = self.cell_of_point(p);
        self.arena.push(&mut self.buckets[c], id);
        self.positions[i] = p;
        self.obj_cells[i] = c as u32;
        self.occupied.set(i);
        self.len += 1;
        self.dirty.insert(c);
    }

    /// Remove an object, returning its last position.
    pub fn remove(&mut self, id: ObjectId) -> Option<Point> {
        let i = id.index();
        if !self.occupied.get(i) {
            return None;
        }
        let p = self.positions[i];
        let c = self.obj_cells[i] as CellId;
        self.occupied.unset(i);
        let bucket = &mut self.buckets[c];
        let at = self
            .arena
            .slice(*bucket)
            .iter()
            .position(|&o| o == id)
            .expect("cell desync");
        self.arena.swap_remove(bucket, at);
        self.len -= 1;
        self.dirty.insert(c);
        Some(p)
    }

    /// Move an object to a new position. Returns `true` when the update
    /// crossed a cell boundary (and was therefore charged as a *cell
    /// change*).
    ///
    /// # Panics
    /// Panics if `id` is not indexed.
    pub fn update(&mut self, id: ObjectId, p: Point) -> bool {
        let i = id.index();
        assert!(self.occupied.get(i), "object {id} not in grid");
        let old_cell = self.obj_cells[i] as CellId;
        let new_cell = self.cell_of_point(p);
        self.positions[i] = p;
        if new_cell == old_cell {
            // The cell population is unchanged but a position inside it
            // moved, so the cell is still dirty for routing purposes.
            self.dirty.insert(old_cell);
            return false;
        }
        self.obj_cells[i] = new_cell as u32;
        let bucket = &mut self.buckets[old_cell];
        let at = self
            .arena
            .slice(*bucket)
            .iter()
            .position(|&o| o == id)
            .expect("cell desync");
        self.arena.swap_remove(bucket, at);
        self.arena.push(&mut self.buckets[new_cell], id);
        self.cell_changes += 1;
        self.dirty.insert(old_cell);
        self.dirty.insert(new_cell);
        true
    }

    /// Number of cell-boundary crossings recorded so far (Figure 6a's
    /// metric).
    #[inline]
    pub fn cell_changes(&self) -> u64 {
        self.cell_changes
    }

    /// Reset the cell-change counter.
    pub fn reset_cell_changes(&mut self) {
        self.cell_changes = 0;
    }

    /// Cells touched by insert/remove/update since the last
    /// [`Grid::drain_dirty`].
    #[inline]
    pub fn dirty(&self) -> &CellSet {
        &self.dirty
    }

    /// Epoch of the current dirty set: the number of drains so far.
    #[inline]
    pub fn dirty_epoch(&self) -> u64 {
        self.dirty_epoch
    }

    /// Clear the dirty set and advance the epoch, closing out one tick of
    /// update tracking.
    pub fn drain_dirty(&mut self) {
        self.dirty.clear();
        self.dirty_epoch += 1;
    }

    /// Add to `out` every cell whose bounds intersect the closed disk of
    /// the given `radius` around `center`. Used to build conservative
    /// monitored-region cell sets.
    ///
    /// # Panics
    /// Panics when `out` was not sized for this grid.
    pub fn add_cells_in_disk(&self, center: Point, radius: f64, out: &mut CellSet) {
        assert_eq!(out.capacity(), self.num_cells(), "capacity mismatch");
        let r = radius.max(0.0);
        let (c0, c1) = (self.col_of(center.x - r), self.col_of(center.x + r));
        let (r0, r1) = (self.row_of(center.y - r), self.row_of(center.y + r));
        let r_sq = r * r;
        for iy in r0..=r1 {
            for ix in c0..=c1 {
                let c = self.cell_at(ix, iy);
                if self.cell_bounds(c).mindist_sq(center) <= r_sq {
                    out.insert(c);
                }
            }
        }
    }

    /// Fault injection for desync testing: clear the occupancy bit of
    /// `id` while leaving it listed in its cell bucket, producing exactly
    /// the bucket/position inconsistency that search routines must
    /// survive (counted in `OpCounters::desyncs`). Returns `false` when
    /// the object is not indexed. Never call this outside tests — it
    /// deliberately corrupts the index.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        let i = id.index();
        if !self.occupied.get(i) {
            return false;
        }
        // A real lost-update desync happens *during* a mutation of this
        // cell, so the cell would be in the dirty set; mark it so skip
        // routing re-examines queries watching the victim.
        let cell = self.obj_cells[i] as CellId;
        self.occupied.unset(i);
        self.len -= 1;
        self.dirty.insert(cell);
        true
    }

    /// Iterate over all `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.occupied
            .iter_ones()
            .map(|i| (ObjectId(i as u32), self.positions[i]))
    }

    /// Write all `(id, position)` pairs into `out` (cleared first),
    /// ascending by id. The scratch-friendly sibling of [`Grid::iter`] for
    /// call sites that would otherwise `iter().collect()` every tick.
    pub fn objects_into(&self, out: &mut Vec<(ObjectId, Point)>) {
        out.clear();
        out.extend(self.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::new(Aabb::from_coords(0.0, 0.0, 4.0, 4.0), 4)
    }

    #[test]
    fn cell_addressing_roundtrip() {
        let g = grid4();
        for iy in 0..4 {
            for ix in 0..4 {
                let c = g.cell_at(ix, iy);
                assert_eq!(g.cell_coords(c), (ix, iy));
                let b = g.cell_bounds(c);
                assert_eq!(g.cell_of_point(b.center()), c);
            }
        }
    }

    #[test]
    fn out_of_space_points_clamp_to_border_cells() {
        let g = grid4();
        assert_eq!(g.cell_of_point(Point::new(-5.0, -5.0)), g.cell_at(0, 0));
        assert_eq!(g.cell_of_point(Point::new(99.0, 99.0)), g.cell_at(3, 3));
        assert_eq!(g.cell_of_point(Point::new(4.0, 0.0)), g.cell_at(3, 0));
    }

    #[test]
    fn insert_lookup_remove() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        g.insert(ObjectId(5), Point::new(3.5, 3.5));
        assert_eq!(g.len(), 2);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(0.5, 0.5)));
        assert_eq!(g.position(ObjectId(1)), None);
        assert_eq!(g.objects_in(g.cell_at(0, 0)), &[ObjectId(0)]);
        assert_eq!(g.remove(ObjectId(0)), Some(Point::new(0.5, 0.5)));
        assert_eq!(g.remove(ObjectId(0)), None);
        assert_eq!(g.len(), 1);
        assert!(g.objects_in(g.cell_at(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "already in grid")]
    fn double_insert_panics() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        g.insert(ObjectId(0), Point::new(1.5, 0.5));
    }

    #[test]
    fn update_within_cell_is_free() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.2, 0.2));
        assert!(!g.update(ObjectId(0), Point::new(0.8, 0.9)));
        assert_eq!(g.cell_changes(), 0);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(0.8, 0.9)));
    }

    #[test]
    fn update_across_cells_is_charged() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        assert!(g.update(ObjectId(0), Point::new(2.5, 3.5)));
        assert_eq!(g.cell_changes(), 1);
        assert!(g.objects_in(g.cell_at(0, 0)).is_empty());
        assert_eq!(g.objects_in(g.cell_at(2, 3)), &[ObjectId(0)]);
        g.reset_cell_changes();
        assert_eq!(g.cell_changes(), 0);
    }

    #[test]
    fn iteration_covers_all_objects() {
        let mut g = grid4();
        for i in 0..10u32 {
            g.insert(ObjectId(i), Point::new(0.1 + 0.35 * i as f64, 2.0));
        }
        let mut ids: Vec<u32> = g.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn objects_into_matches_iter_and_reuses_buffer() {
        let mut g = grid4();
        for i in 0..10u32 {
            g.insert(ObjectId(i), Point::new(0.1 + 0.35 * i as f64, 2.0));
        }
        let mut buf = Vec::new();
        g.objects_into(&mut buf);
        assert_eq!(buf, g.iter().collect::<Vec<_>>());
        let cap = buf.capacity();
        g.objects_into(&mut buf); // second fill reuses the allocation
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn sparse_ids_are_supported() {
        let mut g = grid4();
        g.insert(ObjectId(1000), Point::new(1.0, 1.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(1000)), Some(Point::new(1.0, 1.0)));
        assert_eq!(g.position(ObjectId(999)), None);
    }

    #[test]
    fn suggested_sizes_follow_the_sweep() {
        assert_eq!(Grid::suggest_size(0), 4);
        assert_eq!(Grid::suggest_size(100), 4);
        assert_eq!(Grid::suggest_size(100_000), 65);
        assert_eq!(Grid::suggest_size(10_000_000), 256); // clamped
                                                         // Monotone non-decreasing.
        let mut prev = 0;
        for n in [10, 1_000, 50_000, 200_000, 5_000_000] {
            let s = Grid::suggest_size(n);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn every_mutation_dirties_the_touched_cells() {
        let mut g = grid4();
        assert!(g.dirty().is_empty());
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        g.drain_dirty();
        assert!(g.dirty().is_empty());
        assert_eq!(g.dirty_epoch(), 1);
        // Within-cell move still dirties its cell.
        g.update(ObjectId(0), Point::new(0.8, 0.2));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        assert_eq!(g.dirty().count(), 1);
        g.drain_dirty();
        // Boundary crossing dirties both endpoints.
        g.update(ObjectId(0), Point::new(2.5, 3.5));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        assert!(g.dirty().contains(g.cell_at(2, 3)));
        g.drain_dirty();
        g.remove(ObjectId(0));
        assert!(g.dirty().contains(g.cell_at(2, 3)));
        assert_eq!(g.dirty_epoch(), 3);
    }

    #[test]
    fn disk_cells_cover_exactly_the_intersecting_cells() {
        let g = grid4();
        let mut out = CellSet::new(g.num_cells());
        g.add_cells_in_disk(Point::new(0.5, 0.5), 0.4, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![g.cell_at(0, 0)]);
        out.clear();
        // A disk spanning a corner touches all four neighbours.
        g.add_cells_in_disk(Point::new(1.0, 1.0), 0.1, &mut out);
        assert_eq!(out.count(), 4);
        out.clear();
        // Cross-check against a brute-force scan for several disks.
        for (cx, cy, r) in [(0.0, 0.0, 1.5), (2.2, 3.1, 1.0), (5.0, 5.0, 2.0)] {
            let center = Point::new(cx, cy);
            out.clear();
            g.add_cells_in_disk(center, r, &mut out);
            for c in 0..g.num_cells() {
                let want = g.cell_bounds(c).mindist_sq(center) <= r * r;
                assert_eq!(out.contains(c), want, "disk ({cx},{cy},{r}) cell {c}");
            }
        }
    }

    #[test]
    fn cell_bounds_tile_the_space() {
        let g = Grid::new(Aabb::from_coords(-2.0, 1.0, 6.0, 9.0), 8);
        let total: f64 = (0..g.num_cells()).map(|c| g.cell_bounds(c).area()).sum();
        assert!((total - g.space().area()).abs() < 1e-9);
    }

    #[test]
    fn bucket_growth_preserves_membership() {
        // Push many objects into one cell so its bucket walks through
        // several size classes, then drain it back down.
        let mut g = grid4();
        for i in 0..100u32 {
            g.insert(ObjectId(i), Point::new(0.5, 0.5));
        }
        let mut got: Vec<u32> = g.objects_in(g.cell_at(0, 0)).iter().map(|o| o.0).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        for i in 0..100u32 {
            assert_eq!(g.remove(ObjectId(i)), Some(Point::new(0.5, 0.5)));
        }
        assert!(g.objects_in(g.cell_at(0, 0)).is_empty());
        assert!(g.is_empty());
    }

    #[test]
    fn freed_blocks_are_recycled_across_cells() {
        // Grow one cell's bucket (freeing its smaller blocks), then grow
        // another cell and check the slab did not balloon: the second cell
        // reuses the first cell's recycled blocks.
        let mut g = grid4();
        for i in 0..32u32 {
            g.insert(ObjectId(i), Point::new(0.5, 0.5)); // cell (0,0)
        }
        let slab_after_first = g.arena.slab.len();
        for i in 32..48u32 {
            g.insert(ObjectId(i), Point::new(3.5, 3.5)); // cell (3,3)
        }
        // Cell (3,3) needed blocks of cap 4, 8, and 16 — all available on
        // the free lists from cell (0,0)'s growth — so only its final
        // block (if any) could extend the slab.
        assert!(
            g.arena.slab.len() <= slab_after_first + 16,
            "slab grew from {} to {} — free lists not recycled",
            slab_after_first,
            g.arena.slab.len()
        );
        assert_eq!(g.objects_in(g.cell_at(3, 3)).len(), 16);
    }

    #[test]
    fn steady_state_churn_does_not_grow_the_slab() {
        // Objects bouncing between two warmed-up cells must not touch the
        // allocator: same slab length before and after the churn.
        let mut g = grid4();
        for i in 0..20u32 {
            g.insert(ObjectId(i), Point::new(0.5, 0.5));
        }
        for i in 0..20u32 {
            g.update(ObjectId(i), Point::new(3.5, 3.5));
        }
        let warm = g.arena.slab.len();
        for round in 0..50 {
            let dst = if round % 2 == 0 { 0.5 } else { 3.5 };
            for i in 0..20u32 {
                g.update(ObjectId(i), Point::new(dst, dst));
            }
        }
        assert_eq!(g.arena.slab.len(), warm);
    }

    #[test]
    fn desync_leaves_bucket_stale_but_position_gone() {
        let mut g = grid4();
        g.insert(ObjectId(3), Point::new(1.5, 1.5));
        assert!(g.debug_force_desync(ObjectId(3)));
        assert!(!g.debug_force_desync(ObjectId(3))); // already gone
        assert_eq!(g.position(ObjectId(3)), None);
        assert_eq!(g.len(), 0);
        // The stale bucket entry is exactly the injected fault.
        assert_eq!(g.objects_in(g.cell_of_point(Point::new(1.5, 1.5))).len(), 1);
        assert!(g.dirty().contains(g.cell_of_point(Point::new(1.5, 1.5))));
    }
}
