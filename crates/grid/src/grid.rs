//! The N×N uniform grid over the data space.

use igern_geom::{Aabb, Point};

use crate::cellset::CellSet;
use crate::object::ObjectId;

/// Index of a grid cell, in row-major order (`iy * n + ix`).
pub type CellId = usize;

/// A uniform grid of `n × n` equal-size cells over a rectangular data
/// space. Each cell keeps the ids of the objects currently inside it; a
/// flat per-object table stores the exact position and current cell.
///
/// The grid also counts *cell changes* — the number of object updates that
/// moved an object across a cell boundary — which is the maintenance-cost
/// metric of the paper's Figure 6a.
///
/// For dirty-region update routing the grid additionally tracks which
/// cells were *touched* since the last [`Grid::drain_dirty`]: every
/// insert, remove, and update marks the affected cell(s) dirty. A
/// within-cell move still dirties its cell — positions inside changed, so
/// any distance-based answer involving that cell may change too.
#[derive(Debug, Clone)]
pub struct Grid {
    space: Aabb,
    n: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<ObjectId>>,
    /// Indexed by `ObjectId::index()`: position and current cell.
    objects: Vec<Option<(Point, CellId)>>,
    len: usize,
    cell_changes: u64,
    /// Cells touched since the last drain.
    dirty: CellSet,
    /// Monotone counter, bumped on every drain: "which tick is this
    /// dirty set for".
    dirty_epoch: u64,
}

impl Grid {
    /// Suggest a cells-per-side value for a population size, from the
    /// Figure-6 trade-off (coarse grids make searches scan too many
    /// objects; fine grids pay in update overhead). Calibrated on the E1
    /// sweep of this reproduction: the CPU minimum sits where cells hold
    /// roughly two dozen objects, i.e. `n ≈ sqrt(objects / 24)`, clamped
    /// to `[4, 256]`.
    pub fn suggest_size(num_objects: usize) -> usize {
        ((num_objects as f64 / 24.0).sqrt().round() as usize).clamp(4, 256)
    }

    /// Create an empty grid of `n × n` cells over `space`.
    ///
    /// # Panics
    /// Panics when `n == 0` or the space is degenerate.
    pub fn new(space: Aabb, n: usize) -> Self {
        assert!(n > 0, "grid must have at least one cell per side");
        assert!(
            space.width() > 0.0 && space.height() > 0.0,
            "degenerate data space"
        );
        Grid {
            space,
            n,
            cell_w: space.width() / n as f64,
            cell_h: space.height() / n as f64,
            cells: vec![Vec::new(); n * n],
            objects: Vec::new(),
            len: 0,
            cell_changes: 0,
            dirty: CellSet::new(n * n),
            dirty_epoch: 0,
        }
    }

    /// The data space.
    #[inline]
    pub fn space(&self) -> &Aabb {
        &self.space
    }

    /// Cells per side (the paper's grid-size parameter).
    #[inline]
    pub fn cells_per_side(&self) -> usize {
        self.n
    }

    /// Total number of cells (`n²`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.n * self.n
    }

    /// The smaller of the two cell extents — the unit of the ring-search
    /// lower bound.
    #[inline]
    pub fn min_cell_extent(&self) -> f64 {
        self.cell_w.min(self.cell_h)
    }

    /// Number of objects currently indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column of the cell containing x-coordinate `x` (clamped to range).
    #[inline]
    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.space.min.x) / self.cell_w) as isize;
        c.clamp(0, self.n as isize - 1) as usize
    }

    /// Row of the cell containing y-coordinate `y` (clamped to range).
    #[inline]
    fn row_of(&self, y: f64) -> usize {
        let r = ((y - self.space.min.y) / self.cell_h) as isize;
        r.clamp(0, self.n as isize - 1) as usize
    }

    /// Cell containing `p` (points outside the space are clamped onto the
    /// boundary cells).
    #[inline]
    pub fn cell_of_point(&self, p: Point) -> CellId {
        self.cell_at(self.col_of(p.x), self.row_of(p.y))
    }

    /// Cell id from `(column, row)` coordinates.
    #[inline]
    pub fn cell_at(&self, ix: usize, iy: usize) -> CellId {
        debug_assert!(ix < self.n && iy < self.n);
        iy * self.n + ix
    }

    /// `(column, row)` coordinates of a cell id.
    #[inline]
    pub fn cell_coords(&self, c: CellId) -> (usize, usize) {
        (c % self.n, c / self.n)
    }

    /// Geometric bounds of a cell.
    pub fn cell_bounds(&self, c: CellId) -> Aabb {
        let (ix, iy) = self.cell_coords(c);
        let x0 = self.space.min.x + ix as f64 * self.cell_w;
        let y0 = self.space.min.y + iy as f64 * self.cell_h;
        Aabb::from_coords(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// Objects currently inside cell `c`.
    #[inline]
    pub fn objects_in(&self, c: CellId) -> &[ObjectId] {
        &self.cells[c]
    }

    /// Current position of object `id`, if indexed.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Option<Point> {
        self.objects
            .get(id.index())
            .and_then(|s| s.as_ref())
            .map(|&(p, _)| p)
    }

    /// Insert a new object.
    ///
    /// # Panics
    /// Panics if `id` is already indexed.
    pub fn insert(&mut self, id: ObjectId, p: Point) {
        if self.objects.len() <= id.index() {
            self.objects.resize(id.index() + 1, None);
        }
        assert!(
            self.objects[id.index()].is_none(),
            "object {id} already in grid"
        );
        let c = self.cell_of_point(p);
        self.cells[c].push(id);
        self.objects[id.index()] = Some((p, c));
        self.len += 1;
        self.dirty.insert(c);
    }

    /// Remove an object, returning its last position.
    pub fn remove(&mut self, id: ObjectId) -> Option<Point> {
        let (p, c) = self.objects.get_mut(id.index())?.take()?;
        let cell = &mut self.cells[c];
        let at = cell.iter().position(|&o| o == id).expect("cell desync");
        cell.swap_remove(at);
        self.len -= 1;
        self.dirty.insert(c);
        Some(p)
    }

    /// Move an object to a new position. Returns `true` when the update
    /// crossed a cell boundary (and was therefore charged as a *cell
    /// change*).
    ///
    /// # Panics
    /// Panics if `id` is not indexed.
    pub fn update(&mut self, id: ObjectId, p: Point) -> bool {
        let slot = self.objects[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("object {id} not in grid"));
        let old_cell = slot.1;
        let new_cell = {
            // Inline cell_of_point to sidestep the borrow of `slot`.
            let ix = (((p.x - self.space.min.x) / self.cell_w) as isize)
                .clamp(0, self.n as isize - 1) as usize;
            let iy = (((p.y - self.space.min.y) / self.cell_h) as isize)
                .clamp(0, self.n as isize - 1) as usize;
            iy * self.n + ix
        };
        slot.0 = p;
        if new_cell == old_cell {
            // The cell population is unchanged but a position inside it
            // moved, so the cell is still dirty for routing purposes.
            self.dirty.insert(old_cell);
            return false;
        }
        slot.1 = new_cell;
        let cell = &mut self.cells[old_cell];
        let at = cell.iter().position(|&o| o == id).expect("cell desync");
        cell.swap_remove(at);
        self.cells[new_cell].push(id);
        self.cell_changes += 1;
        self.dirty.insert(old_cell);
        self.dirty.insert(new_cell);
        true
    }

    /// Number of cell-boundary crossings recorded so far (Figure 6a's
    /// metric).
    #[inline]
    pub fn cell_changes(&self) -> u64 {
        self.cell_changes
    }

    /// Reset the cell-change counter.
    pub fn reset_cell_changes(&mut self) {
        self.cell_changes = 0;
    }

    /// Cells touched by insert/remove/update since the last
    /// [`Grid::drain_dirty`].
    #[inline]
    pub fn dirty(&self) -> &CellSet {
        &self.dirty
    }

    /// Epoch of the current dirty set: the number of drains so far.
    #[inline]
    pub fn dirty_epoch(&self) -> u64 {
        self.dirty_epoch
    }

    /// Clear the dirty set and advance the epoch, closing out one tick of
    /// update tracking.
    pub fn drain_dirty(&mut self) {
        self.dirty.clear();
        self.dirty_epoch += 1;
    }

    /// Add to `out` every cell whose bounds intersect the closed disk of
    /// the given `radius` around `center`. Used to build conservative
    /// monitored-region cell sets.
    ///
    /// # Panics
    /// Panics when `out` was not sized for this grid.
    pub fn add_cells_in_disk(&self, center: Point, radius: f64, out: &mut CellSet) {
        assert_eq!(out.capacity(), self.num_cells(), "capacity mismatch");
        let r = radius.max(0.0);
        let (c0, c1) = (self.col_of(center.x - r), self.col_of(center.x + r));
        let (r0, r1) = (self.row_of(center.y - r), self.row_of(center.y + r));
        let r_sq = r * r;
        for iy in r0..=r1 {
            for ix in c0..=c1 {
                let c = self.cell_at(ix, iy);
                if self.cell_bounds(c).mindist_sq(center) <= r_sq {
                    out.insert(c);
                }
            }
        }
    }

    /// Fault injection for desync testing: clear the position slot of
    /// `id` while leaving it listed in its cell bucket, producing exactly
    /// the bucket/position inconsistency that search routines must
    /// survive (counted in `OpCounters::desyncs`). Returns `false` when
    /// the object is not indexed. Never call this outside tests — it
    /// deliberately corrupts the index.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        match self.objects.get_mut(id.index()) {
            Some(slot @ Some(_)) => {
                // A real lost-update desync happens *during* a mutation of
                // this cell, so the cell would be in the dirty set; mark it
                // so skip routing re-examines queries watching the victim.
                let (_, cell) = slot.expect("slot matched Some");
                *slot = None;
                self.len -= 1;
                self.dirty.insert(cell);
                true
            }
            _ => false,
        }
    }

    /// Iterate over all `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(p, _)| (ObjectId(i as u32), p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::new(Aabb::from_coords(0.0, 0.0, 4.0, 4.0), 4)
    }

    #[test]
    fn cell_addressing_roundtrip() {
        let g = grid4();
        for iy in 0..4 {
            for ix in 0..4 {
                let c = g.cell_at(ix, iy);
                assert_eq!(g.cell_coords(c), (ix, iy));
                let b = g.cell_bounds(c);
                assert_eq!(g.cell_of_point(b.center()), c);
            }
        }
    }

    #[test]
    fn out_of_space_points_clamp_to_border_cells() {
        let g = grid4();
        assert_eq!(g.cell_of_point(Point::new(-5.0, -5.0)), g.cell_at(0, 0));
        assert_eq!(g.cell_of_point(Point::new(99.0, 99.0)), g.cell_at(3, 3));
        assert_eq!(g.cell_of_point(Point::new(4.0, 0.0)), g.cell_at(3, 0));
    }

    #[test]
    fn insert_lookup_remove() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        g.insert(ObjectId(5), Point::new(3.5, 3.5));
        assert_eq!(g.len(), 2);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(0.5, 0.5)));
        assert_eq!(g.position(ObjectId(1)), None);
        assert_eq!(g.objects_in(g.cell_at(0, 0)), &[ObjectId(0)]);
        assert_eq!(g.remove(ObjectId(0)), Some(Point::new(0.5, 0.5)));
        assert_eq!(g.remove(ObjectId(0)), None);
        assert_eq!(g.len(), 1);
        assert!(g.objects_in(g.cell_at(0, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "already in grid")]
    fn double_insert_panics() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        g.insert(ObjectId(0), Point::new(1.5, 0.5));
    }

    #[test]
    fn update_within_cell_is_free() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.2, 0.2));
        assert!(!g.update(ObjectId(0), Point::new(0.8, 0.9)));
        assert_eq!(g.cell_changes(), 0);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(0.8, 0.9)));
    }

    #[test]
    fn update_across_cells_is_charged() {
        let mut g = grid4();
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        assert!(g.update(ObjectId(0), Point::new(2.5, 3.5)));
        assert_eq!(g.cell_changes(), 1);
        assert!(g.objects_in(g.cell_at(0, 0)).is_empty());
        assert_eq!(g.objects_in(g.cell_at(2, 3)), &[ObjectId(0)]);
        g.reset_cell_changes();
        assert_eq!(g.cell_changes(), 0);
    }

    #[test]
    fn iteration_covers_all_objects() {
        let mut g = grid4();
        for i in 0..10u32 {
            g.insert(ObjectId(i), Point::new(0.1 + 0.35 * i as f64, 2.0));
        }
        let mut ids: Vec<u32> = g.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_ids_are_supported() {
        let mut g = grid4();
        g.insert(ObjectId(1000), Point::new(1.0, 1.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(1000)), Some(Point::new(1.0, 1.0)));
        assert_eq!(g.position(ObjectId(999)), None);
    }

    #[test]
    fn suggested_sizes_follow_the_sweep() {
        assert_eq!(Grid::suggest_size(0), 4);
        assert_eq!(Grid::suggest_size(100), 4);
        assert_eq!(Grid::suggest_size(100_000), 65);
        assert_eq!(Grid::suggest_size(10_000_000), 256); // clamped
                                                         // Monotone non-decreasing.
        let mut prev = 0;
        for n in [10, 1_000, 50_000, 200_000, 5_000_000] {
            let s = Grid::suggest_size(n);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn every_mutation_dirties_the_touched_cells() {
        let mut g = grid4();
        assert!(g.dirty().is_empty());
        g.insert(ObjectId(0), Point::new(0.5, 0.5));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        g.drain_dirty();
        assert!(g.dirty().is_empty());
        assert_eq!(g.dirty_epoch(), 1);
        // Within-cell move still dirties its cell.
        g.update(ObjectId(0), Point::new(0.8, 0.2));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        assert_eq!(g.dirty().count(), 1);
        g.drain_dirty();
        // Boundary crossing dirties both endpoints.
        g.update(ObjectId(0), Point::new(2.5, 3.5));
        assert!(g.dirty().contains(g.cell_at(0, 0)));
        assert!(g.dirty().contains(g.cell_at(2, 3)));
        g.drain_dirty();
        g.remove(ObjectId(0));
        assert!(g.dirty().contains(g.cell_at(2, 3)));
        assert_eq!(g.dirty_epoch(), 3);
    }

    #[test]
    fn disk_cells_cover_exactly_the_intersecting_cells() {
        let g = grid4();
        let mut out = CellSet::new(g.num_cells());
        g.add_cells_in_disk(Point::new(0.5, 0.5), 0.4, &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![g.cell_at(0, 0)]);
        out.clear();
        // A disk spanning a corner touches all four neighbours.
        g.add_cells_in_disk(Point::new(1.0, 1.0), 0.1, &mut out);
        assert_eq!(out.count(), 4);
        out.clear();
        // Cross-check against a brute-force scan for several disks.
        for (cx, cy, r) in [(0.0, 0.0, 1.5), (2.2, 3.1, 1.0), (5.0, 5.0, 2.0)] {
            let center = Point::new(cx, cy);
            out.clear();
            g.add_cells_in_disk(center, r, &mut out);
            for c in 0..g.num_cells() {
                let want = g.cell_bounds(c).mindist_sq(center) <= r * r;
                assert_eq!(out.contains(c), want, "disk ({cx},{cy},{r}) cell {c}");
            }
        }
    }

    #[test]
    fn cell_bounds_tile_the_space() {
        let g = Grid::new(Aabb::from_coords(-2.0, 1.0, 6.0, 9.0), 8);
        let total: f64 = (0..g.num_cells()).map(|c| g.cell_bounds(c).area()).sum();
        assert!((total - g.space().area()).abs() < 1e-9);
    }
}
