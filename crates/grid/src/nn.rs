//! Nearest-neighbor search over the grid: the unconstrained (`NN`),
//! constrained (`NN_c`), and bounded (`NN_b`) variants of the paper's
//! Section-6 cost model, plus a k-NN and a range-emptiness test used by
//! the verification phases.
//!
//! All searches use ring expansion ([`crate::visit`]) with the monotone
//! lower bound *"every cell in ring `r` is at least `(r−1)` cell extents
//! away"*, so they terminate as soon as no farther ring can improve the
//! current best.

use igern_geom::{Aabb, Point};

use crate::cellset::CellSet;
use crate::grid::{CellId, Grid};
use crate::object::ObjectId;
use crate::stats::OpCounters;
use crate::visit::{max_ring_radius, ring_cells};

/// A search result: object id, its position, and the squared distance to
/// the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: ObjectId,
    pub pos: Point,
    pub dist_sq: f64,
}

impl Neighbor {
    /// Euclidean distance to the query.
    #[inline]
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Scan one cell, updating `best` with any closer object that passes
/// `accept`.
#[inline]
fn scan_cell<F: FnMut(ObjectId, Point) -> bool>(
    grid: &Grid,
    cell: CellId,
    q: Point,
    accept: &mut F,
    best: &mut Option<Neighbor>,
    ops: &mut OpCounters,
) {
    ops.cells_visited += 1;
    for &id in grid.objects_in(cell) {
        ops.objects_visited += 1;
        let Some(pos) = grid.position(id) else {
            // Bucket/position desync: treat the object as
            // removed rather than killing the search.
            ops.desyncs += 1;
            continue;
        };
        let d = q.dist_sq(pos);
        if best.is_none_or(|b| d < b.dist_sq) && accept(id, pos) {
            *best = Some(Neighbor {
                id,
                pos,
                dist_sq: d,
            });
        }
    }
}

/// Unconstrained nearest neighbor of `q` (the `NN` of §6), optionally
/// excluding one object (e.g. the query object itself, or the candidate
/// being verified).
pub fn nearest(
    grid: &Grid,
    q: Point,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Option<Neighbor> {
    nearest_where(
        grid,
        q,
        |_, _| true,
        |id, _| Some(id) != exclude,
        f64::INFINITY,
        ops,
    )
}

/// Generalized ring-expansion NN search.
///
/// * `cell_pred` — prunes whole cells (constrained search, e.g. CRNN's pie
///   regions or a bounded alive region);
/// * `obj_pred`  — accepts/rejects individual objects (exact region tests,
///   exclusions);
/// * `max_dist`  — bounded search (`NN_b`): objects farther than this are
///   never reported and rings beyond it are never expanded. Pass
///   `f64::INFINITY` for an unbounded search.
pub fn nearest_where<C, O>(
    grid: &Grid,
    q: Point,
    mut cell_pred: C,
    mut obj_pred: O,
    max_dist: f64,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    C: FnMut(CellId, &Aabb) -> bool,
    O: FnMut(ObjectId, Point) -> bool,
{
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let max_dist_sq = if max_dist.is_finite() {
        max_dist * max_dist
    } else {
        f64::INFINITY
    };
    let mut best: Option<Neighbor> = None;
    for r in 0..=max_r {
        // Everything in ring r (and beyond) is at least (r-1)·ext away.
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            let lb_sq = lb * lb;
            if lb_sq > max_dist_sq {
                break;
            }
            if let Some(b) = best {
                if b.dist_sq <= lb_sq {
                    break;
                }
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            let bounds = grid.cell_bounds(cell);
            let md = bounds.mindist_sq(q);
            if md > max_dist_sq {
                continue;
            }
            if let Some(b) = best {
                if md >= b.dist_sq {
                    continue;
                }
            }
            if !cell_pred(cell, &bounds) {
                continue;
            }
            scan_cell(grid, cell, q, &mut obj_pred, &mut best, ops);
        }
    }
    best.filter(|b| b.dist_sq <= max_dist_sq)
}

/// Ring-expansion NN constrained to the cells of `cells` (TPL's probe over
/// the *alive* region).
///
/// Behaves exactly like [`nearest_where`] with a `cells.contains` cell
/// predicate, with two sweep-cost refinements that leave the scanned cell
/// sequence — and therefore the result and every op counter — unchanged:
/// the membership test runs before any cell geometry is computed, and the
/// ring loop stops once all `cells.count()` member cells have been seen,
/// so a probe over a small alive region never sweeps the dead remainder
/// of the grid.
pub fn nearest_in_set<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    mut obj_pred: O,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let total = cells.count();
    let mut seen = 0usize;
    let mut best: Option<Neighbor> = None;
    for r in 0..=max_r {
        if seen == total {
            // Every member cell is behind us; no farther ring matters.
            break;
        }
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if let Some(b) = best {
                if b.dist_sq <= lb * lb {
                    break;
                }
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if !cells.contains(cell) {
                continue;
            }
            seen += 1;
            let bounds = grid.cell_bounds(cell);
            let md = bounds.mindist_sq(q);
            if let Some(b) = best {
                if md >= b.dist_sq {
                    continue;
                }
            }
            scan_cell(grid, cell, q, &mut obj_pred, &mut best, ops);
        }
    }
    best
}

/// Reusable mindist-ordering buffer for [`nearest_in_cells_with`]. One of
/// these lives in each evaluation scratch so the constrained search sorts
/// in place instead of collecting a fresh vector per probe.
#[derive(Debug, Clone, Default)]
pub struct CellOrderScratch {
    order: Vec<(f64, CellId)>,
}

/// Nearest neighbor of `q` among the objects lying in the given cell set
/// (IGERN's constrained search over the *alive cells*).
///
/// Iterates the set directly in mindist order — the alive region is
/// typically a small neighborhood of `q`, so this beats ring expansion
/// over the whole grid. Allocates a fresh ordering buffer; hot paths use
/// [`nearest_in_cells_with`] and a persistent [`CellOrderScratch`].
pub fn nearest_in_cells<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    obj_pred: O,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let mut scratch = CellOrderScratch::default();
    nearest_in_cells_with(grid, q, cells, obj_pred, ops, &mut scratch)
}

/// [`nearest_in_cells`] writing its mindist ordering into caller-provided
/// scratch, so steady-state probes perform no heap allocation.
pub fn nearest_in_cells_with<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    mut obj_pred: O,
    ops: &mut OpCounters,
    scratch: &mut CellOrderScratch,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let order = &mut scratch.order;
    order.clear();
    order.extend(cells.iter().map(|c| (grid.cell_bounds(c).mindist_sq(q), c)));
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut best: Option<Neighbor> = None;
    for &(md, cell) in order.iter() {
        if let Some(b) = best {
            if md >= b.dist_sq {
                break;
            }
        }
        scan_cell(grid, cell, q, &mut obj_pred, &mut best, ops);
    }
    best
}

/// The `k` nearest neighbors of `q`, ascending by distance, optionally
/// excluding one object.
pub fn k_nearest(
    grid: &Grid,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Vec<Neighbor> {
    let mut best = Vec::new();
    k_nearest_into(grid, q, k, exclude, ops, &mut best);
    best
}

/// [`k_nearest`] writing the result into a caller-provided buffer
/// (cleared first), so repeated probes reuse one allocation.
pub fn k_nearest_into(
    grid: &Grid,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
    best: &mut Vec<Neighbor>,
) {
    best.clear();
    if k == 0 {
        return;
    }
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    // Small k: a sorted vector beats a heap.
    best.reserve(k.saturating_add(1).min(grid.len() + 1));
    for r in 0..=max_r {
        if r >= 1 && best.len() == k {
            let lb = (r as f64 - 1.0) * ext;
            if best[best.len() - 1].dist_sq <= lb * lb {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            let md = grid.cell_bounds(cell).mindist_sq(q);
            if best.len() == k && md >= best[best.len() - 1].dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            for &id in grid.objects_in(cell) {
                if Some(id) == exclude {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                let d = q.dist_sq(pos);
                if best.len() < k || d < best[best.len() - 1].dist_sq {
                    let at = best.partition_point(|n| n.dist_sq <= d);
                    best.insert(
                        at,
                        Neighbor {
                            id,
                            pos,
                            dist_sq: d,
                        },
                    );
                    best.truncate(k);
                }
            }
        }
    }
}

/// Whether any object other than those in `exclude` lies strictly closer
/// than `sqrt(dist_sq)` to `center`.
///
/// This is the verification primitive ("the dotted circles indicate the
/// nearest neighbor test for each object in RNNcand", §3.1 Phase II): a
/// candidate `o` is an RNN of `q` iff no other object beats
/// `dist(o, q)`, i.e. iff this returns `false` with
/// `dist_sq = dist²(o, q)` and `exclude = [o]`.
pub fn exists_closer_than(
    grid: &Grid,
    center: Point,
    dist_sq: f64,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> bool {
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(center));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    for r in 0..=max_r {
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if lb * lb >= dist_sq {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if grid.cell_bounds(cell).mindist_sq(center) >= dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            for &id in grid.objects_in(cell) {
                if exclude.contains(&id) {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if center.dist_sq(pos) < dist_sq {
                    return true;
                }
            }
        }
    }
    false
}

/// Count objects (excluding `exclude`) strictly closer than
/// `sqrt(dist_sq)` to `center`, stopping early once the count reaches
/// `cap`.
///
/// This is the k-RNN verification primitive: a candidate `o` is a reverse
/// k-nearest neighbor of `q` iff fewer than `k` other objects lie
/// strictly closer to `o` than `q` does — i.e. iff this returns `< k`
/// with `cap = k`.
pub fn count_closer_than(
    grid: &Grid,
    center: Point,
    dist_sq: f64,
    cap: usize,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> usize {
    if cap == 0 {
        return 0;
    }
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(center));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let mut count = 0;
    for r in 0..=max_r {
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if lb * lb >= dist_sq {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if grid.cell_bounds(cell).mindist_sq(center) >= dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            for &id in grid.objects_in(cell) {
                if exclude.contains(&id) {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if center.dist_sq(pos) < dist_sq {
                    count += 1;
                    if count >= cap {
                        return count;
                    }
                }
            }
        }
    }
    count
}

/// Streams the objects of a grid in increasing distance from a query
/// point (incremental NN, after Hjaltason & Samet).
///
/// Used by the repetitive-Voronoi baseline, which consumes sites in
/// distance order until the cell stops changing. Rings are expanded
/// lazily: an object is only yielded once no unexpanded ring could
/// contain anything closer.
pub struct NearestIter<'g> {
    grid: &'g Grid,
    q: Point,
    exclude: Option<ObjectId>,
    cx: usize,
    cy: usize,
    next_ring: usize,
    max_ring: usize,
    ext: f64,
    /// Discovered-but-unyielded objects, sorted descending by distance so
    /// `pop` yields the nearest.
    pending: Vec<Neighbor>,
}

impl<'g> NearestIter<'g> {
    /// Start streaming neighbors of `q`.
    pub fn new(grid: &'g Grid, q: Point, exclude: Option<ObjectId>) -> Self {
        let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
        NearestIter {
            grid,
            q,
            exclude,
            cx,
            cy,
            next_ring: 0,
            max_ring: max_ring_radius(grid, cx, cy),
            ext: grid.min_cell_extent(),
            pending: Vec::new(),
        }
    }

    /// Lower bound on the distance of anything in ring `r` or beyond.
    fn ring_lower_bound(&self, r: usize) -> f64 {
        if r == 0 {
            0.0
        } else {
            (r as f64 - 1.0) * self.ext
        }
    }

    /// Pull the next neighbor, charging visits to `ops`.
    pub fn next(&mut self, ops: &mut OpCounters) -> Option<Neighbor> {
        loop {
            let frontier_sq = if self.next_ring <= self.max_ring {
                let lb = self.ring_lower_bound(self.next_ring);
                lb * lb
            } else {
                f64::INFINITY
            };
            if let Some(best) = self.pending.last() {
                if best.dist_sq <= frontier_sq {
                    return self.pending.pop();
                }
            }
            if self.next_ring > self.max_ring {
                return self.pending.pop();
            }
            // Expand one more ring into the pending pool.
            for cell in ring_cells(self.grid, self.cx, self.cy, self.next_ring) {
                ops.cells_visited += 1;
                for &id in self.grid.objects_in(cell) {
                    if Some(id) == self.exclude {
                        continue;
                    }
                    ops.objects_visited += 1;
                    let Some(pos) = self.grid.position(id) else {
                        // Bucket/position desync: treat the object as
                        // removed rather than killing the search.
                        ops.desyncs += 1;
                        continue;
                    };
                    self.pending.push(Neighbor {
                        id,
                        pos,
                        dist_sq: self.q.dist_sq(pos),
                    });
                }
            }
            self.pending
                .sort_unstable_by(|a, b| b.dist_sq.total_cmp(&a.dist_sq));
            self.next_ring += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn brute_nearest(g: &Grid, q: Point, exclude: Option<ObjectId>) -> Option<(ObjectId, f64)> {
        g.iter()
            .filter(|&(id, _)| Some(id) != exclude)
            .map(|(id, p)| (id, q.dist_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    #[test]
    fn nearest_on_empty_grid_is_none() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        assert!(nearest(&g, Point::new(5.0, 5.0), None, &mut ops).is_none());
    }

    #[test]
    fn nearest_simple() {
        let g = grid_with(&[(1.0, 1.0), (9.0, 9.0), (4.0, 5.0)]);
        let mut ops = OpCounters::new();
        let n = nearest(&g, Point::new(4.5, 5.0), None, &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2));
        assert!(ops.cells_visited > 0 && ops.objects_visited > 0);
    }

    #[test]
    fn nearest_respects_exclusion() {
        let g = grid_with(&[(5.0, 5.0), (6.0, 5.0)]);
        let mut ops = OpCounters::new();
        let n = nearest(&g, Point::new(5.0, 5.0), Some(ObjectId(0)), &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(1));
    }

    #[test]
    fn nearest_matches_brute_force_on_pseudorandom_data() {
        // Seedless LCG data; cross-checked against a linear scan.
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..300).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let mut ops = OpCounters::new();
        for i in 0..40 {
            let q = Point::new((i as f64 * 0.37) % 10.0, (i as f64 * 0.73) % 10.0);
            let got = nearest(&g, q, None, &mut ops).unwrap();
            let want = brute_nearest(&g, q, None).unwrap();
            assert_eq!(got.dist_sq, want.1, "query {q}");
        }
    }

    #[test]
    fn bounded_search_cuts_off() {
        let g = grid_with(&[(9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let q = Point::new(1.0, 1.0);
        assert!(
            nearest_where(&g, q, |_, _| true, |_, _| true, 2.0, &mut ops).is_none(),
            "object at distance ~11 must not be reported under max_dist 2"
        );
        let hit = nearest_where(&g, q, |_, _| true, |_, _| true, 20.0, &mut ops);
        assert_eq!(hit.unwrap().id, ObjectId(0));
    }

    #[test]
    fn constrained_search_respects_cell_predicate() {
        // Two objects; forbid the cell of the closer one.
        let g = grid_with(&[(4.9, 5.0), (8.0, 5.0)]);
        let q = Point::new(5.1, 5.0);
        let banned = g.cell_of_point(Point::new(4.9, 5.0));
        let mut ops = OpCounters::new();
        let n = nearest_where(
            &g,
            q,
            |c, _| c != banned,
            |_, _| true,
            f64::INFINITY,
            &mut ops,
        )
        .unwrap();
        assert_eq!(n.id, ObjectId(1));
    }

    #[test]
    fn nearest_in_cells_only_sees_the_set() {
        let g = grid_with(&[(1.0, 1.0), (5.0, 5.0), (9.0, 9.0)]);
        let mut alive = CellSet::new(g.num_cells());
        alive.insert(g.cell_of_point(Point::new(9.0, 9.0)));
        let mut ops = OpCounters::new();
        let n = nearest_in_cells(&g, Point::new(0.0, 0.0), &alive, |_, _| true, &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2));
        // Empty set yields nothing.
        let empty = CellSet::new(g.num_cells());
        assert!(
            nearest_in_cells(&g, Point::new(0.0, 0.0), &empty, |_, _| true, &mut ops).is_none()
        );
    }

    #[test]
    fn nearest_in_cells_matches_filtered_brute_force() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..200).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        // Alive set: left half of the grid.
        let mut alive = CellSet::new(g.num_cells());
        for c in 0..g.num_cells() {
            if g.cell_bounds(c).center().x < 5.0 {
                alive.insert(c);
            }
        }
        let q = Point::new(7.0, 3.0);
        let mut ops = OpCounters::new();
        let got = nearest_in_cells(&g, q, &alive, |_, _| true, &mut ops);
        let want = g
            .iter()
            .filter(|&(_, p)| alive.contains(g.cell_of_point(p)))
            .map(|(id, p)| (id, q.dist_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(got.map(|n| n.dist_sq), want.map(|w| w.1));
    }

    #[test]
    fn k_nearest_is_sorted_and_matches_brute_force() {
        let mut state = 123u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..150).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        for k in [1usize, 3, 10, 200] {
            let got = k_nearest(&g, q, k, None, &mut ops);
            assert_eq!(got.len(), k.min(150));
            assert!(got.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
            let mut all: Vec<f64> = g.iter().map(|(_, p)| q.dist_sq(p)).collect();
            all.sort_by(f64::total_cmp);
            for (i, n) in got.iter().enumerate() {
                assert_eq!(n.dist_sq, all[i], "k={k} rank {i}");
            }
        }
        assert!(k_nearest(&g, q, 0, None, &mut ops).is_empty());
    }

    #[test]
    fn exists_closer_than_is_a_strict_test() {
        let g = grid_with(&[(5.0, 5.0), (7.0, 5.0)]);
        let mut ops = OpCounters::new();
        let c = Point::new(6.0, 5.0);
        // Distance to both objects is exactly 1; strict test at 1² fails...
        assert!(!exists_closer_than(&g, c, 1.0, &[], &mut ops));
        // ...and succeeds just above.
        assert!(exists_closer_than(&g, c, 1.0 + 1e-9, &[], &mut ops));
        // Excluding both leaves nothing.
        assert!(!exists_closer_than(
            &g,
            c,
            100.0,
            &[ObjectId(0), ObjectId(1)],
            &mut ops
        ));
    }

    #[test]
    fn nearest_iter_yields_ascending_and_complete() {
        let mut state = 55u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..120).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let q = Point::new(2.5, 7.5);
        let mut ops = OpCounters::new();
        let mut it = NearestIter::new(&g, q, None);
        let mut got = Vec::new();
        while let Some(n) = it.next(&mut ops) {
            got.push(n.dist_sq);
        }
        assert_eq!(got.len(), 120, "iterator must visit every object");
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "must be ascending");
        let mut all: Vec<f64> = g.iter().map(|(_, p)| q.dist_sq(p)).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(got, all);
    }

    #[test]
    fn nearest_iter_respects_exclusion_and_empty_grid() {
        let g = grid_with(&[(5.0, 5.0)]);
        let mut ops = OpCounters::new();
        let mut it = NearestIter::new(&g, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert!(it.next(&mut ops).is_none());
        let empty = grid_with(&[]);
        let mut it2 = NearestIter::new(&empty, Point::new(1.0, 1.0), None);
        assert!(it2.next(&mut ops).is_none());
    }

    #[test]
    fn nearest_iter_prefix_matches_k_nearest() {
        let g = grid_with(&[(1.0, 1.0), (2.0, 2.0), (9.0, 1.0), (5.0, 5.0), (3.0, 8.0)]);
        let q = Point::new(4.0, 4.0);
        let mut ops = OpCounters::new();
        let want = k_nearest(&g, q, 3, None, &mut ops);
        let mut it = NearestIter::new(&g, q, None);
        for w in want {
            let n = it.next(&mut ops).unwrap();
            assert_eq!(n.dist_sq, w.dist_sq);
        }
    }

    #[test]
    fn count_closer_than_is_exact_and_capped() {
        let g = grid_with(&[(5.0, 5.0), (5.5, 5.0), (6.0, 5.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let c = Point::new(5.0, 5.0);
        // Objects strictly within distance 1.2 of c (excluding object 0
        // itself): objects 1 (0.5) and 2 (1.0).
        assert_eq!(
            count_closer_than(&g, c, 1.2 * 1.2, 10, &[ObjectId(0)], &mut ops),
            2
        );
        // The cap stops the scan early.
        assert_eq!(
            count_closer_than(&g, c, 100.0, 1, &[ObjectId(0)], &mut ops),
            1
        );
        // cap = 0 short-circuits.
        assert_eq!(count_closer_than(&g, c, 100.0, 0, &[], &mut ops), 0);
        // Strictness: exactly-at-distance objects are not counted.
        assert_eq!(
            count_closer_than(&g, c, 0.5 * 0.5, 10, &[ObjectId(0)], &mut ops),
            0
        );
    }

    #[test]
    fn verification_semantics() {
        // q at origin-ish; o has q as NN iff nothing else is closer to o.
        let g = grid_with(&[(2.0, 2.0), (2.6, 2.0)]);
        let q = Point::new(1.0, 2.0);
        let mut ops = OpCounters::new();
        // Object 0 at distance 1 from q; object 1 is 0.6 from object 0 —
        // o0 is NOT an RNN of q.
        let o0 = Point::new(2.0, 2.0);
        assert!(exists_closer_than(
            &g,
            o0,
            q.dist_sq(o0),
            &[ObjectId(0)],
            &mut ops
        ));
        // Object 1: dist to q is 1.6, dist to o0 is 0.6 — also not an RNN.
        let o1 = Point::new(2.6, 2.0);
        assert!(exists_closer_than(
            &g,
            o1,
            q.dist_sq(o1),
            &[ObjectId(1)],
            &mut ops
        ));
    }

    #[test]
    fn searches_survive_an_injected_desync() {
        let mut g = grid_with(&[(5.0, 5.0), (4.0, 5.0), (6.0, 5.0), (1.0, 1.0)]);
        // Corrupt object 1: still listed in its cell bucket, but its
        // position slot is gone. Every search treats it as removed.
        assert!(g.debug_force_desync(ObjectId(1)));
        assert!(!g.debug_force_desync(ObjectId(99)));
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let n = nearest(&g, q, Some(ObjectId(0)), &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2), "desynced object must not be returned");
        assert!(ops.desyncs >= 1, "the desync is counted, not fatal");
        let ks = k_nearest(&g, q, 3, Some(ObjectId(0)), &mut ops);
        assert_eq!(ks.len(), 2, "only live objects are reported");
        assert!(!exists_closer_than(&g, q, 0.5, &[ObjectId(0)], &mut ops));
        assert_eq!(
            count_closer_than(&g, q, 100.0, usize::MAX, &[ObjectId(0)], &mut ops),
            2
        );
    }
}
