//! Nearest-neighbor search over the grid: the unconstrained (`NN`),
//! constrained (`NN_c`), and bounded (`NN_b`) variants of the paper's
//! Section-6 cost model, plus a k-NN and a range-emptiness test used by
//! the verification phases.
//!
//! All searches use ring expansion ([`crate::visit`]) with the monotone
//! lower bound *"every cell in ring `r` is at least `(r−1)` cell extents
//! away"*, so they terminate as soon as no farther ring can improve the
//! current best.

use igern_geom::{Aabb, Point};

use crate::cellset::CellSet;
use crate::feed::CellFeed;
use crate::grid::{CellId, Grid};
use crate::object::ObjectId;
use crate::stats::OpCounters;
use crate::visit::{max_ring_radius, ring_cells};

/// A search result: object id, its position, and the squared distance to
/// the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: ObjectId,
    pub pos: Point,
    pub dist_sq: f64,
}

impl Neighbor {
    /// Euclidean distance to the query.
    #[inline]
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Scan one cell, updating `best` with any closer object that passes
/// `accept`.
///
/// When `feed` has the cell primed, the scan replays the feed's cached
/// bucket snapshot — same entries, same order, same counter increments
/// (a dead entry counts one `objects_visited` and one `desyncs`, exactly
/// like a live bucket id whose position slot is missing).
#[inline]
fn scan_cell<F: FnMut(ObjectId, Point) -> bool>(
    grid: &Grid,
    feed: Option<&CellFeed>,
    cell: CellId,
    q: Point,
    accept: &mut F,
    best: &mut Option<Neighbor>,
    ops: &mut OpCounters,
) {
    ops.cells_visited += 1;
    if let Some(entries) = feed.and_then(|f| f.get(cell)) {
        for e in entries {
            ops.objects_visited += 1;
            if !e.live {
                ops.desyncs += 1;
                continue;
            }
            let d = q.dist_sq(e.pos);
            if best.is_none_or(|b| d < b.dist_sq) && accept(e.id, e.pos) {
                *best = Some(Neighbor {
                    id: e.id,
                    pos: e.pos,
                    dist_sq: d,
                });
            }
        }
        return;
    }
    for &id in grid.objects_in(cell) {
        ops.objects_visited += 1;
        let Some(pos) = grid.position(id) else {
            // Bucket/position desync: treat the object as
            // removed rather than killing the search.
            ops.desyncs += 1;
            continue;
        };
        let d = q.dist_sq(pos);
        if best.is_none_or(|b| d < b.dist_sq) && accept(id, pos) {
            *best = Some(Neighbor {
                id,
                pos,
                dist_sq: d,
            });
        }
    }
}

/// Unconstrained nearest neighbor of `q` (the `NN` of §6), optionally
/// excluding one object (e.g. the query object itself, or the candidate
/// being verified).
pub fn nearest(
    grid: &Grid,
    q: Point,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Option<Neighbor> {
    nearest_feed(grid, None, q, exclude, ops)
}

/// [`nearest`] reading primed cells from a shared-scan [`CellFeed`]
/// (unprimed cells fall back to the grid; `feed = None` is exactly
/// [`nearest`]).
pub fn nearest_feed(
    grid: &Grid,
    feed: Option<&CellFeed>,
    q: Point,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Option<Neighbor> {
    nearest_where_feed(
        grid,
        feed,
        q,
        |_, _| true,
        |id, _| Some(id) != exclude,
        f64::INFINITY,
        ops,
    )
}

/// Generalized ring-expansion NN search.
///
/// * `cell_pred` — prunes whole cells (constrained search, e.g. CRNN's pie
///   regions or a bounded alive region);
/// * `obj_pred`  — accepts/rejects individual objects (exact region tests,
///   exclusions);
/// * `max_dist`  — bounded search (`NN_b`): objects farther than this are
///   never reported and rings beyond it are never expanded. Pass
///   `f64::INFINITY` for an unbounded search.
pub fn nearest_where<C, O>(
    grid: &Grid,
    q: Point,
    cell_pred: C,
    obj_pred: O,
    max_dist: f64,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    C: FnMut(CellId, &Aabb) -> bool,
    O: FnMut(ObjectId, Point) -> bool,
{
    nearest_where_feed(grid, None, q, cell_pred, obj_pred, max_dist, ops)
}

/// [`nearest_where`] reading primed cells from a shared-scan
/// [`CellFeed`].
pub fn nearest_where_feed<C, O>(
    grid: &Grid,
    feed: Option<&CellFeed>,
    q: Point,
    mut cell_pred: C,
    mut obj_pred: O,
    max_dist: f64,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    C: FnMut(CellId, &Aabb) -> bool,
    O: FnMut(ObjectId, Point) -> bool,
{
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let max_dist_sq = if max_dist.is_finite() {
        max_dist * max_dist
    } else {
        f64::INFINITY
    };
    let mut best: Option<Neighbor> = None;
    for r in 0..=max_r {
        // Everything in ring r (and beyond) is at least (r-1)·ext away.
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            let lb_sq = lb * lb;
            if lb_sq > max_dist_sq {
                break;
            }
            if let Some(b) = best {
                if b.dist_sq <= lb_sq {
                    break;
                }
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            let bounds = grid.cell_bounds(cell);
            let md = bounds.mindist_sq(q);
            if md > max_dist_sq {
                continue;
            }
            if let Some(b) = best {
                if md >= b.dist_sq {
                    continue;
                }
            }
            if !cell_pred(cell, &bounds) {
                continue;
            }
            scan_cell(grid, feed, cell, q, &mut obj_pred, &mut best, ops);
        }
    }
    best.filter(|b| b.dist_sq <= max_dist_sq)
}

/// Ring-expansion NN constrained to the cells of `cells` (TPL's probe over
/// the *alive* region).
///
/// Behaves exactly like [`nearest_where`] with a `cells.contains` cell
/// predicate, with two sweep-cost refinements that leave the scanned cell
/// sequence — and therefore the result and every op counter — unchanged:
/// the membership test runs before any cell geometry is computed, and the
/// ring loop stops once all `cells.count()` member cells have been seen,
/// so a probe over a small alive region never sweeps the dead remainder
/// of the grid.
pub fn nearest_in_set<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    mut obj_pred: O,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let total = cells.count();
    let mut seen = 0usize;
    let mut best: Option<Neighbor> = None;
    for r in 0..=max_r {
        if seen == total {
            // Every member cell is behind us; no farther ring matters.
            break;
        }
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if let Some(b) = best {
                if b.dist_sq <= lb * lb {
                    break;
                }
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if !cells.contains(cell) {
                continue;
            }
            seen += 1;
            let bounds = grid.cell_bounds(cell);
            let md = bounds.mindist_sq(q);
            if let Some(b) = best {
                if md >= b.dist_sq {
                    continue;
                }
            }
            scan_cell(grid, None, cell, q, &mut obj_pred, &mut best, ops);
        }
    }
    best
}

/// Reusable mindist-ordering buffer for [`nearest_in_cells_with`]. One of
/// these lives in each evaluation scratch so the constrained search sorts
/// in place instead of collecting a fresh vector per probe.
#[derive(Debug, Clone, Default)]
pub struct CellOrderScratch {
    order: Vec<(f64, CellId)>,
}

/// Nearest neighbor of `q` among the objects lying in the given cell set
/// (IGERN's constrained search over the *alive cells*).
///
/// Iterates the set directly in mindist order — the alive region is
/// typically a small neighborhood of `q`, so this beats ring expansion
/// over the whole grid. Allocates a fresh ordering buffer; hot paths use
/// [`nearest_in_cells_with`] and a persistent [`CellOrderScratch`].
pub fn nearest_in_cells<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    obj_pred: O,
    ops: &mut OpCounters,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let mut scratch = CellOrderScratch::default();
    nearest_in_cells_with(grid, q, cells, obj_pred, ops, &mut scratch)
}

/// [`nearest_in_cells`] writing its mindist ordering into caller-provided
/// scratch, so steady-state probes perform no heap allocation.
pub fn nearest_in_cells_with<O>(
    grid: &Grid,
    q: Point,
    cells: &CellSet,
    obj_pred: O,
    ops: &mut OpCounters,
    scratch: &mut CellOrderScratch,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    nearest_in_cells_with_feed(grid, None, q, cells, obj_pred, ops, scratch)
}

/// [`nearest_in_cells_with`] reading primed cells from a shared-scan
/// [`CellFeed`].
pub fn nearest_in_cells_with_feed<O>(
    grid: &Grid,
    feed: Option<&CellFeed>,
    q: Point,
    cells: &CellSet,
    mut obj_pred: O,
    ops: &mut OpCounters,
    scratch: &mut CellOrderScratch,
) -> Option<Neighbor>
where
    O: FnMut(ObjectId, Point) -> bool,
{
    let order = &mut scratch.order;
    order.clear();
    order.extend(cells.iter().map(|c| (grid.cell_bounds(c).mindist_sq(q), c)));
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut best: Option<Neighbor> = None;
    for &(md, cell) in order.iter() {
        if let Some(b) = best {
            if md >= b.dist_sq {
                break;
            }
        }
        scan_cell(grid, feed, cell, q, &mut obj_pred, &mut best, ops);
    }
    best
}

/// Widest candidate set the branch-free fast path of
/// [`nearest_undominated_in_cells_feed`] is specialized for. IGERN's
/// cleaned candidate set is ≤ 6 (six-region lemma); tighten can briefly
/// overshoot, in which case the kernel falls back to the scalar replay.
const MAX_FAST_SITES: usize = 6;
/// Fixed exclusion width of the fast path (`q` plus [`MAX_FAST_SITES`]
/// candidates, padded by repeating the first excluded id).
const MAX_FAST_EXCLUDE: usize = 7;

/// The object predicate of IGERN's Phase-I probe: reject excluded ids
/// (the query object and the current candidates), and reject *dominated*
/// objects — some site strictly closer to the object than `q` is. An
/// empty `sites` is the cell-granularity variant (exclusion only).
#[inline]
fn undominated(id: ObjectId, pos: Point, q: Point, sites: &[Point], exclude: &[ObjectId]) -> bool {
    if exclude.contains(&id) {
        return false;
    }
    let d_q = pos.dist_sq(q);
    !sites.iter().any(|&s| pos.dist_sq(s) < d_q)
}

/// Fold one primed cell's columns to the minimum accepted distance
/// (`f64::INFINITY` when nothing passes), specialized per site count so
/// the domination loop fully unrolls and the whole scan stays
/// branch-free — rejected and dead entries fold to infinity instead of
/// branching, which lets the compiler keep the loop in SIMD registers.
///
/// Every lane is a plain IEEE subtract/multiply/add/compare (no fused
/// multiply-add, no reassociation), so the fold computes bit-identical
/// values at any vector width — which is what lets the AVX2 version
/// below share this body.
#[inline(always)]
fn column_min_pass_body<const C: usize>(
    xs: &[f64],
    ys: &[f64],
    ids: &[u32],
    q: Point,
    sites: &[Point],
    excl: &[u32; MAX_FAST_EXCLUDE],
) -> f64 {
    let sx: [f64; C] = std::array::from_fn(|j| sites[j].x);
    let sy: [f64; C] = std::array::from_fn(|j| sites[j].y);
    let mut m = f64::INFINITY;
    for ((&x, &y), &id) in xs.iter().zip(ys).zip(ids) {
        let dx = x - q.x;
        let dy = y - q.y;
        let d = dx * dx + dy * dy;
        let mut out = false;
        for j in 0..C {
            let ex = x - sx[j];
            let ey = y - sy[j];
            out |= ex * ex + ey * ey < d;
        }
        for &e in excl {
            out |= id == e;
        }
        let v = if out { f64::INFINITY } else { d };
        m = if v < m { v } else { m };
    }
    m
}

/// [`column_min_pass_body`] compiled for AVX2 — four f64 lanes per
/// instruction instead of the two the baseline x86-64 target allows.
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn column_min_pass_avx2<const C: usize>(
    xs: &[f64],
    ys: &[f64],
    ids: &[u32],
    q: Point,
    sites: &[Point],
    excl: &[u32; MAX_FAST_EXCLUDE],
) -> f64 {
    column_min_pass_body::<C>(xs, ys, ids, q, sites, excl)
}

/// Width-dispatched [`column_min_pass_body`]: picks the widest fold the
/// CPU supports at runtime (the detection result is cached by `std`).
#[inline]
fn column_min_pass<const C: usize>(
    xs: &[f64],
    ys: &[f64],
    ids: &[u32],
    q: Point,
    sites: &[Point],
    excl: &[u32; MAX_FAST_EXCLUDE],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked on the line above.
        return unsafe { column_min_pass_avx2::<C>(xs, ys, ids, q, sites, excl) };
    }
    column_min_pass_body::<C>(xs, ys, ids, q, sites, excl)
}

/// The fast-path scan of one primed cell: the index and distance of the
/// closest accepted entry, when it beats `bound`.
///
/// Pass 1 is the branch-free column fold; pass 2 re-derives which entry
/// produced the minimum, and only runs when the cell actually improves
/// the running best — which steady-state ticks almost never do. Both
/// passes evaluate the same IEEE expressions as the scalar replay
/// ((a−b)² ≡ (b−a)²), so results are bit-identical.
#[inline]
fn column_min(
    scan: &crate::feed::FeedScan<'_>,
    q: Point,
    sites: &[Point],
    exclude: &[ObjectId],
    excl: &[u32; MAX_FAST_EXCLUDE],
    bound: f64,
) -> Option<(usize, f64)> {
    let m = match sites.len() {
        0 => column_min_pass::<0>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        1 => column_min_pass::<1>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        2 => column_min_pass::<2>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        3 => column_min_pass::<3>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        4 => column_min_pass::<4>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        5 => column_min_pass::<5>(scan.xs, scan.ys, scan.ids, q, sites, excl),
        _ => column_min_pass::<MAX_FAST_SITES>(scan.xs, scan.ys, scan.ids, q, sites, excl),
    };
    if m >= bound {
        return None;
    }
    for (i, e) in scan.entries.iter().enumerate() {
        if !e.live {
            continue;
        }
        let d = q.dist_sq(e.pos);
        if d == m && undominated(e.id, e.pos, q, sites, exclude) {
            return Some((i, d));
        }
    }
    unreachable!("column minimum must correspond to an accepted entry")
}

/// Nearest object of `cells` that passes the `undominated` predicate —
/// IGERN's Phase-I probe ("the nearest non-candidate object inside the
/// alive region"), with exact-granularity domination pruning when
/// `sites` holds the candidate positions and cell granularity when it is
/// empty.
///
/// Exactly equivalent to [`nearest_in_cells_with_feed`] with the
/// corresponding object predicate — same result, same first-in-bucket-
/// order tie-break, same op counters. The difference is mechanical:
/// primed cells are scanned through the feed's position columns with the
/// predicate inlined into a branch-free fold and the per-cell counter
/// effect applied in bulk (a full-cell scan visits every entry and
/// counts every dead one regardless of outcome), which is what makes a
/// shared scan cheaper than a per-query replay rather than merely
/// gather-free. Unprimed cells and oversized candidate sets replay the
/// canonical scalar loop.
#[allow(clippy::too_many_arguments)]
pub fn nearest_undominated_in_cells_feed(
    grid: &Grid,
    feed: Option<&CellFeed>,
    q: Point,
    cells: &CellSet,
    sites: &[Point],
    exclude: &[ObjectId],
    ops: &mut OpCounters,
    scratch: &mut CellOrderScratch,
) -> Option<Neighbor> {
    // The fast path needs a fixed-width exclusion array; padding repeats
    // the first excluded id, so an empty exclusion (no safe pad value)
    // takes the scalar replay.
    let fast =
        !exclude.is_empty() && exclude.len() <= MAX_FAST_EXCLUDE && sites.len() <= MAX_FAST_SITES;
    let excl: [u32; MAX_FAST_EXCLUDE] =
        std::array::from_fn(|i| exclude.get(i).or(exclude.first()).map_or(0, |e| e.0));
    let order = &mut scratch.order;
    order.clear();
    order.extend(cells.iter().map(|c| (grid.cell_bounds(c).mindist_sq(q), c)));
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut best: Option<Neighbor> = None;
    for &(md, cell) in order.iter() {
        if let Some(b) = best {
            if md >= b.dist_sq {
                break;
            }
        }
        ops.cells_visited += 1;
        match feed.and_then(|f| f.get_scan(cell)) {
            Some(scan) if fast => {
                ops.objects_visited += scan.entries.len() as u64;
                ops.desyncs += scan.dead as u64;
                let bound = best.map_or(f64::INFINITY, |b| b.dist_sq);
                if let Some((i, d)) = column_min(&scan, q, sites, exclude, &excl, bound) {
                    let e = scan.entries[i];
                    best = Some(Neighbor {
                        id: e.id,
                        pos: e.pos,
                        dist_sq: d,
                    });
                }
            }
            Some(scan) => {
                for e in scan.entries {
                    ops.objects_visited += 1;
                    if !e.live {
                        ops.desyncs += 1;
                        continue;
                    }
                    let d = q.dist_sq(e.pos);
                    if best.is_none_or(|b| d < b.dist_sq)
                        && undominated(e.id, e.pos, q, sites, exclude)
                    {
                        best = Some(Neighbor {
                            id: e.id,
                            pos: e.pos,
                            dist_sq: d,
                        });
                    }
                }
            }
            None => {
                for &id in grid.objects_in(cell) {
                    ops.objects_visited += 1;
                    let Some(pos) = grid.position(id) else {
                        // Bucket/position desync: treat the object as
                        // removed rather than killing the search.
                        ops.desyncs += 1;
                        continue;
                    };
                    let d = q.dist_sq(pos);
                    if best.is_none_or(|b| d < b.dist_sq) && undominated(id, pos, q, sites, exclude)
                    {
                        best = Some(Neighbor {
                            id,
                            pos,
                            dist_sq: d,
                        });
                    }
                }
            }
        }
    }
    best
}

/// The `k` nearest neighbors of `q`, ascending by distance, optionally
/// excluding one object.
pub fn k_nearest(
    grid: &Grid,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
) -> Vec<Neighbor> {
    let mut best = Vec::new();
    k_nearest_into(grid, q, k, exclude, ops, &mut best);
    best
}

/// [`k_nearest`] writing the result into a caller-provided buffer
/// (cleared first), so repeated probes reuse one allocation.
pub fn k_nearest_into(
    grid: &Grid,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
    best: &mut Vec<Neighbor>,
) {
    k_nearest_into_feed(grid, None, q, k, exclude, ops, best);
}

/// [`k_nearest_into`] reading primed cells from a shared-scan
/// [`CellFeed`].
pub fn k_nearest_into_feed(
    grid: &Grid,
    feed: Option<&CellFeed>,
    q: Point,
    k: usize,
    exclude: Option<ObjectId>,
    ops: &mut OpCounters,
    best: &mut Vec<Neighbor>,
) {
    best.clear();
    if k == 0 {
        return;
    }
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    // Small k: a sorted vector beats a heap.
    best.reserve(k.saturating_add(1).min(grid.len() + 1));
    // Mirrors the scan below; the exclusion check deliberately runs
    // before `objects_visited` on both paths.
    let consider = |id: ObjectId, pos: Point, best: &mut Vec<Neighbor>| {
        let d = q.dist_sq(pos);
        if best.len() < k || d < best[best.len() - 1].dist_sq {
            let at = best.partition_point(|n| n.dist_sq <= d);
            best.insert(
                at,
                Neighbor {
                    id,
                    pos,
                    dist_sq: d,
                },
            );
            best.truncate(k);
        }
    };
    for r in 0..=max_r {
        if r >= 1 && best.len() == k {
            let lb = (r as f64 - 1.0) * ext;
            if best[best.len() - 1].dist_sq <= lb * lb {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            let md = grid.cell_bounds(cell).mindist_sq(q);
            if best.len() == k && md >= best[best.len() - 1].dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            if let Some(entries) = feed.and_then(|f| f.get(cell)) {
                for e in entries {
                    if Some(e.id) == exclude {
                        continue;
                    }
                    ops.objects_visited += 1;
                    if !e.live {
                        ops.desyncs += 1;
                        continue;
                    }
                    consider(e.id, e.pos, best);
                }
                continue;
            }
            for &id in grid.objects_in(cell) {
                if Some(id) == exclude {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                consider(id, pos, best);
            }
        }
    }
}

/// Whether any object other than those in `exclude` lies strictly closer
/// than `sqrt(dist_sq)` to `center`.
///
/// This is the verification primitive ("the dotted circles indicate the
/// nearest neighbor test for each object in RNNcand", §3.1 Phase II): a
/// candidate `o` is an RNN of `q` iff no other object beats
/// `dist(o, q)`, i.e. iff this returns `false` with
/// `dist_sq = dist²(o, q)` and `exclude = [o]`.
pub fn exists_closer_than(
    grid: &Grid,
    center: Point,
    dist_sq: f64,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> bool {
    exists_closer_than_feed(grid, None, center, dist_sq, exclude, ops)
}

/// [`exists_closer_than`] reading primed cells from a shared-scan
/// [`CellFeed`].
pub fn exists_closer_than_feed(
    grid: &Grid,
    feed: Option<&CellFeed>,
    center: Point,
    dist_sq: f64,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> bool {
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(center));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    for r in 0..=max_r {
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if lb * lb >= dist_sq {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if grid.cell_bounds(cell).mindist_sq(center) >= dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            if let Some(entries) = feed.and_then(|f| f.get(cell)) {
                for e in entries {
                    if exclude.contains(&e.id) {
                        continue;
                    }
                    ops.objects_visited += 1;
                    if !e.live {
                        ops.desyncs += 1;
                        continue;
                    }
                    if center.dist_sq(e.pos) < dist_sq {
                        return true;
                    }
                }
                continue;
            }
            for &id in grid.objects_in(cell) {
                if exclude.contains(&id) {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if center.dist_sq(pos) < dist_sq {
                    return true;
                }
            }
        }
    }
    false
}

/// Count objects (excluding `exclude`) strictly closer than
/// `sqrt(dist_sq)` to `center`, stopping early once the count reaches
/// `cap`.
///
/// This is the k-RNN verification primitive: a candidate `o` is a reverse
/// k-nearest neighbor of `q` iff fewer than `k` other objects lie
/// strictly closer to `o` than `q` does — i.e. iff this returns `< k`
/// with `cap = k`.
pub fn count_closer_than(
    grid: &Grid,
    center: Point,
    dist_sq: f64,
    cap: usize,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> usize {
    count_closer_than_feed(grid, None, center, dist_sq, cap, exclude, ops)
}

/// [`count_closer_than`] reading primed cells from a shared-scan
/// [`CellFeed`].
pub fn count_closer_than_feed(
    grid: &Grid,
    feed: Option<&CellFeed>,
    center: Point,
    dist_sq: f64,
    cap: usize,
    exclude: &[ObjectId],
    ops: &mut OpCounters,
) -> usize {
    if cap == 0 {
        return 0;
    }
    let (cx, cy) = grid.cell_coords(grid.cell_of_point(center));
    let max_r = max_ring_radius(grid, cx, cy);
    let ext = grid.min_cell_extent();
    let mut count = 0;
    for r in 0..=max_r {
        if r >= 1 {
            let lb = (r as f64 - 1.0) * ext;
            if lb * lb >= dist_sq {
                break;
            }
        }
        for cell in ring_cells(grid, cx, cy, r) {
            if grid.cell_bounds(cell).mindist_sq(center) >= dist_sq {
                continue;
            }
            ops.cells_visited += 1;
            if let Some(entries) = feed.and_then(|f| f.get(cell)) {
                for e in entries {
                    if exclude.contains(&e.id) {
                        continue;
                    }
                    ops.objects_visited += 1;
                    if !e.live {
                        ops.desyncs += 1;
                        continue;
                    }
                    if center.dist_sq(e.pos) < dist_sq {
                        count += 1;
                        if count >= cap {
                            return count;
                        }
                    }
                }
                continue;
            }
            for &id in grid.objects_in(cell) {
                if exclude.contains(&id) {
                    continue;
                }
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if center.dist_sq(pos) < dist_sq {
                    count += 1;
                    if count >= cap {
                        return count;
                    }
                }
            }
        }
    }
    count
}

/// Streams the objects of a grid in increasing distance from a query
/// point (incremental NN, after Hjaltason & Samet).
///
/// Used by the repetitive-Voronoi baseline, which consumes sites in
/// distance order until the cell stops changing. Rings are expanded
/// lazily: an object is only yielded once no unexpanded ring could
/// contain anything closer.
pub struct NearestIter<'g> {
    grid: &'g Grid,
    q: Point,
    exclude: Option<ObjectId>,
    cx: usize,
    cy: usize,
    next_ring: usize,
    max_ring: usize,
    ext: f64,
    /// Discovered-but-unyielded objects, sorted descending by distance so
    /// `pop` yields the nearest.
    pending: Vec<Neighbor>,
}

impl<'g> NearestIter<'g> {
    /// Start streaming neighbors of `q`.
    pub fn new(grid: &'g Grid, q: Point, exclude: Option<ObjectId>) -> Self {
        let (cx, cy) = grid.cell_coords(grid.cell_of_point(q));
        NearestIter {
            grid,
            q,
            exclude,
            cx,
            cy,
            next_ring: 0,
            max_ring: max_ring_radius(grid, cx, cy),
            ext: grid.min_cell_extent(),
            pending: Vec::new(),
        }
    }

    /// Lower bound on the distance of anything in ring `r` or beyond.
    fn ring_lower_bound(&self, r: usize) -> f64 {
        if r == 0 {
            0.0
        } else {
            (r as f64 - 1.0) * self.ext
        }
    }

    /// Pull the next neighbor, charging visits to `ops`.
    pub fn next(&mut self, ops: &mut OpCounters) -> Option<Neighbor> {
        loop {
            let frontier_sq = if self.next_ring <= self.max_ring {
                let lb = self.ring_lower_bound(self.next_ring);
                lb * lb
            } else {
                f64::INFINITY
            };
            if let Some(best) = self.pending.last() {
                if best.dist_sq <= frontier_sq {
                    return self.pending.pop();
                }
            }
            if self.next_ring > self.max_ring {
                return self.pending.pop();
            }
            // Expand one more ring into the pending pool.
            for cell in ring_cells(self.grid, self.cx, self.cy, self.next_ring) {
                ops.cells_visited += 1;
                for &id in self.grid.objects_in(cell) {
                    if Some(id) == self.exclude {
                        continue;
                    }
                    ops.objects_visited += 1;
                    let Some(pos) = self.grid.position(id) else {
                        // Bucket/position desync: treat the object as
                        // removed rather than killing the search.
                        ops.desyncs += 1;
                        continue;
                    };
                    self.pending.push(Neighbor {
                        id,
                        pos,
                        dist_sq: self.q.dist_sq(pos),
                    });
                }
            }
            self.pending
                .sort_unstable_by(|a, b| b.dist_sq.total_cmp(&a.dist_sq));
            self.next_ring += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn brute_nearest(g: &Grid, q: Point, exclude: Option<ObjectId>) -> Option<(ObjectId, f64)> {
        g.iter()
            .filter(|&(id, _)| Some(id) != exclude)
            .map(|(id, p)| (id, q.dist_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    #[test]
    fn nearest_on_empty_grid_is_none() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        assert!(nearest(&g, Point::new(5.0, 5.0), None, &mut ops).is_none());
    }

    #[test]
    fn nearest_simple() {
        let g = grid_with(&[(1.0, 1.0), (9.0, 9.0), (4.0, 5.0)]);
        let mut ops = OpCounters::new();
        let n = nearest(&g, Point::new(4.5, 5.0), None, &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2));
        assert!(ops.cells_visited > 0 && ops.objects_visited > 0);
    }

    #[test]
    fn nearest_respects_exclusion() {
        let g = grid_with(&[(5.0, 5.0), (6.0, 5.0)]);
        let mut ops = OpCounters::new();
        let n = nearest(&g, Point::new(5.0, 5.0), Some(ObjectId(0)), &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(1));
    }

    #[test]
    fn nearest_matches_brute_force_on_pseudorandom_data() {
        // Seedless LCG data; cross-checked against a linear scan.
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..300).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let mut ops = OpCounters::new();
        for i in 0..40 {
            let q = Point::new((i as f64 * 0.37) % 10.0, (i as f64 * 0.73) % 10.0);
            let got = nearest(&g, q, None, &mut ops).unwrap();
            let want = brute_nearest(&g, q, None).unwrap();
            assert_eq!(got.dist_sq, want.1, "query {q}");
        }
    }

    #[test]
    fn bounded_search_cuts_off() {
        let g = grid_with(&[(9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let q = Point::new(1.0, 1.0);
        assert!(
            nearest_where(&g, q, |_, _| true, |_, _| true, 2.0, &mut ops).is_none(),
            "object at distance ~11 must not be reported under max_dist 2"
        );
        let hit = nearest_where(&g, q, |_, _| true, |_, _| true, 20.0, &mut ops);
        assert_eq!(hit.unwrap().id, ObjectId(0));
    }

    #[test]
    fn constrained_search_respects_cell_predicate() {
        // Two objects; forbid the cell of the closer one.
        let g = grid_with(&[(4.9, 5.0), (8.0, 5.0)]);
        let q = Point::new(5.1, 5.0);
        let banned = g.cell_of_point(Point::new(4.9, 5.0));
        let mut ops = OpCounters::new();
        let n = nearest_where(
            &g,
            q,
            |c, _| c != banned,
            |_, _| true,
            f64::INFINITY,
            &mut ops,
        )
        .unwrap();
        assert_eq!(n.id, ObjectId(1));
    }

    #[test]
    fn nearest_in_cells_only_sees_the_set() {
        let g = grid_with(&[(1.0, 1.0), (5.0, 5.0), (9.0, 9.0)]);
        let mut alive = CellSet::new(g.num_cells());
        alive.insert(g.cell_of_point(Point::new(9.0, 9.0)));
        let mut ops = OpCounters::new();
        let n = nearest_in_cells(&g, Point::new(0.0, 0.0), &alive, |_, _| true, &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2));
        // Empty set yields nothing.
        let empty = CellSet::new(g.num_cells());
        assert!(
            nearest_in_cells(&g, Point::new(0.0, 0.0), &empty, |_, _| true, &mut ops).is_none()
        );
    }

    #[test]
    fn nearest_in_cells_matches_filtered_brute_force() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..200).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        // Alive set: left half of the grid.
        let mut alive = CellSet::new(g.num_cells());
        for c in 0..g.num_cells() {
            if g.cell_bounds(c).center().x < 5.0 {
                alive.insert(c);
            }
        }
        let q = Point::new(7.0, 3.0);
        let mut ops = OpCounters::new();
        let got = nearest_in_cells(&g, q, &alive, |_, _| true, &mut ops);
        let want = g
            .iter()
            .filter(|&(_, p)| alive.contains(g.cell_of_point(p)))
            .map(|(id, p)| (id, q.dist_sq(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(got.map(|n| n.dist_sq), want.map(|w| w.1));
    }

    #[test]
    fn k_nearest_is_sorted_and_matches_brute_force() {
        let mut state = 123u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..150).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        for k in [1usize, 3, 10, 200] {
            let got = k_nearest(&g, q, k, None, &mut ops);
            assert_eq!(got.len(), k.min(150));
            assert!(got.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
            let mut all: Vec<f64> = g.iter().map(|(_, p)| q.dist_sq(p)).collect();
            all.sort_by(f64::total_cmp);
            for (i, n) in got.iter().enumerate() {
                assert_eq!(n.dist_sq, all[i], "k={k} rank {i}");
            }
        }
        assert!(k_nearest(&g, q, 0, None, &mut ops).is_empty());
    }

    #[test]
    fn exists_closer_than_is_a_strict_test() {
        let g = grid_with(&[(5.0, 5.0), (7.0, 5.0)]);
        let mut ops = OpCounters::new();
        let c = Point::new(6.0, 5.0);
        // Distance to both objects is exactly 1; strict test at 1² fails...
        assert!(!exists_closer_than(&g, c, 1.0, &[], &mut ops));
        // ...and succeeds just above.
        assert!(exists_closer_than(&g, c, 1.0 + 1e-9, &[], &mut ops));
        // Excluding both leaves nothing.
        assert!(!exists_closer_than(
            &g,
            c,
            100.0,
            &[ObjectId(0), ObjectId(1)],
            &mut ops
        ));
    }

    #[test]
    fn nearest_iter_yields_ascending_and_complete() {
        let mut state = 55u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..120).map(|_| (rnd(), rnd())).collect();
        let g = grid_with(&pts);
        let q = Point::new(2.5, 7.5);
        let mut ops = OpCounters::new();
        let mut it = NearestIter::new(&g, q, None);
        let mut got = Vec::new();
        while let Some(n) = it.next(&mut ops) {
            got.push(n.dist_sq);
        }
        assert_eq!(got.len(), 120, "iterator must visit every object");
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "must be ascending");
        let mut all: Vec<f64> = g.iter().map(|(_, p)| q.dist_sq(p)).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(got, all);
    }

    #[test]
    fn nearest_iter_respects_exclusion_and_empty_grid() {
        let g = grid_with(&[(5.0, 5.0)]);
        let mut ops = OpCounters::new();
        let mut it = NearestIter::new(&g, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert!(it.next(&mut ops).is_none());
        let empty = grid_with(&[]);
        let mut it2 = NearestIter::new(&empty, Point::new(1.0, 1.0), None);
        assert!(it2.next(&mut ops).is_none());
    }

    #[test]
    fn nearest_iter_prefix_matches_k_nearest() {
        let g = grid_with(&[(1.0, 1.0), (2.0, 2.0), (9.0, 1.0), (5.0, 5.0), (3.0, 8.0)]);
        let q = Point::new(4.0, 4.0);
        let mut ops = OpCounters::new();
        let want = k_nearest(&g, q, 3, None, &mut ops);
        let mut it = NearestIter::new(&g, q, None);
        for w in want {
            let n = it.next(&mut ops).unwrap();
            assert_eq!(n.dist_sq, w.dist_sq);
        }
    }

    #[test]
    fn count_closer_than_is_exact_and_capped() {
        let g = grid_with(&[(5.0, 5.0), (5.5, 5.0), (6.0, 5.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let c = Point::new(5.0, 5.0);
        // Objects strictly within distance 1.2 of c (excluding object 0
        // itself): objects 1 (0.5) and 2 (1.0).
        assert_eq!(
            count_closer_than(&g, c, 1.2 * 1.2, 10, &[ObjectId(0)], &mut ops),
            2
        );
        // The cap stops the scan early.
        assert_eq!(
            count_closer_than(&g, c, 100.0, 1, &[ObjectId(0)], &mut ops),
            1
        );
        // cap = 0 short-circuits.
        assert_eq!(count_closer_than(&g, c, 100.0, 0, &[], &mut ops), 0);
        // Strictness: exactly-at-distance objects are not counted.
        assert_eq!(
            count_closer_than(&g, c, 0.5 * 0.5, 10, &[ObjectId(0)], &mut ops),
            0
        );
    }

    #[test]
    fn verification_semantics() {
        // q at origin-ish; o has q as NN iff nothing else is closer to o.
        let g = grid_with(&[(2.0, 2.0), (2.6, 2.0)]);
        let q = Point::new(1.0, 2.0);
        let mut ops = OpCounters::new();
        // Object 0 at distance 1 from q; object 1 is 0.6 from object 0 —
        // o0 is NOT an RNN of q.
        let o0 = Point::new(2.0, 2.0);
        assert!(exists_closer_than(
            &g,
            o0,
            q.dist_sq(o0),
            &[ObjectId(0)],
            &mut ops
        ));
        // Object 1: dist to q is 1.6, dist to o0 is 0.6 — also not an RNN.
        let o1 = Point::new(2.6, 2.0);
        assert!(exists_closer_than(
            &g,
            o1,
            q.dist_sq(o1),
            &[ObjectId(1)],
            &mut ops
        ));
    }

    #[test]
    fn feed_backed_kernels_match_direct_scans_bit_for_bit() {
        let mut state = 31u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..250).map(|_| (rnd(), rnd())).collect();
        let mut g = grid_with(&pts);
        // Desyncs must replay identically through the feed.
        assert!(g.debug_force_desync(ObjectId(17)));
        assert!(g.debug_force_desync(ObjectId(101)));
        let mut feed = CellFeed::new();
        feed.begin(g.num_cells());
        for c in 0..g.num_cells() {
            feed.prime(&g, c);
        }
        let mut alive = CellSet::new(g.num_cells());
        for c in 0..g.num_cells() {
            if c % 3 != 0 {
                alive.insert(c);
            }
        }
        let mut scratch = CellOrderScratch::default();
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        let mut desyncs_seen = 0;
        for i in 0..25 {
            let q = Point::new((i as f64 * 0.41) % 10.0, (i as f64 * 0.83) % 10.0);
            let excl = ObjectId(i as u32 * 7);
            let mut plain = OpCounters::new();
            let mut fed = OpCounters::new();

            let a = nearest(&g, q, Some(excl), &mut plain);
            let b = nearest_feed(&g, Some(&feed), q, Some(excl), &mut fed);
            assert_eq!(a, b, "nearest, query {i}");

            let a = nearest_in_cells_with(&g, q, &alive, |_, _| true, &mut plain, &mut scratch);
            let b = nearest_in_cells_with_feed(
                &g,
                Some(&feed),
                q,
                &alive,
                |_, _| true,
                &mut fed,
                &mut scratch,
            );
            assert_eq!(a, b, "nearest_in_cells, query {i}");

            k_nearest_into(&g, q, 4, Some(excl), &mut plain, &mut buf_a);
            k_nearest_into_feed(&g, Some(&feed), q, 4, Some(excl), &mut fed, &mut buf_b);
            assert_eq!(buf_a, buf_b, "k_nearest, query {i}");

            let r = 1.5 * 1.5;
            assert_eq!(
                exists_closer_than(&g, q, r, &[excl], &mut plain),
                exists_closer_than_feed(&g, Some(&feed), q, r, &[excl], &mut fed),
                "exists_closer_than, query {i}"
            );
            assert_eq!(
                count_closer_than(&g, q, r, 3, &[excl], &mut plain),
                count_closer_than_feed(&g, Some(&feed), q, r, 3, &[excl], &mut fed),
                "count_closer_than, query {i}"
            );

            assert_eq!(plain, fed, "op counters must be bit-identical, query {i}");
            desyncs_seen += plain.desyncs;
        }
        assert!(desyncs_seen > 0, "desyncs flow through both paths");
    }

    #[test]
    fn undominated_kernel_matches_predicate_kernel_bit_for_bit() {
        let mut state = 77u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let pts: Vec<(f64, f64)> = (0..260).map(|_| (rnd(), rnd())).collect();
        let mut g = grid_with(&pts);
        assert!(g.debug_force_desync(ObjectId(23)));
        assert!(g.debug_force_desync(ObjectId(200)));
        let mut feed = CellFeed::new();
        feed.begin(g.num_cells());
        for c in 0..g.num_cells() {
            // Prime most cells; the rest exercise the grid fallback.
            if c % 5 != 0 {
                feed.prime(&g, c);
            }
        }
        let mut alive = CellSet::new(g.num_cells());
        for c in 0..g.num_cells() {
            if c % 4 != 0 {
                alive.insert(c);
            }
        }
        let mut scratch = CellOrderScratch::default();
        // Site counts 0..8 cover the cell-granularity case, every
        // specialized width, and the >MAX_FAST_SITES fallback.
        for n_sites in 0..8usize {
            for i in 0..20 {
                let q = Point::new(rnd(), rnd());
                let sites: Vec<Point> = (0..n_sites).map(|_| Point::new(rnd(), rnd())).collect();
                let exclude: Vec<ObjectId> = (0..1 + i % 7)
                    .map(|j| ObjectId(((i * 31 + j * 17) % 260) as u32))
                    .collect();
                for f in [None, Some(&feed)] {
                    let mut want_ops = OpCounters::new();
                    let want = nearest_in_cells_with_feed(
                        &g,
                        f,
                        q,
                        &alive,
                        |id, pos| {
                            if exclude.contains(&id) {
                                return false;
                            }
                            let d_q = pos.dist_sq(q);
                            !sites.iter().any(|&s| pos.dist_sq(s) < d_q)
                        },
                        &mut want_ops,
                        &mut scratch,
                    );
                    let mut got_ops = OpCounters::new();
                    let got = nearest_undominated_in_cells_feed(
                        &g,
                        f,
                        q,
                        &alive,
                        &sites,
                        &exclude,
                        &mut got_ops,
                        &mut scratch,
                    );
                    assert_eq!(want, got, "sites {n_sites} query {i} feed {}", f.is_some());
                    assert_eq!(
                        want_ops, got_ops,
                        "op counters diverged: sites {n_sites} query {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn searches_survive_an_injected_desync() {
        let mut g = grid_with(&[(5.0, 5.0), (4.0, 5.0), (6.0, 5.0), (1.0, 1.0)]);
        // Corrupt object 1: still listed in its cell bucket, but its
        // position slot is gone. Every search treats it as removed.
        assert!(g.debug_force_desync(ObjectId(1)));
        assert!(!g.debug_force_desync(ObjectId(99)));
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let n = nearest(&g, q, Some(ObjectId(0)), &mut ops).unwrap();
        assert_eq!(n.id, ObjectId(2), "desynced object must not be returned");
        assert!(ops.desyncs >= 1, "the desync is counted, not fatal");
        let ks = k_nearest(&g, q, 3, Some(ObjectId(0)), &mut ops);
        assert_eq!(ks.len(), 2, "only live objects are reported");
        assert!(!exists_closer_than(&g, q, 0.5, &[ObjectId(0)], &mut ops));
        assert_eq!(
            count_closer_than(&g, q, 100.0, usize::MAX, &[ObjectId(0)], &mut ops),
            2
        );
    }
}
