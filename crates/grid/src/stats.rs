//! Machine-independent operation counters.
//!
//! The paper reports CPU seconds on 2007 hardware; to make the reproduced
//! experiments portable, every search routine also counts the cells and
//! objects it touches, and the algorithms count how many searches of each
//! Section-6 cost class (`NN`, `NN_c`, `NN_b`) they issue.

/// Counters accumulated across search calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Unconstrained nearest-neighbor searches (`NN` in §6).
    pub nn: u64,
    /// Constrained NN searches — restricted to alive cells / pie regions
    /// (`NN_c` in §6).
    pub nn_c: u64,
    /// Bounded NN searches — restricted to a bounded region (`NN_b` in §6).
    pub nn_b: u64,
    /// Verification tests (the "dotted circle" NN test per candidate).
    pub verifications: u64,
    /// Grid cells examined by all searches.
    pub cells_visited: u64,
    /// Objects examined (distance computations) by all searches.
    pub objects_visited: u64,
    /// Cell-desync events survived: a cell bucket listed an object whose
    /// position slot was empty. The object is treated as removed and the
    /// search continues instead of panicking; a non-zero count signals an
    /// index-consistency bug upstream.
    pub desyncs: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.nn += other.nn;
        self.nn_c += other.nn_c;
        self.nn_b += other.nn_b;
        self.verifications += other.verifications;
        self.cells_visited += other.cells_visited;
        self.objects_visited += other.objects_visited;
        self.desyncs += other.desyncs;
    }

    /// Reset everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total number of NN searches of any class.
    pub fn total_searches(&self) -> u64 {
        self.nn + self.nn_c + self.nn_b + self.verifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_reset() {
        let mut a = OpCounters {
            nn: 1,
            nn_c: 2,
            nn_b: 3,
            verifications: 4,
            cells_visited: 10,
            objects_visited: 20,
            desyncs: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.nn, 2);
        assert_eq!(a.objects_visited, 40);
        assert_eq!(a.desyncs, 2);
        assert_eq!(a.total_searches(), 20);
        a.reset();
        assert_eq!(a, OpCounters::default());
    }
}
