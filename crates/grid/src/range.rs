//! Range queries over the grid (circular and rectangular).

use igern_geom::{Circle, Point};

use crate::grid::Grid;
use crate::object::ObjectId;
use crate::stats::OpCounters;

/// All objects inside the closed disk, in arbitrary order.
pub fn objects_in_circle(
    grid: &Grid,
    circle: &Circle,
    ops: &mut OpCounters,
) -> Vec<(ObjectId, Point)> {
    let mut out = Vec::new();
    let bb = circle.bounding_box();
    let (ix0, iy0) = grid.cell_coords(grid.cell_of_point(bb.min));
    let (ix1, iy1) = grid.cell_coords(grid.cell_of_point(bb.max));
    let r_sq = circle.radius * circle.radius;
    for iy in iy0..=iy1 {
        for ix in ix0..=ix1 {
            let cell = grid.cell_at(ix, iy);
            if grid.cell_bounds(cell).mindist_sq(circle.center) > r_sq {
                continue;
            }
            ops.cells_visited += 1;
            for &id in grid.objects_in(cell) {
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if circle.center.dist_sq(pos) <= r_sq {
                    out.push((id, pos));
                }
            }
        }
    }
    out
}

/// All objects inside the closed box, in arbitrary order.
pub fn objects_in_aabb(
    grid: &Grid,
    bounds: &igern_geom::Aabb,
    ops: &mut OpCounters,
) -> Vec<(ObjectId, Point)> {
    let mut out = Vec::new();
    let lo = grid.space().clamp(bounds.min);
    let hi = grid.space().clamp(bounds.max);
    let (ix0, iy0) = grid.cell_coords(grid.cell_of_point(lo));
    let (ix1, iy1) = grid.cell_coords(grid.cell_of_point(hi));
    for iy in iy0..=iy1 {
        for ix in ix0..=ix1 {
            let cell = grid.cell_at(ix, iy);
            ops.cells_visited += 1;
            for &id in grid.objects_in(cell) {
                ops.objects_visited += 1;
                let Some(pos) = grid.position(id) else {
                    // Bucket/position desync: treat the object as
                    // removed rather than killing the search.
                    ops.desyncs += 1;
                    continue;
                };
                if bounds.contains(pos) {
                    out.push((id, pos));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 5);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    #[test]
    fn circle_range_exact() {
        let g = grid_with(&[(1.0, 1.0), (2.0, 1.0), (5.0, 5.0), (1.5, 1.5)]);
        let mut ops = OpCounters::new();
        let hits = objects_in_circle(&g, &Circle::new(Point::new(1.0, 1.0), 1.0), &mut ops);
        let mut ids: Vec<u32> = hits.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn circle_range_on_boundary_is_closed() {
        let g = grid_with(&[(3.0, 0.0)]);
        let mut ops = OpCounters::new();
        let hits = objects_in_circle(&g, &Circle::new(Point::new(0.0, 0.0), 3.0), &mut ops);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn circle_partially_outside_space() {
        let g = grid_with(&[(0.5, 0.5), (9.5, 9.5)]);
        let mut ops = OpCounters::new();
        // Circle centered off-space still finds the near corner object.
        let hits = objects_in_circle(&g, &Circle::new(Point::new(-1.0, -1.0), 3.0), &mut ops);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, ObjectId(0));
    }

    #[test]
    fn aabb_range_exact() {
        let g = grid_with(&[(1.0, 1.0), (4.0, 4.0), (8.0, 2.0)]);
        let mut ops = OpCounters::new();
        let hits = objects_in_aabb(&g, &Aabb::from_coords(0.0, 0.0, 4.0, 4.0), &mut ops);
        let mut ids: Vec<u32> = hits.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn empty_ranges() {
        let g = grid_with(&[(5.0, 5.0)]);
        let mut ops = OpCounters::new();
        assert!(
            objects_in_circle(&g, &Circle::new(Point::new(1.0, 1.0), 0.5), &mut ops).is_empty()
        );
        assert!(objects_in_aabb(&g, &Aabb::from_coords(8.0, 8.0, 9.0, 9.0), &mut ops).is_empty());
    }
}
