//! Shared-scan cell feed: a per-tick snapshot cache of cell buckets.
//!
//! Batch evaluation (the `igern-core` `BatchEvaluator`) runs one
//! expanding-ring pass per query group and *primes* this feed with the
//! `(id, position, live)` triples of every cell the group will scan.
//! The NN kernels' `*_feed` variants then read primed cells from the
//! feed's dense arrays instead of re-gathering each object's position
//! from the grid — one gather per cell per tick, shared by every group
//! member, instead of one per member.
//!
//! Identity contract: a primed cell stores its bucket in **exact bucket
//! order**, including desynced entries (bucket ids whose position slot
//! is gone) flagged `live == false`, so the kernels replay the same
//! visit sequence, the same results, and the same operation counters
//! (`objects_visited`, `desyncs`, …) as a direct grid scan. Cells that
//! were never primed fall back to the grid transparently. The feed is
//! only valid while the grid is frozen — prime and read within one
//! evaluation pass, never across mutations.

use igern_geom::Point;

use crate::grid::{CellId, Grid};
use crate::object::ObjectId;

/// One cached bucket entry: the object, its position, and whether the
/// position slot was present at prime time (`false` = bucket/position
/// desync; kernels count it and move on, exactly as on the grid path).
#[derive(Debug, Clone, Copy)]
pub struct FeedEntry {
    pub id: ObjectId,
    pub pos: Point,
    pub live: bool,
}

/// A primed cell viewed as structure-of-arrays columns, for kernels with
/// a branch-free inner loop ([`crate::nn::nearest_undominated_in_cells_feed`]).
///
/// The columns are parallel to `entries`. Dead (desynced) entries hold
/// `f64::INFINITY` coordinates, so any distance computed against them is
/// infinite and a plain minimum never selects them; their count is
/// carried separately for bulk `desyncs` accounting.
#[derive(Debug, Clone, Copy)]
pub struct FeedScan<'a> {
    pub entries: &'a [FeedEntry],
    pub xs: &'a [f64],
    pub ys: &'a [f64],
    /// Raw object ids (`ObjectId.0`), for exclusion tests.
    pub ids: &'a [u32],
    /// Number of dead entries in the cell.
    pub dead: u32,
}

/// The shared-scan cache. One feed per evaluation lane per grid;
/// `begin` once per tick, `prime` per cell, `get` from the kernels.
///
/// Cell validity is epoch-stamped: `begin` bumps the epoch instead of
/// clearing the per-cell index, so starting a tick is O(1) in the
/// number of grid cells (after the first sizing) and the steady state
/// allocates nothing.
#[derive(Debug, Default)]
pub struct CellFeed {
    epoch: u64,
    /// Per-cell epoch stamp; the cell's span is valid iff it equals
    /// `epoch`.
    stamp: Vec<u64>,
    /// Per-cell `(start, len)` span into `entries`.
    span: Vec<(u32, u32)>,
    /// Per-cell dead-entry count (valid under the same stamp as `span`).
    dead: Vec<u32>,
    entries: Vec<FeedEntry>,
    /// Position/id columns parallel to `entries` (see [`FeedScan`]).
    xs: Vec<f64>,
    ys: Vec<f64>,
    ids: Vec<u32>,
}

impl CellFeed {
    /// An empty feed; sized on the first [`CellFeed::begin`].
    pub fn new() -> Self {
        CellFeed::default()
    }

    /// Start a new prime/read cycle over a grid of `num_cells` cells:
    /// every previously primed cell becomes invalid.
    pub fn begin(&mut self, num_cells: usize) {
        self.epoch += 1;
        if self.stamp.len() < num_cells {
            // Stamps start at 0 and the epoch is pre-incremented, so
            // fresh cells are never spuriously valid.
            self.stamp.resize(num_cells, 0);
            self.span.resize(num_cells, (0, 0));
            self.dead.resize(num_cells, 0);
        }
        self.entries.clear();
        self.xs.clear();
        self.ys.clear();
        self.ids.clear();
    }

    /// Whether `cell` is primed in the current cycle.
    #[inline]
    pub fn is_primed(&self, cell: CellId) -> bool {
        self.stamp.get(cell).is_some_and(|&s| s == self.epoch)
    }

    /// Cache `cell`'s bucket (id, position, live) in exact bucket
    /// order. Priming an already-primed cell is a no-op.
    pub fn prime(&mut self, grid: &Grid, cell: CellId) {
        debug_assert!(cell < self.stamp.len(), "begin() must size the feed");
        if self.stamp[cell] == self.epoch {
            return;
        }
        let start = self.entries.len();
        let mut dead = 0u32;
        for &id in grid.objects_in(cell) {
            let entry = match grid.position(id) {
                Some(pos) => FeedEntry {
                    id,
                    pos,
                    live: true,
                },
                None => {
                    dead += 1;
                    FeedEntry {
                        id,
                        pos: Point::ORIGIN,
                        live: false,
                    }
                }
            };
            // Dead columns are infinite so distance kernels skip them
            // without a branch.
            let (x, y) = if entry.live {
                (entry.pos.x, entry.pos.y)
            } else {
                (f64::INFINITY, f64::INFINITY)
            };
            self.entries.push(entry);
            self.xs.push(x);
            self.ys.push(y);
            self.ids.push(id.0);
        }
        self.span[cell] = (start as u32, (self.entries.len() - start) as u32);
        self.dead[cell] = dead;
        self.stamp[cell] = self.epoch;
    }

    /// The primed entries of `cell`, or `None` when the cell was not
    /// primed this cycle (callers fall back to the grid).
    #[inline]
    pub fn get(&self, cell: CellId) -> Option<&[FeedEntry]> {
        if !self.is_primed(cell) {
            return None;
        }
        let (start, len) = self.span[cell];
        Some(&self.entries[start as usize..(start + len) as usize])
    }

    /// The primed entries of `cell` as structure-of-arrays columns, or
    /// `None` when the cell was not primed this cycle (callers fall back
    /// to the grid). Same validity rules as [`CellFeed::get`].
    #[inline]
    pub fn get_scan(&self, cell: CellId) -> Option<FeedScan<'_>> {
        if !self.is_primed(cell) {
            return None;
        }
        let (start, len) = self.span[cell];
        let range = start as usize..(start + len) as usize;
        Some(FeedScan {
            entries: &self.entries[range.clone()],
            xs: &self.xs[range.clone()],
            ys: &self.ys[range.clone()],
            ids: &self.ids[range],
            dead: self.dead[cell],
        })
    }

    /// Number of entries cached this cycle (all primed cells).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is primed this cycle.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 4);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    #[test]
    fn primed_cells_replay_bucket_order_and_desyncs() {
        let mut g = grid_with(&[(1.0, 1.0), (1.2, 1.4), (9.0, 9.0)]);
        assert!(g.debug_force_desync(ObjectId(1)));
        let cell = g.cell_of_point(Point::new(1.0, 1.0));
        let mut feed = CellFeed::new();
        feed.begin(g.num_cells());
        assert!(feed.get(cell).is_none(), "unprimed cell must miss");
        feed.prime(&g, cell);
        let entries = feed.get(cell).expect("primed");
        let bucket = g.objects_in(cell);
        assert_eq!(entries.len(), bucket.len());
        for (e, &id) in entries.iter().zip(bucket) {
            assert_eq!(e.id, id, "exact bucket order");
            assert_eq!(e.live, g.position(id).is_some());
            if e.live {
                assert_eq!(Some(e.pos), g.position(id));
            }
        }
        assert!(entries.iter().any(|e| !e.live), "desync is cached as dead");
        // The SoA view is parallel to the entries, with dead coordinates
        // pushed to infinity and the dead count carried per cell.
        let scan = feed.get_scan(cell).expect("primed");
        assert_eq!(scan.entries.len(), entries.len());
        assert_eq!(scan.dead, 1);
        for (i, e) in scan.entries.iter().enumerate() {
            assert_eq!(scan.ids[i], e.id.0);
            if e.live {
                assert_eq!((scan.xs[i], scan.ys[i]), (e.pos.x, e.pos.y));
            } else {
                assert!(scan.xs[i].is_infinite() && scan.ys[i].is_infinite());
            }
        }
        assert!(
            feed.get_scan(cell + 1).is_none(),
            "unprimed cell must miss the SoA view too"
        );
    }

    #[test]
    fn begin_invalidates_previous_cycle_without_reallocating() {
        let g = grid_with(&[(1.0, 1.0), (9.0, 9.0)]);
        let mut feed = CellFeed::new();
        feed.begin(g.num_cells());
        let cell = g.cell_of_point(Point::new(1.0, 1.0));
        feed.prime(&g, cell);
        assert!(feed.is_primed(cell));
        feed.begin(g.num_cells());
        assert!(!feed.is_primed(cell));
        assert!(feed.get(cell).is_none());
        assert!(feed.is_empty());
        // Re-priming in the new cycle works and is idempotent.
        feed.prime(&g, cell);
        feed.prime(&g, cell);
        assert_eq!(feed.get(cell).unwrap().len(), 1);
        assert_eq!(feed.len(), 1);
    }
}
