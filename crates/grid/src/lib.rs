//! The N×N grid index of moving objects and the shared nearest-neighbor
//! search substrate.
//!
//! The paper (Section 3) maintains "a grid data structure G of N×N equal
//! size cells \[where\] each cell keeps track of the set of objects that lie
//! within the cell boundary". Every algorithm in the reproduction — IGERN,
//! CRNN, TPL, and the repetitive-Voronoi baseline — runs on top of this
//! index and of the NN-search routines in [`nn`], mirroring the paper's
//! experimental setup ("to ensure consistency and fairness among different
//! approaches, we use \[the same\] underlying nearest neighbor search for
//! all approaches").
//!
//! Three NN variants are provided, matching the cost model of Section 6:
//!
//! * **unconstrained NN** (`NN`): best-first ring expansion over the whole
//!   grid;
//! * **constrained NN** (`NN_c`): restricted to a caller-supplied cell set
//!   (IGERN's *alive cells*) or cell predicate (CRNN's pie regions);
//! * **bounded NN** (`NN_b`): restricted to a bounded region, i.e. with a
//!   distance cut-off.
//!
//! # Example
//!
//! ```
//! use igern_geom::{Aabb, Point};
//! use igern_grid::{nearest, Grid, ObjectId, OpCounters};
//!
//! let mut grid = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
//! grid.insert(ObjectId(0), Point::new(2.0, 2.0));
//! grid.insert(ObjectId(1), Point::new(8.0, 8.0));
//! grid.update(ObjectId(0), Point::new(6.0, 6.0)); // object moves
//!
//! let mut ops = OpCounters::new();
//! let n = nearest(&grid, Point::new(7.0, 7.0), None, &mut ops).unwrap();
//! assert_eq!(n.id, ObjectId(0));
//! assert!(grid.cell_changes() >= 1); // the move crossed a cell boundary
//! ```

pub mod bitvec;
pub mod cellset;
pub mod feed;
pub mod grid;
pub mod nn;
pub mod object;
pub mod range;
pub mod stats;
pub mod visit;

pub use bitvec::BitVec;
pub use cellset::CellSet;
pub use feed::{CellFeed, FeedEntry, FeedScan};
pub use grid::{CellId, Grid};
pub use nn::{
    count_closer_than, count_closer_than_feed, exists_closer_than, exists_closer_than_feed,
    k_nearest, k_nearest_into, k_nearest_into_feed, nearest, nearest_feed, nearest_in_cells,
    nearest_in_cells_with, nearest_in_cells_with_feed, nearest_in_set,
    nearest_undominated_in_cells_feed, nearest_where, nearest_where_feed, CellOrderScratch,
    NearestIter, Neighbor,
};
pub use object::ObjectId;
pub use stats::OpCounters;
