//! Object identifiers.

use std::fmt;

/// Dense identifier of a moving object.
///
/// Generators hand out ids `0..n`, which lets the grid keep positions in a
/// flat vector instead of a hash map (a large win on the hot update path;
/// see the perf notes in DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u32> for ObjectId {
    #[inline]
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId(7).to_string(), "o7");
        assert_eq!(ObjectId::from(3u32), ObjectId(3));
        assert_eq!(ObjectId(9).index(), 9usize);
    }
}
