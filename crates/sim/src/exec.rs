//! Plan execution: drive every backend through the same schedule and
//! check each tick against the brute-force mirror.
//!
//! Three backends run in lockstep:
//!
//! * **serial** — [`TickRunner`] over the serial processor (1 worker);
//! * **sharded** — [`TickRunner`] over the sharded engine
//!   (`plan.workers` workers);
//! * **server** (optional) — a full `igern-server` instance on the
//!   in-memory transport, driven through the wire protocol by a clean
//!   *workload* client `W`, with a second *victim* client `F` whose
//!   connection absorbs the frame faults and slow-consumer stalls.
//!
//! Every tick, each live query's answer from every backend is compared
//! against [`Mirror::expected_answer`]; the first divergence (or panic)
//! stops the run with a [`SimFailure`] naming the tick, query, and
//! backend. `W` is held to full correctness even while `F`'s connection
//! is being corrupted — faults on one connection must never leak into
//! another subscriber's answers.
//!
//! On durable plans the server additionally keeps a write-ahead log in
//! a throwaway directory, and [`SimEvent::KillRestart`] events
//! crash-kill it mid-run: a replacement server boots from the log,
//! reconnecting clients claim their recovered queries back, and every
//! answer from the very next tick is held to the same oracle —
//! recovery must be exact, not approximate.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use igern_core::hooks::SimHooks;
use igern_core::obs::MetricsRegistry;
use igern_core::processor::Algorithm;
use igern_core::types::DistanceMode;
use igern_core::{NetworkSpace, SpatialStore};
use igern_engine::{Placement, TickRunner};
use igern_geom::Point;
use igern_grid::ObjectId;
use igern_server::{
    memory_listener, Client, ClientError, Listener, MemConnector, Server, ServerConfig,
    SlowConsumerPolicy, Stream, TickMode,
};

use crate::events::{FrameFault, Plan, SimEvent};
use crate::oracle::Mirror;

/// Why an execution stopped early.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Tick (1-based) the failure surfaced on.
    pub tick: u64,
    /// Offending query, when the failure is an answer mismatch.
    pub query: Option<u32>,
    /// Failure class: `"mismatch"`, `"cross-backend"`, `"panic"`,
    /// `"server-io"`, or `"recovery"` (a crash-restarted server came
    /// back lossy or empty).
    pub kind: &'static str,
    /// Human-readable specifics (backend, expected vs got, ...).
    pub detail: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tick {}: {}: {}", self.tick, self.kind, self.detail)?;
        if let Some(q) = self.query {
            write!(f, " (query {q})")?;
        }
        Ok(())
    }
}

/// Deterministic run summary. Two executions of the same plan on the
/// same build must produce identical reports (the CLI's determinism
/// check relies on it), except `victim_alive`, which depends on fault
/// timing against a real connection teardown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Ticks executed.
    pub ticks: u64,
    /// FNV-1a digest folded over every (tick, query, answer) triple.
    pub digest: u64,
    /// Deterministic event counters.
    pub counters: SimCounters,
    /// Whether the victim client's connection survived the run
    /// (`None` without a server backend). Excluded from determinism
    /// comparisons.
    pub victim_alive: Option<bool>,
}

/// Counters over the *admitted* schedule (see [`Mirror::admits`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimCounters {
    pub events_applied: u64,
    pub events_skipped: u64,
    pub moves: u64,
    pub inserts: u64,
    pub removes: u64,
    pub desyncs: u64,
    pub worker_stalls: u64,
    pub frame_faults: u64,
    pub client_stalls: u64,
    pub queries_added: u64,
    pub queries_removed: u64,
    pub kill_restarts: u64,
    pub answer_checks: u64,
    pub final_population: u64,
}

/// Test seam: force a wrong answer for `query` at `tick` on the serial
/// backend, so the failure-detection → shrink → replay pipeline can be
/// exercised against a healthy build.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct Corruption {
    pub tick: u64,
    pub query: u32,
}

/// Scripted engine faults shared by every backend via
/// [`igern_core::hooks::SimHooks`]: per-tick desync victims and
/// per-(tick, worker) stalls. Populated tick-by-tick by the executor
/// *before* the corresponding `step`, so all backends observe the same
/// injection at the same logical point.
#[derive(Default)]
struct ScriptedFaults {
    desyncs: Mutex<HashMap<u64, Vec<ObjectId>>>,
    stalls: Mutex<HashSet<(u64, u32)>>,
}

impl ScriptedFaults {
    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl SimHooks for ScriptedFaults {
    fn desync_targets(&self, tick: u64) -> Vec<ObjectId> {
        Self::lock(&self.desyncs)
            .get(&tick)
            .cloned()
            .unwrap_or_default()
    }

    fn on_worker_shard(&self, worker: usize, tick: u64) {
        if Self::lock(&self.stalls).contains(&(tick, worker as u32)) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn build_store(plan: &Plan, net: Option<&Arc<NetworkSpace>>) -> SpatialStore {
    let n = plan.initial.len();
    let mut kinds = vec![igern_core::ObjectKind::A; n];
    let mut positions = vec![Point::ORIGIN; n];
    for &(id, kind, x, y) in &plan.initial {
        kinds[id as usize] = kind;
        positions[id as usize] = Point::new(x, y);
    }
    let mut store = SpatialStore::new(plan.space, plan.grid, kinds);
    if let Some(ns) = net {
        store.set_network(Arc::clone(ns));
    }
    store.load(&positions);
    store
}

/// The distance mode every checked query of `plan` runs under.
fn plan_mode(plan: &Plan) -> DistanceMode {
    if plan.network {
        DistanceMode::Network
    } else {
        DistanceMode::Euclidean
    }
}

/// An offline tick backend (serial or sharded) plus its query-id map.
struct Offline {
    name: &'static str,
    runner: TickRunner,
    mode: DistanceMode,
    qmap: HashMap<u32, usize>,
}

impl Offline {
    fn apply(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::Move { id, x, y } => {
                self.runner.apply_update(ObjectId(id), Point::new(x, y));
            }
            SimEvent::Insert { id, kind, x, y } => {
                self.runner
                    .insert_object(ObjectId(id), kind, Point::new(x, y));
            }
            SimEvent::Remove { id } => {
                self.runner.remove_object(ObjectId(id));
            }
            SimEvent::AddQuery { q, anchor, algo } => {
                let qid = self
                    .runner
                    .add_query_in(ObjectId(anchor), algo, self.mode)
                    .expect("mirror admitted the query");
                self.qmap.insert(q, qid);
            }
            SimEvent::RemoveQuery { q } => {
                let qid = self.qmap.remove(&q).expect("mirror admitted the removal");
                self.runner.remove_query(qid);
            }
            _ => {}
        }
    }

    fn answer(&self, q: u32) -> Vec<u32> {
        self.runner
            .answer(self.qmap[&q])
            .iter()
            .map(|o| o.0)
            .collect()
    }
}

/// A throwaway WAL directory for one durable execution, removed on
/// drop so failed runs don't leak state into later ones.
struct TempWalDir(PathBuf);

impl Drop for TempWalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

static SIM_WAL_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_wal_dir() -> std::io::Result<TempWalDir> {
    let seq = SIM_WAL_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("igern-sim-wal-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    Ok(TempWalDir(dir))
}

/// The wire-protocol backend: a served engine behind two clients.
struct Served {
    server: Server,
    hooks: Arc<ScriptedFaults>,
    /// Write-ahead-log directory on durable plans; [`Served::kill_restart`]
    /// reboots the server from it.
    wal_dir: Option<PathBuf>,
    /// Clean workload client: sends every mutation, is oracle-checked.
    w: Client,
    /// Fault victim: owns one subscription, absorbs the frame faults;
    /// only its liveness is tracked.
    f: Option<Client>,
    f_stalled_ticks: u32,
    /// Whether `w` holds the standing tick-barrier subscription (see
    /// [`Plan::pinned_anchor`]); without it the server never pushes
    /// `TICK_END` to `w` and the executor falls back to a `PING`
    /// round-trip (only possible on degenerate hand-written plans with
    /// an empty initial population — no queries can exist there, so
    /// answer reads never race the tick).
    has_barrier: bool,
    sid_of: HashMap<u32, u32>,
    /// Live queries by plan id — what a restarted server's fresh
    /// workload client must re-subscribe (in ascending id order, so
    /// recovered orphan queries are claimed deterministically).
    query_of: HashMap<u32, (u32, Algorithm)>,
    /// Registered kind per id — the upsert frame re-states the kind on
    /// every move, and a mismatch is a semantic error.
    kind_of: HashMap<u32, igern_core::ObjectKind>,
    /// Road graph of a network-distance plan; restart stores re-attach
    /// it so WAL recovery can re-register network subscriptions.
    net: Option<Arc<NetworkSpace>>,
    tap_script: Arc<Mutex<VecDeque<FrameFault>>>,
}

fn io_fail(tick: u64, e: &dyn std::fmt::Display) -> SimFailure {
    SimFailure {
        tick,
        query: None,
        kind: "server-io",
        detail: format!("server backend setup: {e}"),
    }
}

fn server_cfg(plan: &Plan, hooks: Arc<ScriptedFaults>, wal_dir: Option<&Path>) -> ServerConfig {
    ServerConfig {
        space: plan.space,
        grid: plan.grid,
        workers: plan.workers,
        placement: Placement::RoundRobin,
        tick_mode: TickMode::Manual,
        batch: plan.batch,
        slow_consumer: SlowConsumerPolicy::Coalesce,
        outbound_queue_frames: 64,
        sim_hooks: Some(hooks),
        wal: wal_dir.map(|dir| {
            let mut opts = igern_wal::WalOptions::new(dir);
            // Snapshots every few ticks so recovery exercises both the
            // snapshot load and a segment tail replay; no fsync — the
            // kill is an in-process crash, not a power cut.
            opts.snapshot_every = 16;
            opts.fsync = igern_wal::FsyncPolicy::Never;
            opts
        }),
        ..ServerConfig::default()
    }
}

/// Connect the workload client and open its tick-barrier subscription.
fn connect_w(
    tick: u64,
    connector: &MemConnector,
    plan: &Plan,
) -> Result<(Client, bool), SimFailure> {
    let fail = |e: &dyn std::fmt::Display| io_fail(tick, e);
    let mut w = Client::from_stream(Stream::Mem(connector.connect().map_err(|e| fail(&e))?))
        .map_err(|e| fail(&e))?;
    w.set_read_timeout(Duration::from_millis(1))
        .map_err(|e| fail(&e))?;
    // The server pushes TICK_END only to subscribed connections, so
    // W opens a standing subscription on the pinned anchor purely
    // to receive that frame — it is the per-tick barrier proving
    // every delta of the tick has been delivered and folded.
    let has_barrier = match plan.pinned_anchor() {
        Some(anchor) => {
            w.subscribe(anchor, Algorithm::IgernMono)
                .map_err(|e| fail(&e))?;
            true
        }
        None => false,
    };
    Ok((w, has_barrier))
}

/// Connect the fault-victim client through a write tap scripted by
/// `tap_script`, subscribed at the plan's victim anchor.
fn connect_f(
    tick: u64,
    connector: &MemConnector,
    plan: &Plan,
    tap_script: &Arc<Mutex<VecDeque<FrameFault>>>,
) -> Result<Option<Client>, SimFailure> {
    let fail = |e: &dyn std::fmt::Display| io_fail(tick, e);
    let Some(anchor) = plan.victim_anchor else {
        return Ok(None);
    };
    let script = Arc::clone(tap_script);
    let mut held: Option<Vec<u8>> = None;
    let tap = Box::new(move |bytes: &[u8]| {
        let fault = script
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        let mut out: Vec<Vec<u8>> = Vec::new();
        match fault {
            None => out.push(bytes.to_vec()),
            Some(FrameFault::Drop) => {}
            Some(FrameFault::Duplicate) => {
                out.push(bytes.to_vec());
                out.push(bytes.to_vec());
            }
            Some(FrameFault::Truncate) => {
                out.push(bytes[..bytes.len() / 2].to_vec());
            }
            Some(FrameFault::Reorder) if held.is_none() => {
                held = Some(bytes.to_vec());
            }
            Some(FrameFault::Reorder) => out.push(bytes.to_vec()),
        }
        // A held-back frame rides out right after the next
        // delivered one.
        if !out.is_empty() {
            if let Some(h) = held.take() {
                out.push(h);
            }
        }
        out
    });
    let stream = connector
        .connect_with_tap(Some(tap))
        .map_err(|e| fail(&e))?;
    let mut f = Client::from_stream(Stream::Mem(stream)).map_err(|e| fail(&e))?;
    f.set_read_timeout(Duration::from_millis(1))
        .map_err(|e| fail(&e))?;
    f.subscribe(anchor, Algorithm::IgernMono)
        .map_err(|e| fail(&e))?;
    Ok(Some(f))
}

impl Served {
    fn start(
        plan: &Plan,
        hooks: Arc<ScriptedFaults>,
        wal_dir: Option<&Path>,
        net: Option<&Arc<NetworkSpace>>,
    ) -> Result<Served, SimFailure> {
        let (listener, connector) = memory_listener();
        let cfg = server_cfg(plan, Arc::clone(&hooks), wal_dir);
        let server = Server::start_on(
            Listener::Mem(listener),
            build_store(plan, net),
            cfg,
            MetricsRegistry::new(),
        )
        .map_err(|e| io_fail(0, &e))?;

        let (w, has_barrier) = connect_w(0, &connector, plan)?;
        let tap_script: Arc<Mutex<VecDeque<FrameFault>>> = Arc::default();
        let f = connect_f(0, &connector, plan, &tap_script)?;

        Ok(Served {
            server,
            hooks,
            wal_dir: wal_dir.map(Path::to_path_buf),
            w,
            f,
            f_stalled_ticks: 0,
            has_barrier,
            sid_of: HashMap::new(),
            query_of: HashMap::new(),
            kind_of: plan.initial.iter().map(|&(id, k, _, _)| (id, k)).collect(),
            net: net.map(Arc::clone),
            tap_script,
        })
    }

    /// Crash-kill the server (no final tick, no clean snapshot) and
    /// boot a replacement over the same WAL directory. The recovered
    /// engine re-evaluates its standing queries as headless orphans;
    /// reconnecting clients claim them back by re-subscribing the same
    /// `(anchor, algorithm)` pairs. Every answer after this point is
    /// still held to the mirror — recovery must be exact.
    fn kill_restart(&mut self, plan: &Plan, tick: u64) -> Result<(), SimFailure> {
        let fail = |e: &dyn std::fmt::Display| io_fail(tick, e);
        let dir = self
            .wal_dir
            .clone()
            .expect("mirror admits KillRestart only on durable plans");
        self.server.crash();

        let (listener, connector) = memory_listener();
        let cfg = server_cfg(plan, Arc::clone(&self.hooks), Some(&dir));
        let mut store = SpatialStore::new(plan.space, plan.grid, Vec::new());
        if let Some(ns) = &self.net {
            // Recovery re-registers network subscriptions; the fresh
            // store must carry the road graph before the server boots.
            store.set_network(Arc::clone(ns));
        }
        let server = Server::start_on(Listener::Mem(listener), store, cfg, MetricsRegistry::new())
            .map_err(|e| fail(&e))?;
        let recovered = server.recovery().ok_or_else(|| SimFailure {
            tick,
            query: None,
            kind: "recovery",
            detail: "restarted server recovered nothing from its WAL".into(),
        })?;
        if !recovered.report.clean() {
            return Err(SimFailure {
                tick,
                query: None,
                kind: "recovery",
                detail: format!(
                    "in-process crash must lose nothing, yet recovery skipped \
                     {} records and dropped a {}-byte torn tail",
                    recovered.report.skipped_records, recovered.report.torn_tail_bytes
                ),
            });
        }

        let (mut w, has_barrier) = connect_w(tick, &connector, plan)?;
        let mut sid_of = HashMap::new();
        let mut queries: Vec<(u32, (u32, Algorithm))> =
            self.query_of.iter().map(|(&q, &v)| (q, v)).collect();
        queries.sort_unstable_by_key(|&(q, _)| q);
        let mode = plan_mode(plan);
        for (q, (anchor, algo)) in queries {
            let sid = w.subscribe_in(anchor, algo, mode).map_err(|e| fail(&e))?;
            sid_of.insert(q, sid);
        }
        // The victim reconnects (through a fresh tap over the same
        // fault script) only if its previous connection was still
        // alive; a dead victim stays dead, like any real client.
        let f = if self.f.is_some() {
            connect_f(tick, &connector, plan, &self.tap_script)?
        } else {
            None
        };

        self.server = server;
        self.w = w;
        self.f = f;
        self.has_barrier = has_barrier;
        self.sid_of = sid_of;
        Ok(())
    }

    fn apply(&mut self, tick: u64, event: &SimEvent) -> Result<(), SimFailure> {
        let fail = |e: ClientError| SimFailure {
            tick,
            query: None,
            kind: "server-io",
            detail: format!("workload client: {e}"),
        };
        match *event {
            SimEvent::Move { id, x, y } => {
                let kind = self.kind_of[&id];
                self.w.upsert(id, kind, x, y)
            }
            SimEvent::Insert { id, kind, x, y } => {
                self.kind_of.insert(id, kind);
                self.w.upsert(id, kind, x, y)
            }
            SimEvent::Remove { id } => self.w.remove_object(id),
            SimEvent::AddQuery { q, anchor, algo } => {
                let mode = if self.net.is_some() {
                    DistanceMode::Network
                } else {
                    DistanceMode::Euclidean
                };
                return self
                    .w
                    .subscribe_in(anchor, algo, mode)
                    .map(|sid| {
                        self.sid_of.insert(q, sid);
                        self.query_of.insert(q, (anchor, algo));
                    })
                    .map_err(fail);
            }
            SimEvent::RemoveQuery { q } => {
                let sid = self.sid_of.remove(&q).expect("mirror admitted the removal");
                self.query_of.remove(&q);
                self.w.unsubscribe(sid)
            }
            SimEvent::ClientStall { ticks } => {
                self.f_stalled_ticks = self.f_stalled_ticks.max(ticks);
                Ok(())
            }
            SimEvent::FrameFault { fault } => {
                self.tap_script
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back(fault);
                Ok(())
            }
            SimEvent::ForceDesync { .. } | SimEvent::StallWorker { .. } => Ok(()),
            // Crashes are applied by the executor on the tick boundary
            // (see `run_tick`), never through the per-event path.
            SimEvent::KillRestart => unreachable!("handled on the tick boundary"),
        }
        .map_err(fail)
    }

    /// Drive one tick: `STEP`, then wait for this tick's `TICK_END` on
    /// the workload connection. The tick thread pushes every delta of
    /// the tick before `TICK_END` on the same FIFO outbound queue, so
    /// once it arrives W's answer state is exactly the post-tick state.
    /// (A `PING` is *not* a valid barrier here: the reader thread
    /// answers it directly, racing the tick thread.)
    fn step(&mut self, tick: u64) -> Result<(), SimFailure> {
        let fail = |e: ClientError| SimFailure {
            tick,
            query: None,
            kind: "server-io",
            detail: format!("workload client: {e}"),
        };
        self.w.step().map_err(fail)?;
        if self.has_barrier {
            self.w
                .wait_tick_end(tick, Duration::from_secs(10))
                .map_err(fail)?;
        } else {
            self.w.ping(tick).map_err(fail)?;
        }

        // Victim liveness: drain its connection unless it is scripted
        // to stall; a teardown (from truncation garbage or a
        // slow-consumer disconnect) parks it as dead without failing
        // the run.
        if self.f_stalled_ticks > 0 {
            self.f_stalled_ticks -= 1;
        } else if let Some(f) = self.f.as_mut() {
            loop {
                match f.poll_event(Duration::ZERO) {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        self.f = None;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn answer(&self, q: u32) -> Vec<u32> {
        self.w.answer(self.sid_of[&q])
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Execute a plan against every backend, checking each tick. See the
/// module docs for the lockstep layout.
pub fn execute(plan: &Plan, corruption: Option<&Corruption>) -> Result<SimReport, SimFailure> {
    let hooks = Arc::new(ScriptedFaults::default());
    let mirror = Mirror::new(plan);
    // One road graph, shared by every backend and the mirror: all of
    // them must route over the same edges for answers to agree.
    let net = mirror.network().cloned();
    let mode = plan_mode(plan);

    let mut serial = Offline {
        name: "serial",
        runner: TickRunner::new(build_store(plan, net.as_ref()), 1, Placement::RoundRobin),
        mode,
        qmap: HashMap::new(),
    };
    serial
        .runner
        .set_sim_hooks(Some(Arc::clone(&hooks) as Arc<dyn SimHooks>));
    serial.runner.set_batch(plan.batch);
    let mut sharded = Offline {
        name: "sharded",
        runner: TickRunner::new(
            build_store(plan, net.as_ref()),
            plan.workers.max(2),
            Placement::RoundRobin,
        ),
        mode,
        qmap: HashMap::new(),
    };
    sharded
        .runner
        .set_sim_hooks(Some(Arc::clone(&hooks) as Arc<dyn SimHooks>));
    sharded.runner.set_batch(plan.batch);
    // Durable plans run the served backend over a throwaway WAL
    // directory so KillRestart faults have a log to come back from.
    let wal_dir = if plan.server && plan.durable {
        Some(temp_wal_dir().map_err(|e| io_fail(0, &e))?)
    } else {
        None
    };
    let mut served = if plan.server {
        Some(Served::start(
            plan,
            Arc::clone(&hooks),
            wal_dir.as_ref().map(|d| d.0.as_path()),
            net.as_ref(),
        )?)
    } else {
        None
    };

    let mut mirror = mirror;
    let mut counters = SimCounters::default();
    let mut digest = Fnv::new();

    for t in 1..=plan.ticks {
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_tick(
                plan,
                t,
                &hooks,
                &mut mirror,
                &mut counters,
                &mut digest,
                &mut serial,
                &mut sharded,
                served.as_mut(),
                corruption,
            )
        }));
        match step {
            Ok(Ok(())) => {}
            Ok(Err(failure)) => return Err(failure),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                return Err(SimFailure {
                    tick: t,
                    query: None,
                    kind: "panic",
                    detail: msg,
                });
            }
        }
    }

    counters.final_population = mirror.population() as u64;
    Ok(SimReport {
        ticks: plan.ticks,
        digest: digest.0,
        counters,
        victim_alive: served.as_ref().map(|s| s.f.is_some()),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_tick(
    plan: &Plan,
    t: u64,
    hooks: &ScriptedFaults,
    mirror: &mut Mirror,
    counters: &mut SimCounters,
    digest: &mut Fnv,
    serial: &mut Offline,
    sharded: &mut Offline,
    mut served: Option<&mut Served>,
    corruption: Option<&Corruption>,
) -> Result<(), SimFailure> {
    // 0. Crash faults land on the tick boundary, before any of this
    // tick's mutations are sent: everything up to tick t-1 sits behind
    // a TICK_END barrier (and therefore in the log), so nothing can be
    // lost in the ingest queue when the plug is pulled.
    for event in plan.events_at(t) {
        if *event == SimEvent::KillRestart && mirror.admits(event) {
            counters.events_applied += 1;
            counters.kill_restarts += 1;
            if let Some(s) = served.as_deref_mut() {
                s.kill_restart(plan, t)?;
            }
        }
    }

    // 1. Admit and apply this tick's events everywhere.
    for event in plan.events_at(t) {
        if !mirror.admits(event) {
            counters.events_skipped += 1;
            continue;
        }
        if *event == SimEvent::KillRestart {
            continue; // applied above, on the boundary
        }
        counters.events_applied += 1;
        match event {
            SimEvent::Move { .. } => counters.moves += 1,
            SimEvent::Insert { .. } => counters.inserts += 1,
            SimEvent::Remove { .. } => counters.removes += 1,
            SimEvent::AddQuery { .. } => counters.queries_added += 1,
            SimEvent::RemoveQuery { .. } => counters.queries_removed += 1,
            SimEvent::ForceDesync { id } => {
                counters.desyncs += 1;
                ScriptedFaults::lock(&hooks.desyncs)
                    .entry(t)
                    .or_default()
                    .push(ObjectId(*id));
            }
            SimEvent::StallWorker { worker } => {
                counters.worker_stalls += 1;
                ScriptedFaults::lock(&hooks.stalls).insert((t, *worker));
            }
            SimEvent::ClientStall { .. } => counters.client_stalls += 1,
            SimEvent::FrameFault { .. } => counters.frame_faults += 1,
            SimEvent::KillRestart => unreachable!("skipped above"),
        }
        mirror.apply(event);
        serial.apply(event);
        sharded.apply(event);
        if let Some(s) = served.as_deref_mut() {
            s.apply(t, event)?;
        }
    }

    // 2. Tick every backend (desyncs/stalls fire inside, via hooks).
    serial.runner.step(&[]);
    sharded.runner.step(&[]);
    if let Some(s) = served.as_deref_mut() {
        s.step(t)?;
    }

    // 3. Compare every live query on every backend to the oracle.
    for q in mirror.query_ids() {
        let expected = mirror.expected_answer(q);
        counters.answer_checks += 1;
        digest.u64(t);
        digest.u32(q);
        digest.u64(expected.len() as u64);
        for &id in &expected {
            digest.u32(id);
        }

        let mut got_serial = serial.answer(q);
        if let Some(c) = corruption {
            if c.tick == t && c.query == q {
                got_serial.push(u32::MAX);
            }
        }
        for (name, got) in [
            (serial.name, &got_serial),
            (sharded.name, &sharded.answer(q)),
        ] {
            if *got != expected {
                return Err(mismatch(t, q, name, &expected, got));
            }
        }
        if let Some(s) = served.as_deref() {
            let got = s.answer(q);
            if got != expected {
                return Err(mismatch(t, q, "server", &expected, &got));
            }
        }
    }
    Ok(())
}

fn mismatch(tick: u64, q: u32, backend: &str, expected: &[u32], got: &[u32]) -> SimFailure {
    SimFailure {
        tick,
        query: Some(q),
        kind: "mismatch",
        detail: format!("{backend} answer {got:?}, oracle says {expected:?}"),
    }
}
