//! Deterministic fault-injection simulation harness for the IGERN
//! stack.
//!
//! One seed drives the entire pipeline — [`igern_core::SpatialStore`] →
//! serial processor / sharded engine (via `igern_engine::TickRunner`) →
//! the `igern-server` wire protocol over an in-process memory transport
//! — and every tick of every continuous query is checked against the
//! brute-force oracles in `igern_core::naive`. The fault plan layers
//! grid desyncs, worker stalls, dropped/duplicated/truncated/reordered
//! frames, slow-consumer stalls, teleports, and population storms on
//! top of the workload; all of it must be answer-invisible to a clean
//! subscriber. With [`SimConfig::durable`] on, the served backend runs
//! over a write-ahead log and is crash-killed and restarted mid-run —
//! recovery must reproduce the exact pre-kill answers.
//!
//! The moving parts:
//!
//! * [`events`] — the event model, [`events::Plan`], and the seeded
//!   generator;
//! * [`oracle`] — the canonical mirror deciding event validity and
//!   computing expected answers;
//! * [`exec`] — lockstep execution of all backends with per-tick
//!   checking;
//! * [`shrink`] — delta-debugging minimization of failing schedules;
//! * [`replay`] — self-contained `.simreplay` JSON files.
//!
//! # Example
//!
//! ```
//! use igern_sim::{run, SimConfig};
//!
//! let cfg = SimConfig {
//!     seed: 7,
//!     ticks: 12,
//!     objects: 16,
//!     queries: 4,
//!     server: false, // offline backends only, for doc-test speed
//!     ..SimConfig::default()
//! };
//! let outcome = run(&cfg).expect("healthy build passes its own harness");
//! // Same seed, same digest — the run is bit-deterministic.
//! assert_eq!(outcome.digest, run(&cfg).unwrap().digest);
//! ```

pub mod events;
pub mod exec;
pub mod oracle;
pub mod replay;
pub mod shrink;

use igern_geom::Aabb;

pub use events::{generate, FrameFault, GenConfig, Plan, ScheduledEvent, SimEvent, ALGO_CYCLE};
pub use exec::{execute, Corruption, SimCounters, SimFailure, SimReport};
pub use replay::{load_replay, write_replay, ReplayError};
pub use shrink::{minimize, ShrinkStats};

/// User-facing simulation knobs (the CLI's `sim` subcommand maps its
/// flags straight onto this).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; equal configs ⇒ identical plans, runs, and digests.
    pub seed: u64,
    /// Engine ticks to simulate.
    pub ticks: u64,
    /// Initial population size.
    pub objects: usize,
    /// Grid resolution (`n × n` cells).
    pub grid: usize,
    /// Standing queries opened at tick 1 (rotating through all eight
    /// algorithms; more join and leave over the run).
    pub queries: usize,
    /// Sharded-backend worker count.
    pub workers: usize,
    /// Data space.
    pub space: Aabb,
    /// Inject faults (desyncs, stalls, frame corruption, storms).
    pub faults: bool,
    /// Include the wire-protocol backend (server over the in-memory
    /// transport, plus the fault-victim client when `faults` is on).
    pub server: bool,
    /// Run the served backend over a write-ahead log and schedule
    /// crash-kill/restart faults against it (requires `server` and
    /// `faults`; replaces the grid-desync fault, which a log replay
    /// would repair). Recovery is held to the same oracle as normal
    /// operation: answers must be bit-identical from the first
    /// post-restart tick.
    pub durable: bool,
    /// Run every backend with shared-scan batch evaluation (see
    /// `igern_core::batch`). Off by default so the harness's baseline
    /// stays the per-query path; turning it on must be answer-invisible.
    pub batch: bool,
    /// Evaluate every query under network (shortest-path) distance over
    /// a road graph derived deterministically from `seed` and `space`
    /// (see [`events::sim_network`]). Plan generation snaps all motion
    /// onto the graph and the mirror switches to the Dijkstra oracles.
    pub network: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            ticks: 100,
            objects: 48,
            grid: 16,
            queries: 8,
            workers: 4,
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            faults: true,
            server: true,
            durable: false,
            batch: false,
            network: false,
        }
    }
}

impl SimConfig {
    fn gen_config(&self) -> GenConfig {
        GenConfig {
            seed: self.seed,
            ticks: self.ticks,
            objects: self.objects,
            grid: self.grid,
            queries: self.queries,
            workers: self.workers,
            space: self.space,
            faults: self.faults,
            server: self.server,
            durable: self.durable,
            batch: self.batch,
            network: self.network,
        }
    }

    /// Materialize this config's schedule.
    pub fn plan(&self) -> Plan {
        generate(&self.gen_config())
    }
}

/// Generate the plan for `cfg` and execute it against every backend.
pub fn run(cfg: &SimConfig) -> Result<SimReport, SimFailure> {
    execute(&cfg.plan(), None)
}

/// Test seam for the failure → shrink → replay pipeline: run `cfg`
/// with a deliberate wrong answer injected for `query` at `tick` on
/// the serial backend, as if the build were broken. Returns the
/// failing plan together with the observed failure so callers can
/// hand both to [`minimize`].
#[doc(hidden)]
pub fn run_with_corruption(
    cfg: &SimConfig,
    tick: u64,
    query: u32,
) -> (Plan, Result<SimReport, SimFailure>) {
    let plan = cfg.plan();
    let corruption = Corruption { tick, query };
    let outcome = execute(&plan, Some(&corruption));
    (plan, outcome)
}
