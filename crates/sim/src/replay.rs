//! `.simreplay` files: self-contained JSON descriptions of one run.
//!
//! A replay file carries everything [`crate::exec::execute`] needs — the
//! space, the initial population, and the event schedule — so a failure
//! minimized on one machine re-executes anywhere with
//! `igern sim --replay FILE`, no generator or seed required.
//!
//! The writer is hand-rolled (the workspace is dependency-free) and
//! every emitted file is validated by round-tripping through the JSON
//! parser in `igern_core::obs::jsontext` before it is handed out.
//! Floats are printed with `{:?}`, Rust's shortest round-trip
//! representation, so positions survive the text encoding bit-exactly.

use std::fmt::Write as _;

use igern_core::obs::jsontext::{self, Value};
use igern_core::processor::Algorithm;
use igern_core::types::ObjectKind;
use igern_geom::Aabb;

use crate::events::{FrameFault, Plan, ScheduledEvent, SimEvent};

/// Format marker of the current replay schema.
pub const REPLAY_FORMAT: &str = "igern-simreplay";
/// Schema version the writer emits and the loader accepts.
pub const REPLAY_VERSION: u64 = 1;

/// A malformed or unsupported replay file.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError(pub String);

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay file: {}", self.0)
    }
}

impl std::error::Error for ReplayError {}

/// Stable algorithm naming shared by the replay format and the CLI.
pub fn algo_name(algo: Algorithm) -> (&'static str, usize) {
    match algo {
        Algorithm::IgernMono => ("igern", 0),
        Algorithm::Crnn => ("crnn", 0),
        Algorithm::TplRepeat => ("tpl", 0),
        Algorithm::IgernBi => ("igern-bi", 0),
        Algorithm::VoronoiRepeat => ("voronoi", 0),
        Algorithm::IgernMonoK(k) => ("igern-k", k),
        Algorithm::IgernBiK(k) => ("igern-bi-k", k),
        Algorithm::Knn(k) => ("knn", k),
    }
}

/// Inverse of [`algo_name`].
pub fn algo_by_name(name: &str, k: usize) -> Option<Algorithm> {
    Some(match name {
        "igern" => Algorithm::IgernMono,
        "crnn" => Algorithm::Crnn,
        "tpl" => Algorithm::TplRepeat,
        "igern-bi" => Algorithm::IgernBi,
        "voronoi" => Algorithm::VoronoiRepeat,
        "igern-k" => Algorithm::IgernMonoK(k),
        "igern-bi-k" => Algorithm::IgernBiK(k),
        "knn" => Algorithm::Knn(k),
        _ => return None,
    })
}

/// Serialize a plan to replay JSON. The output is round-tripped
/// through the workspace JSON parser before being returned, so a
/// written file is guaranteed loadable.
///
/// # Panics
/// Panics if the writer produced text its own loader rejects — a bug,
/// not an input condition.
pub fn write_replay(plan: &Plan) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"{REPLAY_FORMAT}\",");
    let _ = writeln!(s, "  \"version\": {REPLAY_VERSION},");
    let _ = writeln!(s, "  \"seed\": {},", plan.seed);
    let _ = writeln!(
        s,
        "  \"space\": [{:?}, {:?}, {:?}, {:?}],",
        plan.space.min.x, plan.space.min.y, plan.space.max.x, plan.space.max.y
    );
    let _ = writeln!(s, "  \"grid\": {},", plan.grid);
    let _ = writeln!(s, "  \"workers\": {},", plan.workers);
    let _ = writeln!(s, "  \"ticks\": {},", plan.ticks);
    let _ = writeln!(s, "  \"server\": {},", plan.server);
    let _ = writeln!(s, "  \"durable\": {},", plan.durable);
    let _ = writeln!(s, "  \"batch\": {},", plan.batch);
    let _ = writeln!(s, "  \"network\": {},", plan.network);
    match plan.victim_anchor {
        Some(a) => {
            let _ = writeln!(s, "  \"victim_anchor\": {a},");
        }
        None => s.push_str("  \"victim_anchor\": null,\n"),
    }
    s.push_str("  \"initial\": [\n");
    for (i, &(id, kind, x, y)) in plan.initial.iter().enumerate() {
        let comma = if i + 1 < plan.initial.len() { "," } else { "" };
        let k = if kind == ObjectKind::A { "A" } else { "B" };
        let _ = writeln!(s, "    [{id}, \"{k}\", {x:?}, {y:?}]{comma}");
    }
    s.push_str("  ],\n");
    s.push_str("  \"events\": [\n");
    for (i, e) in plan.events.iter().enumerate() {
        let comma = if i + 1 < plan.events.len() { "," } else { "" };
        let t = e.tick;
        let body = match &e.event {
            SimEvent::Move { id, x, y } => {
                format!("\"op\": \"move\", \"id\": {id}, \"x\": {x:?}, \"y\": {y:?}")
            }
            SimEvent::Insert { id, kind, x, y } => {
                let k = if *kind == ObjectKind::A { "A" } else { "B" };
                format!("\"op\": \"insert\", \"id\": {id}, \"kind\": \"{k}\", \"x\": {x:?}, \"y\": {y:?}")
            }
            SimEvent::Remove { id } => format!("\"op\": \"remove\", \"id\": {id}"),
            SimEvent::AddQuery { q, anchor, algo } => {
                let (name, k) = algo_name(*algo);
                format!(
                    "\"op\": \"add-query\", \"q\": {q}, \"anchor\": {anchor}, \"algo\": \"{name}\", \"k\": {k}"
                )
            }
            SimEvent::RemoveQuery { q } => format!("\"op\": \"remove-query\", \"q\": {q}"),
            SimEvent::ForceDesync { id } => format!("\"op\": \"desync\", \"id\": {id}"),
            SimEvent::StallWorker { worker } => {
                format!("\"op\": \"stall-worker\", \"worker\": {worker}")
            }
            SimEvent::ClientStall { ticks } => {
                format!("\"op\": \"client-stall\", \"ticks\": {ticks}")
            }
            SimEvent::FrameFault { fault } => {
                format!("\"op\": \"frame-fault\", \"fault\": \"{}\"", fault.name())
            }
            SimEvent::KillRestart => "\"op\": \"kill-restart\"".to_string(),
        };
        let _ = writeln!(s, "    {{\"tick\": {t}, {body}}}{comma}");
    }
    s.push_str("  ]\n}\n");

    let reloaded = load_replay(&s).expect("writer emitted an unloadable replay (bug)");
    assert_eq!(&reloaded, plan, "writer round-trip changed the plan (bug)");
    s
}

fn num(v: Option<&Value>, what: &str) -> Result<f64, ReplayError> {
    v.and_then(Value::as_f64)
        .ok_or_else(|| ReplayError(format!("missing or non-numeric {what}")))
}

fn uint(v: Option<&Value>, what: &str) -> Result<u64, ReplayError> {
    let f = num(v, what)?;
    if f < 0.0 || f.fract() != 0.0 || f > (1u64 << 53) as f64 {
        return Err(ReplayError(format!("{what} is not a valid integer: {f}")));
    }
    Ok(f as u64)
}

fn kind_of(v: Option<&Value>, what: &str) -> Result<ObjectKind, ReplayError> {
    match v.and_then(Value::as_str) {
        Some("A") => Ok(ObjectKind::A),
        Some("B") => Ok(ObjectKind::B),
        other => Err(ReplayError(format!("bad {what}: {other:?}"))),
    }
}

/// Parse replay JSON back into a [`Plan`].
pub fn load_replay(text: &str) -> Result<Plan, ReplayError> {
    let root = jsontext::parse(text).map_err(|e| ReplayError(format!("not JSON: {e}")))?;
    if root.get("format").and_then(Value::as_str) != Some(REPLAY_FORMAT) {
        return Err(ReplayError(format!(
            "missing \"format\": \"{REPLAY_FORMAT}\" marker"
        )));
    }
    let version = uint(root.get("version"), "version")?;
    if version != REPLAY_VERSION {
        return Err(ReplayError(format!(
            "unsupported version {version} (reader supports {REPLAY_VERSION})"
        )));
    }
    let space = root
        .get("space")
        .and_then(Value::as_array)
        .ok_or_else(|| ReplayError("missing space array".into()))?;
    if space.len() != 4 {
        return Err(ReplayError("space must be [x0, y0, x1, y1]".into()));
    }
    let coord = |i: usize| num(space.get(i), "space coordinate");
    let space = Aabb::from_coords(coord(0)?, coord(1)?, coord(2)?, coord(3)?);

    let mut initial = Vec::new();
    for row in root
        .get("initial")
        .and_then(Value::as_array)
        .ok_or_else(|| ReplayError("missing initial array".into()))?
    {
        let row = row
            .as_array()
            .ok_or_else(|| ReplayError("initial row is not an array".into()))?;
        if row.len() != 4 {
            return Err(ReplayError("initial row must be [id, kind, x, y]".into()));
        }
        initial.push((
            uint(row.first(), "initial id")? as u32,
            kind_of(row.get(1), "initial kind")?,
            num(row.get(2), "initial x")?,
            num(row.get(3), "initial y")?,
        ));
    }

    let mut events = Vec::new();
    for item in root
        .get("events")
        .and_then(Value::as_array)
        .ok_or_else(|| ReplayError("missing events array".into()))?
    {
        let tick = uint(item.get("tick"), "event tick")?;
        let op = item
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ReplayError("event without op".into()))?;
        let id = || uint(item.get("id"), "event id").map(|v| v as u32);
        let event = match op {
            "move" => SimEvent::Move {
                id: id()?,
                x: num(item.get("x"), "x")?,
                y: num(item.get("y"), "y")?,
            },
            "insert" => SimEvent::Insert {
                id: id()?,
                kind: kind_of(item.get("kind"), "kind")?,
                x: num(item.get("x"), "x")?,
                y: num(item.get("y"), "y")?,
            },
            "remove" => SimEvent::Remove { id: id()? },
            "add-query" => {
                let name = item
                    .get("algo")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ReplayError("add-query without algo".into()))?;
                let k = uint(item.get("k"), "k")? as usize;
                SimEvent::AddQuery {
                    q: uint(item.get("q"), "q")? as u32,
                    anchor: uint(item.get("anchor"), "anchor")? as u32,
                    algo: algo_by_name(name, k)
                        .ok_or_else(|| ReplayError(format!("unknown algo {name:?}")))?,
                }
            }
            "remove-query" => SimEvent::RemoveQuery {
                q: uint(item.get("q"), "q")? as u32,
            },
            "desync" => SimEvent::ForceDesync { id: id()? },
            "stall-worker" => SimEvent::StallWorker {
                worker: uint(item.get("worker"), "worker")? as u32,
            },
            "client-stall" => SimEvent::ClientStall {
                ticks: uint(item.get("ticks"), "ticks")? as u32,
            },
            "frame-fault" => {
                let name = item
                    .get("fault")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ReplayError("frame-fault without fault".into()))?;
                SimEvent::FrameFault {
                    fault: FrameFault::by_name(name)
                        .ok_or_else(|| ReplayError(format!("unknown fault {name:?}")))?,
                }
            }
            "kill-restart" => SimEvent::KillRestart,
            other => return Err(ReplayError(format!("unknown op {other:?}"))),
        };
        events.push(ScheduledEvent { tick, event });
    }

    let victim_anchor = match root.get("victim_anchor") {
        None | Some(Value::Null) => None,
        Some(v) => Some(uint(Some(v), "victim_anchor")? as u32),
    };

    Ok(Plan {
        seed: uint(root.get("seed"), "seed")?,
        space,
        grid: uint(root.get("grid"), "grid")? as usize,
        workers: uint(root.get("workers"), "workers")? as usize,
        ticks: uint(root.get("ticks"), "ticks")?,
        server: matches!(root.get("server"), Some(Value::Bool(true))),
        // Absent in files written before durability existed: off.
        durable: matches!(root.get("durable"), Some(Value::Bool(true))),
        // Absent in files written before batch evaluation existed: off.
        batch: matches!(root.get("batch"), Some(Value::Bool(true))),
        // Absent in files written before network distance existed: off.
        network: matches!(root.get("network"), Some(Value::Bool(true))),
        victim_anchor,
        initial,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{generate, GenConfig};

    fn plan() -> Plan {
        generate(&GenConfig {
            seed: 11,
            ticks: 30,
            objects: 16,
            grid: 8,
            queries: 8,
            workers: 4,
            space: Aabb::from_coords(0.0, 0.0, 64.0, 64.0),
            faults: true,
            server: true,
            durable: false,
            batch: false,
            network: false,
        })
    }

    #[test]
    fn round_trip_preserves_the_plan() {
        let p = plan();
        let text = write_replay(&p);
        assert_eq!(load_replay(&text).unwrap(), p);
    }

    #[test]
    fn durable_round_trip_keeps_the_flag_and_kill_events() {
        let p = generate(&GenConfig {
            seed: 11,
            ticks: 30,
            objects: 16,
            grid: 8,
            queries: 8,
            workers: 4,
            space: Aabb::from_coords(0.0, 0.0, 64.0, 64.0),
            faults: true,
            server: true,
            durable: true,
            batch: false,
            network: false,
        });
        assert!(p.events.iter().any(|e| e.event == SimEvent::KillRestart));
        let text = write_replay(&p);
        assert!(text.contains("\"durable\": true"));
        assert!(text.contains("\"op\": \"kill-restart\""));
        assert_eq!(load_replay(&text).unwrap(), p);
        // Files that predate the field load as non-durable.
        assert!(
            !load_replay(&text.replacen("  \"durable\": true,\n", "", 1))
                .unwrap()
                .durable
        );
    }

    #[test]
    fn network_round_trip_keeps_the_flag() {
        let p = generate(&GenConfig {
            seed: 11,
            ticks: 30,
            objects: 16,
            grid: 8,
            queries: 8,
            workers: 4,
            space: Aabb::from_coords(0.0, 0.0, 64.0, 64.0),
            faults: true,
            server: true,
            durable: false,
            batch: false,
            network: true,
        });
        let text = write_replay(&p);
        assert!(text.contains("\"network\": true"));
        assert_eq!(load_replay(&text).unwrap(), p);
        // Files that predate the field load as Euclidean.
        assert!(
            !load_replay(&text.replacen("  \"network\": true,\n", "", 1))
                .unwrap()
                .network
        );
    }

    #[test]
    fn bad_inputs_are_rejected_with_context() {
        for (text, needle) in [
            ("nonsense", "not JSON"),
            ("{}", "format"),
            (
                "{\"format\": \"igern-simreplay\", \"version\": 99}",
                "version",
            ),
            (
                "{\"format\": \"igern-simreplay\", \"version\": 1, \"space\": [0, 0]}",
                "space",
            ),
        ] {
            let err = load_replay(text).unwrap_err();
            assert!(err.0.contains(needle), "{err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn algo_names_cover_the_cycle() {
        for algo in crate::events::ALGO_CYCLE {
            let (name, k) = algo_name(algo);
            assert_eq!(algo_by_name(name, k), Some(algo));
        }
    }
}
